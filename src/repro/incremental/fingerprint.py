"""Content fingerprints for the incremental engine."""

from __future__ import annotations

import hashlib


def digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def file_fingerprint(fs, path: str) -> str | None:
    """Fingerprint of a file's contents; None when it does not exist."""
    if not fs.is_file(path):
        return None
    return digest(fs.read_bytes(path))


def region_key(argvs: list[list[str]], input_fps: list[str]) -> str:
    """Cache key for a dataflow region applied to concrete inputs."""
    h = hashlib.sha256()
    for argv in argvs:
        for arg in argv:
            h.update(arg.encode())
            h.update(b"\x00")
        h.update(b"\x01")
    for fp in input_fps:
        h.update(fp.encode())
        h.update(b"\x02")
    return h.hexdigest()
