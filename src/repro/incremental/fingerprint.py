"""Content fingerprints for the incremental engine."""

from __future__ import annotations

import hashlib


def digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class PrefixHasher:
    """Chained digest over a growing prefix.

    ``advance(delta)`` folds only the appended bytes in, yet
    ``hexdigest()`` always equals ``digest(<full prefix>)`` — so a
    continuously-ingesting pipeline can maintain full-content
    fingerprints at O(delta) cost per round instead of re-hashing the
    whole input.  The underlying hash state is process-local (hashlib
    states are not serializable); durable checkpoints persist the
    hexdigest and re-seed with :meth:`seeded` on resume.
    """

    __slots__ = ("_h", "length")

    def __init__(self):
        self._h = hashlib.sha256()
        self.length = 0

    def advance(self, delta: bytes) -> "PrefixHasher":
        self._h.update(delta)
        self.length += len(delta)
        return self

    def copy(self) -> "PrefixHasher":
        clone = PrefixHasher()
        clone._h = self._h.copy()
        clone.length = self.length
        return clone

    def hexdigest(self) -> str:
        return self._h.hexdigest()

    @classmethod
    def seeded(cls, data: bytes) -> "PrefixHasher":
        """A hasher re-seeded over existing content (one O(n) pass,
        e.g. after a crash-recovery restart)."""
        return cls().advance(data)


def file_fingerprint(fs, path: str) -> str | None:
    """Fingerprint of a file's contents; None when it does not exist."""
    if not fs.is_file(path):
        return None
    return digest(fs.read_bytes(path))


def region_key(argvs: list[list[str]], input_fps: list[str]) -> str:
    """Cache key for a dataflow region applied to concrete inputs."""
    h = hashlib.sha256()
    for argv in argvs:
        for arg in argv:
            h.update(arg.encode())
            h.update(b"\x00")
        h.update(b"\x01")
    for fp in input_fps:
        h.update(fp.encode())
        h.update(b"\x02")
    return h.hexdigest()
