"""S11 — the incremental computation framework built on command
specifications + JIT runtime information (paper §4)."""

from .cache import CacheEntry, IncrementalCache
from .engine import IncEvent, IncrementalConfig, IncrementalOptimizer
from .fingerprint import PrefixHasher, digest, file_fingerprint, region_key

__all__ = [
    "CacheEntry", "IncrementalCache", "IncEvent", "IncrementalConfig",
    "IncrementalOptimizer", "PrefixHasher", "digest", "file_fingerprint",
    "region_key",
]
