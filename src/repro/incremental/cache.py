"""The incremental result cache.

Entries record, for a region key (command argvs + input fingerprints),
the produced output and enough provenance to support *delta* reuse:
when an input grows append-only and the region is stateless, only the
appended suffix needs processing.

Entries also carry an ``output_sha`` self-check: a truncated or
corrupted entry (torn write in a durable snapshot, bit rot) is detected
on use and dropped — the engine falls back to recompute with a traced
``inc.cache_invalid`` event rather than replaying stale bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CacheEntry:
    key: str
    output: bytes
    status: int
    #: provenance for append-only delta reuse
    input_paths: list[str] = field(default_factory=list)
    input_sizes: list[int] = field(default_factory=list)
    input_prefix_fps: list[str] = field(default_factory=list)  # fp of full old content
    hits: int = 0
    #: integrity self-check (sha256 of ``output``; "" = legacy, unchecked)
    output_sha: str = ""
    #: sampled boundary fingerprints (first/last spot_check_bytes of the
    #: old content) for O(delta) append validation in "sampled" mode
    input_head_fps: list[str] = field(default_factory=list)
    input_tail_fps: list[str] = field(default_factory=list)

    def verify_output(self) -> bool:
        """Does ``output`` still match its recorded digest?  Entries
        without one (legacy or hand-built in tests) pass trivially."""
        if not self.output_sha:
            return True
        return hashlib.sha256(self.output).hexdigest() == self.output_sha


class IncrementalCache:
    def __init__(self, capacity_bytes: int = 256 << 20):
        self.capacity_bytes = capacity_bytes
        self.entries: dict[str, CacheEntry] = {}
        #: most recent entry per (argvs-hash, tuple(paths)) for delta lookup
        self.latest_for_paths: dict[tuple, str] = {}
        self.size_bytes = 0
        self.hits = 0
        self.misses = 0
        self.delta_hits = 0
        self.invalidated = 0
        #: process-local chained hashers (path -> PrefixHasher) keeping
        #: full-content fingerprints at O(delta) cost for growing inputs
        self.hashers: dict[str, object] = {}

    def get(self, key: str) -> Optional[CacheEntry]:
        entry = self.entries.get(key)
        if entry is not None:
            entry.hits += 1
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def put(self, entry: CacheEntry, argv_sig: str) -> None:
        existing = self.entries.get(entry.key)
        if existing is not None:
            self.size_bytes -= len(existing.output)
        self.entries[entry.key] = entry
        self.size_bytes += len(entry.output)
        self.latest_for_paths[(argv_sig, tuple(entry.input_paths))] = entry.key
        self._evict()

    def latest(self, argv_sig: str, paths: list[str]) -> Optional[CacheEntry]:
        key = self.latest_for_paths.get((argv_sig, tuple(paths)))
        if key is None:
            return None
        return self.entries.get(key)

    def invalidate(self, key: str) -> None:
        """Drop a corrupted/stale entry (and any delta pointer to it)."""
        entry = self.entries.pop(key, None)
        if entry is None:
            return
        self.size_bytes -= len(entry.output)
        self.invalidated += 1
        for pkey, target in list(self.latest_for_paths.items()):
            if target == key:
                del self.latest_for_paths[pkey]

    def _evict(self) -> None:
        if self.size_bytes <= self.capacity_bytes:
            return
        # least-hit-first eviction
        for key in sorted(self.entries, key=lambda k: self.entries[k].hits):
            if self.size_bytes <= self.capacity_bytes:
                break
            entry = self.entries.pop(key)
            self.size_bytes -= len(entry.output)

    def stats(self) -> dict:
        return {
            "entries": len(self.entries),
            "bytes": self.size_bytes,
            "hits": self.hits,
            "delta_hits": self.delta_hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
        }
