"""The incremental computation engine (§4 'Incremental Computation').

"PaSh and POSH's command specifications are the missing link, exposing
the necessary information for an incremental computation framework. ...
The JIT framework can then be used to provide up-to-date information on
the latest state of script inputs. Combined, we have the critical
building blocks for a runtime that incrementally reinterprets a script
given changes of its input."

The engine is an interpreter hook (same protocol as Jash).  For each
pure dataflow region over file-backed inputs it:

* **replays** the cached output when the inputs are unchanged
  (make-style stat fingerprints: size + mtime, with a sampled content
  spot-check);
* **extends** the cached output when the region is fully stateless and
  an input grew append-only — only the appended suffix is processed
  (the per-line independence exposed by the STATELESS annotation:
  "a command that processes each of its input lines independently need
  not be reapplied to the input lines that were unchanged");
* otherwise recomputes and refreshes the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..annotations.library import DEFAULT_LIBRARY
from ..annotations.model import AggKind, Aggregator, ParClass, SpecLibrary
from ..dfg.from_ast import Region, build_dfg, region_from_argvs
from ..dfg.graph import (
    CMD,
    CONCAT_MERGE,
    RANGE_READ,
    SORT_KWAY,
    SUM_MERGE,
    DataflowGraph,
)
from ..jit.frontend import expand_region, pipeline_stages, purity_reason
from ..jit.runtime_info import region_input_files
from ..parser.ast_nodes import Command
from ..parser.unparse import unparse
from ..vos.faults import FAULT_STATUSES
from ..vos.handles import Collector
from .cache import CacheEntry, IncrementalCache
from .fingerprint import PrefixHasher, digest, region_key


@dataclass
class IncEvent:
    node_text: str
    decision: str  # "replayed" | "extended" | "computed" | "interpreted"
    reason: str
    saved_bytes: int = 0


@dataclass
class IncrementalConfig:
    library: SpecLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)
    #: sampled spot-check size when trusting stat fingerprints
    spot_check_bytes: int = 1024
    #: minimum input size worth caching at all
    min_input_bytes: int = 4096
    #: how to validate an append-only delta before reusing the prefix:
    #: "full" re-hashes the whole old prefix (exact; the default);
    #: "sampled" checks the head and the bytes at the append boundary
    #: plus the chained prefix digest — O(delta) per round, for
    #: continuous-ingestion supervision where inputs only ever grow
    delta_verify: str = "full"

    def __post_init__(self) -> None:
        if self.delta_verify not in ("full", "sampled"):
            raise ValueError(
                f"delta_verify must be 'full' or 'sampled', "
                f"got {self.delta_verify!r}")


class IncrementalOptimizer:
    """Interpreter hook giving scripts make-style, line-level reuse."""

    def __init__(self, config: Optional[IncrementalConfig] = None,
                 cache: Optional[IncrementalCache] = None):
        self.config = config or IncrementalConfig()
        self.cache = cache if cache is not None else IncrementalCache()
        self.events: list[IncEvent] = []
        #: the metrics registry of the kernel currently executing us
        #: (refreshed at every try_execute; _note folds decisions in)
        self._metrics = None

    # -- the hook ---------------------------------------------------------------

    def try_execute(self, interp, proc, node: Command):
        self._metrics = getattr(proc.kernel, "metrics", None)
        text = unparse(node)
        stages = pipeline_stages(node)
        if stages is None:
            return None
            yield  # pragma: no cover - generator shape
        if purity_reason(stages) is not None:
            self._note(text, "interpreted", "unsafe early expansion")
            return None
        region = yield from expand_region(interp, proc, stages,
                                          self.config.library)
        if region is None:
            self._note(text, "interpreted", "not a dataflow region")
            return None
        if not all(s.spec.pure for s in region.stages):
            self._note(text, "interpreted", "region not pure")
            return None
        input_files = region_input_files(region, proc.fs, interp.state.cwd)
        if input_files is None:
            self._note(text, "interpreted", "input not file-backed")
            return None
        fs = proc.fs
        total = sum(fs.size(p) for p in input_files)
        if total < self.config.min_input_bytes:
            self._note(text, "interpreted", "input too small to cache")
            return None

        argvs = [s.argv for s in region.stages]
        fps = [f"{p}:{fs.size(p)}:{fs.mtime(p):.9f}" for p in input_files]
        argv_sig = region_key(argvs, [])
        key = region_key(argvs, fps)

        entry = self.cache.get(key)
        if entry is not None and entry.status in FAULT_STATUSES:
            # a fault-killed result (from an old snapshot): not a value
            self._invalid(proc, key, "cached fault status")
            entry = None
        if entry is not None and not entry.verify_output():
            # torn/corrupted entry (e.g. a mangled durable snapshot):
            # never replay stale bytes — drop it and recompute
            self._invalid(proc, key, "output digest mismatch")
            entry = None
        if entry is not None:
            status = yield from self._replay(region, proc, entry.output,
                                             interp.state.cwd)
            self._note(text, "replayed", "inputs unchanged",
                       saved_bytes=total)
            return entry.status if status == 0 else status

        prev = self.cache.latest(argv_sig, input_files)
        if prev is not None and (prev.status in FAULT_STATUSES
                                 or not prev.verify_output()):
            self._invalid(proc, prev.key, "unusable delta base")
            prev = None

        # content-identical replay: the exact key embeds mtimes, so a
        # fresh kernel (supervised restart) misses it even when the
        # bytes are unchanged — fall back to content digests
        if (
            prev is not None
            and [fs.size(p) for p in input_files] == prev.input_sizes
            and all(digest(fs.read_bytes(p)) == fp
                    for p, fp in zip(input_files, prev.input_prefix_fps))
        ):
            status = yield from self._replay(region, proc, prev.output,
                                             interp.state.cwd)
            self._store(key, argv_sig, prev.output, prev.status,
                        input_files, fs)
            self._note(text, "replayed", "content unchanged (digest)",
                       saved_bytes=total)
            return prev.status if status == 0 else status

        # Snapshot the fault counter: POSIX pipeline status can mask an
        # upstream fault death (a torn write in a stage whose consumers
        # survive still exits the *pipeline* 0), so results computed
        # while any fault fired are never cached — a poisoned entry
        # would be digest-replayed on the very retry meant to fix it.
        fired_before = self._fired(proc)

        # append-only delta path
        if (
            prev is not None
            and len(input_files) == 1
            and all(s.spec.par_class is ParClass.STATELESS
                    for s in region.stages)
            and self._grew_append_only(fs, input_files[0], prev)
        ):
            old_size = prev.input_sizes[0]
            delta_out, status = yield from self._run_suffix(
                region, proc, input_files[0], old_size, interp.state.cwd
            )
            output = prev.output + delta_out
            st2 = yield from self._replay(region, proc, output,
                                          interp.state.cwd)
            self.cache.delta_hits += 1
            if self._fired(proc) == fired_before:
                self._store(key, argv_sig, output, status, input_files, fs,
                            appended_from=old_size)
            self._note(text, "extended",
                       f"append-only delta: reused {old_size} bytes",
                       saved_bytes=old_size)
            return status if st2 == 0 else st2

        # aggregator-merge delta: a stateless prefix feeding one
        # parallelizable-pure final stage (sort, wc, uniq).  The region
        # runs over only the appended suffix and the final stage's PaSh
        # aggregator folds that partial result into the cached output —
        # sort never re-sorts the committed prefix, wc never re-counts
        # it.  This is what keeps continuous ingestion cheap for
        # pipelines the plain append path cannot touch.
        agg = self._delta_aggregator(region)
        if (
            prev is not None
            and prev.status == 0
            and agg is not None
            and len(input_files) == 1
            and self._grew_append_only(fs, input_files[0], prev)
        ):
            old_size = prev.input_sizes[0]
            delta_out, status = yield from self._run_suffix(
                region, proc, input_files[0], old_size, interp.state.cwd
            )
            if status == 0:
                output = yield from self._merge_outputs(
                    agg, prev.output, delta_out, proc, interp.state.cwd)
            else:
                output = None
            if output is not None:
                st2 = yield from self._replay(region, proc, output,
                                              interp.state.cwd)
                self.cache.delta_hits += 1
                if self._fired(proc) == fired_before:
                    self._store(key, argv_sig, output, 0, input_files, fs,
                                appended_from=old_size)
                self._note(text, "extended",
                           f"aggregator merge ({agg.kind.value}): "
                           f"reused {old_size} bytes",
                           saved_bytes=old_size)
                return st2
            # a fault killed the suffix run or the merge: recompute

        # full compute with capture
        collector = Collector()
        status = yield from self._execute_region(region, proc, collector,
                                                 interp.state.cwd)
        output = collector.getvalue()
        st2 = yield from self._replay(region, proc, output, interp.state.cwd)
        if self._fired(proc) == fired_before:
            self._store(key, argv_sig, output, status, input_files, fs)
            self._note(text, "computed", "cache miss; result stored")
        else:
            self._note(text, "computed", "fault fired mid-region; "
                                         "result not cached")
        return status if st2 == 0 else st2

    # -- helpers -------------------------------------------------------------------

    def _note(self, text: str, decision: str, reason: str,
              saved_bytes: int = 0) -> None:
        self.events.append(IncEvent(text, decision, reason, saved_bytes))
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("inc.decisions", decision=decision).inc()
            if saved_bytes:
                metrics.counter("inc.saved_bytes").inc(float(saved_bytes))

    def _fired(self, proc) -> int:
        """Total faults the kernel's plan has injected so far (0 when
        no plan is installed)."""
        plan = getattr(proc.kernel, "faults", None)
        return plan.fired if plan is not None else 0

    def _invalid(self, proc, key: str, reason: str) -> None:
        """Drop a failed-integrity entry and leave a trace breadcrumb."""
        self.cache.invalidate(key)
        tracer = getattr(proc.kernel, "tracer", None)
        if tracer is not None:
            tracer.instant("inc", "inc.cache_invalid", proc.kernel.now, proc,
                           key=key[:16], reason=reason)
        metrics = getattr(proc.kernel, "metrics", None)
        if metrics is not None:
            metrics.counter("inc.cache_invalid", reason=reason).inc()

    def _store(self, key: str, argv_sig: str, output: bytes, status: int,
               input_files, fs, appended_from: Optional[int] = None) -> None:
        """Record a region result with full integrity provenance: output
        digest, full-content fingerprints (chained — O(delta) when the
        input grew append-only), and boundary spot fingerprints."""
        if status in FAULT_STATUSES:
            # a fault-killed region produced garbage, not a result:
            # caching it would replay the failure forever
            return
        k = self.config.spot_check_bytes
        sizes, prefix_fps, head_fps, tail_fps = [], [], [], []
        for path in input_files:
            data = fs.read_bytes(path)
            size = len(data)
            if appended_from is not None and len(input_files) == 1:
                fp = self._chained_digest(path, data, appended_from)
            else:
                hasher = PrefixHasher.seeded(data)
                self.cache.hashers[path] = hasher
                fp = hasher.hexdigest()
            sizes.append(size)
            prefix_fps.append(fp)
            head_fps.append(digest(data[:min(k, size)]))
            tail_fps.append(digest(data[max(0, size - k):]))
        self.cache.put(
            CacheEntry(key, output, status, list(input_files), sizes,
                       prefix_fps, output_sha=digest(output),
                       input_head_fps=head_fps, input_tail_fps=tail_fps),
            argv_sig,
        )

    def _chained_digest(self, path: str, data: bytes, old_size: int) -> str:
        """Full-content digest after an append, advancing the cached
        chained hasher with only the delta when its state lines up."""
        hasher = self.cache.hashers.get(path)
        if isinstance(hasher, PrefixHasher) and hasher.length == old_size:
            hasher = hasher.copy().advance(data[old_size:])
        else:
            hasher = PrefixHasher.seeded(data)
        self.cache.hashers[path] = hasher
        return hasher.hexdigest()

    #: aggregator kinds whose merge of a contiguous (prefix, suffix)
    #: split is byte-faithful to a from-scratch run
    _AGG_DELTA_KINDS = (AggKind.CONCAT, AggKind.SUM, AggKind.SORT_MERGE,
                        AggKind.RERUN)

    def _delta_aggregator(self, region: Region) -> Optional[Aggregator]:
        """The aggregator that can fold ``region(delta)`` into the
        cached ``region(prefix)``, or None.  Requires every stage but
        the last to be stateless (all-stateless regions belong to the
        plain append path) and the last to carry a mergeable PaSh
        aggregator."""
        last = region.stages[-1].spec
        if any(s.spec.par_class is not ParClass.STATELESS
               for s in region.stages[:-1]):
            return None
        if (last.par_class is ParClass.PARALLELIZABLE_PURE
                and last.aggregator is not None
                and last.aggregator.kind in self._AGG_DELTA_KINDS):
            return last.aggregator
        return None

    def _merge_outputs(self, agg: Aggregator, old: bytes, delta: bytes,
                       proc, cwd: str):
        """Merge two partial region outputs with the runtime's own
        aggregator bodies (the same nodes the parallel compiler plants),
        so the merged bytes match a from-scratch run exactly.  Returns
        None if a fault kills the merge."""
        if agg.kind is AggKind.CONCAT:
            return old + delta
        from ..compiler.runtime import execute_graph

        fs = proc.fs
        self._merge_seq = getattr(self, "_merge_seq", 0) + 1
        parts = [f"/.inc-merge-{self._merge_seq}{tag}" for tag in "ab"]
        dfg = DataflowGraph()
        ins = []
        for path, blob in zip(parts, (old, delta)):
            fs.write_bytes(path, blob)
            stream = dfg.new_stream()
            dfg.add_node(RANGE_READ,
                         params={"segments": [(path, 0, len(blob))],
                                 "path": path, "start": 0,
                                 "end": len(blob)},
                         outputs=(stream,))
            ins.append(stream)
        merged = dfg.new_stream()
        if agg.kind is AggKind.SORT_MERGE:
            dfg.add_node(SORT_KWAY, params={"argv": list(agg.argv)},
                         inputs=tuple(ins), outputs=(merged,))
        elif agg.kind is AggKind.SUM:
            dfg.add_node(SUM_MERGE, inputs=tuple(ins), outputs=(merged,))
        else:  # RERUN: re-apply the command to the concatenation
            concat = dfg.new_stream()
            dfg.add_node(CONCAT_MERGE, inputs=tuple(ins),
                         outputs=(concat,))
            dfg.add_node(CMD, tuple(agg.argv), inputs=(concat,),
                         outputs=(merged,))
        dfg.sink = merged
        collector = Collector()
        status = yield from execute_graph(
            dfg, proc, stdout_handle=collector,
            stderr_handle=proc.fds.get(2), cwd=cwd,
        )
        for path in parts:
            fs.unlink(path)
        return collector.getvalue() if status == 0 else None

    def _grew_append_only(self, fs, path: str, prev: CacheEntry) -> bool:
        """Did ``path`` grow by appending?  "full" mode re-hashes the
        whole old prefix; "sampled" mode checks only the head and the
        bytes at the append boundary (O(delta) per round — in-place
        edits far from both are traded away for throughput, which is
        why "full" stays the default)."""
        old_size = prev.input_sizes[0]
        new_size = fs.size(path)
        if new_size <= old_size:
            return False
        data = fs.read_bytes(path)
        if (self.config.delta_verify == "sampled"
                and prev.input_head_fps and prev.input_tail_fps):
            k = self.config.spot_check_bytes
            head_ok = (digest(data[:min(k, old_size)])
                       == prev.input_head_fps[0])
            tail_ok = (digest(data[max(0, old_size - k):old_size])
                       == prev.input_tail_fps[0])
            return head_ok and tail_ok
        return digest(data[:old_size]) == prev.input_prefix_fps[0]

    def _execute_region(self, region: Region, proc, sink, cwd: str):
        from ..compiler.runtime import execute_graph

        dfg = build_dfg(region)
        if dfg.streams[dfg.sink].path is not None:
            # detach the file sink: we capture and replay instead
            dfg.streams[dfg.sink].path = None
        status = yield from execute_graph(
            dfg, proc,
            stdin_handle=proc.fds.get(0),
            stdout_handle=sink,
            stderr_handle=proc.fds.get(2),
            cwd=cwd,
        )
        return status

    def _run_suffix(self, region: Region, proc, path: str, offset: int,
                    cwd: str):
        """Run the stateless region over only the appended suffix."""
        from ..compiler.runtime import execute_graph

        fs = proc.fs
        size = fs.size(path)
        dfg = DataflowGraph()
        prev = dfg.new_stream()
        dfg.add_node(RANGE_READ,
                     params={"segments": [(path, offset, size)],
                             "path": path, "start": offset, "end": size},
                     outputs=(prev,))
        stages = region.stages
        # drop a pure reader (cat) stage: the range reader replaces it
        if stages and stages[0].argv[0] == "cat" and stages[0].spec.input_operands:
            stages = stages[1:]
        for stage in stages:
            out = dfg.new_stream()
            argv = [a for i, a in enumerate(stage.argv)
                    if i == 0 or (i - 1) not in set(stage.spec.input_operands)]
            dfg.add_node(CMD, tuple(argv), inputs=(prev,), outputs=(out,),
                         spec=stage.spec)
            prev = out
        dfg.sink = prev
        collector = Collector()
        status = yield from execute_graph(
            dfg, proc, stdout_handle=collector,
            stderr_handle=proc.fds.get(2), cwd=cwd,
        )
        return collector.getvalue(), status

    def _replay(self, region: Region, proc, output: bytes, cwd: str):
        """Deliver (cached) output to the region's sink, charging the
        write honestly."""
        last = region.stages[-1]
        if last.stdout_file is not None:
            fd = yield from proc.open(last.stdout_file, "w")
            yield from proc.write(fd, output)
            yield from proc.close(fd)
        else:
            yield from proc.write(1, output)
        return 0

    # -- reporting ----------------------------------------------------------------------

    def stats(self) -> dict:
        return self.cache.stats()
