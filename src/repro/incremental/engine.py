"""The incremental computation engine (§4 'Incremental Computation').

"PaSh and POSH's command specifications are the missing link, exposing
the necessary information for an incremental computation framework. ...
The JIT framework can then be used to provide up-to-date information on
the latest state of script inputs. Combined, we have the critical
building blocks for a runtime that incrementally reinterprets a script
given changes of its input."

The engine is an interpreter hook (same protocol as Jash).  For each
pure dataflow region over file-backed inputs it:

* **replays** the cached output when the inputs are unchanged
  (make-style stat fingerprints: size + mtime, with a sampled content
  spot-check);
* **extends** the cached output when the region is fully stateless and
  an input grew append-only — only the appended suffix is processed
  (the per-line independence exposed by the STATELESS annotation:
  "a command that processes each of its input lines independently need
  not be reapplied to the input lines that were unchanged");
* otherwise recomputes and refreshes the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..annotations.library import DEFAULT_LIBRARY
from ..annotations.model import ParClass, SpecLibrary
from ..dfg.from_ast import Region, build_dfg, region_from_argvs
from ..dfg.graph import CMD, RANGE_READ, DataflowGraph
from ..jit.frontend import expand_region, pipeline_stages, purity_reason
from ..jit.runtime_info import region_input_files
from ..parser.ast_nodes import Command
from ..parser.unparse import unparse
from ..vos.handles import Collector
from .cache import CacheEntry, IncrementalCache
from .fingerprint import digest, region_key


@dataclass
class IncEvent:
    node_text: str
    decision: str  # "replayed" | "extended" | "computed" | "interpreted"
    reason: str
    saved_bytes: int = 0


@dataclass
class IncrementalConfig:
    library: SpecLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)
    #: sampled spot-check size when trusting stat fingerprints
    spot_check_bytes: int = 1024
    #: minimum input size worth caching at all
    min_input_bytes: int = 4096


class IncrementalOptimizer:
    """Interpreter hook giving scripts make-style, line-level reuse."""

    def __init__(self, config: Optional[IncrementalConfig] = None,
                 cache: Optional[IncrementalCache] = None):
        self.config = config or IncrementalConfig()
        self.cache = cache if cache is not None else IncrementalCache()
        self.events: list[IncEvent] = []

    # -- the hook ---------------------------------------------------------------

    def try_execute(self, interp, proc, node: Command):
        text = unparse(node)
        stages = pipeline_stages(node)
        if stages is None:
            return None
            yield  # pragma: no cover - generator shape
        if purity_reason(stages) is not None:
            self._note(text, "interpreted", "unsafe early expansion")
            return None
        region = yield from expand_region(interp, proc, stages,
                                          self.config.library)
        if region is None:
            self._note(text, "interpreted", "not a dataflow region")
            return None
        if not all(s.spec.pure for s in region.stages):
            self._note(text, "interpreted", "region not pure")
            return None
        input_files = region_input_files(region, proc.fs, interp.state.cwd)
        if input_files is None:
            self._note(text, "interpreted", "input not file-backed")
            return None
        fs = proc.fs
        total = sum(fs.size(p) for p in input_files)
        if total < self.config.min_input_bytes:
            self._note(text, "interpreted", "input too small to cache")
            return None

        argvs = [s.argv for s in region.stages]
        fps = [f"{p}:{fs.size(p)}:{fs.mtime(p):.9f}" for p in input_files]
        argv_sig = region_key(argvs, [])
        key = region_key(argvs, fps)

        entry = self.cache.get(key)
        if entry is not None:
            status = yield from self._replay(region, proc, entry.output,
                                             interp.state.cwd)
            self._note(text, "replayed", "inputs unchanged",
                       saved_bytes=total)
            return entry.status if status == 0 else status

        # append-only delta path
        prev = self.cache.latest(argv_sig, input_files)
        if (
            prev is not None
            and len(input_files) == 1
            and all(s.spec.par_class is ParClass.STATELESS
                    for s in region.stages)
            and self._grew_append_only(fs, input_files[0], prev)
        ):
            old_size = prev.input_sizes[0]
            delta_out, status = yield from self._run_suffix(
                region, proc, input_files[0], old_size, interp.state.cwd
            )
            output = prev.output + delta_out
            st2 = yield from self._replay(region, proc, output,
                                          interp.state.cwd)
            self.cache.delta_hits += 1
            self.cache.put(
                CacheEntry(key, output, status, list(input_files),
                           [fs.size(p) for p in input_files],
                           [digest(fs.read_bytes(p)) for p in input_files]),
                argv_sig,
            )
            self._note(text, "extended",
                       f"append-only delta: reused {old_size} bytes",
                       saved_bytes=old_size)
            return status if st2 == 0 else st2

        # full compute with capture
        collector = Collector()
        status = yield from self._execute_region(region, proc, collector,
                                                 interp.state.cwd)
        output = collector.getvalue()
        st2 = yield from self._replay(region, proc, output, interp.state.cwd)
        self.cache.put(
            CacheEntry(key, output, status, list(input_files),
                       [fs.size(p) for p in input_files],
                       [digest(fs.read_bytes(p)) for p in input_files]),
            argv_sig,
        )
        self._note(text, "computed", "cache miss; result stored")
        return status if st2 == 0 else st2

    # -- helpers -------------------------------------------------------------------

    def _note(self, text: str, decision: str, reason: str,
              saved_bytes: int = 0) -> None:
        self.events.append(IncEvent(text, decision, reason, saved_bytes))

    def _grew_append_only(self, fs, path: str, prev: CacheEntry) -> bool:
        """Did ``path`` grow by appending?  Cheap size check plus a spot
        check that the stored prefix digest matches the current prefix."""
        old_size = prev.input_sizes[0]
        new_size = fs.size(path)
        if new_size <= old_size:
            return False
        data = fs.read_bytes(path)
        return digest(data[:old_size]) == prev.input_prefix_fps[0]

    def _execute_region(self, region: Region, proc, sink, cwd: str):
        from ..compiler.runtime import execute_graph

        dfg = build_dfg(region)
        if dfg.streams[dfg.sink].path is not None:
            # detach the file sink: we capture and replay instead
            dfg.streams[dfg.sink].path = None
        status = yield from execute_graph(
            dfg, proc,
            stdin_handle=proc.fds.get(0),
            stdout_handle=sink,
            stderr_handle=proc.fds.get(2),
            cwd=cwd,
        )
        return status

    def _run_suffix(self, region: Region, proc, path: str, offset: int,
                    cwd: str):
        """Run the stateless region over only the appended suffix."""
        from ..compiler.runtime import execute_graph

        fs = proc.fs
        size = fs.size(path)
        dfg = DataflowGraph()
        prev = dfg.new_stream()
        dfg.add_node(RANGE_READ,
                     params={"segments": [(path, offset, size)],
                             "path": path, "start": offset, "end": size},
                     outputs=(prev,))
        stages = region.stages
        # drop a pure reader (cat) stage: the range reader replaces it
        if stages and stages[0].argv[0] == "cat" and stages[0].spec.input_operands:
            stages = stages[1:]
        for stage in stages:
            out = dfg.new_stream()
            argv = [a for i, a in enumerate(stage.argv)
                    if i == 0 or (i - 1) not in set(stage.spec.input_operands)]
            dfg.add_node(CMD, tuple(argv), inputs=(prev,), outputs=(out,),
                         spec=stage.spec)
            prev = out
        dfg.sink = prev
        collector = Collector()
        status = yield from execute_graph(
            dfg, proc, stdout_handle=collector,
            stderr_handle=proc.fds.get(2), cwd=cwd,
        )
        return collector.getvalue(), status

    def _replay(self, region: Region, proc, output: bytes, cwd: str):
        """Deliver (cached) output to the region's sink, charging the
        write honestly."""
        last = region.stages[-1]
        if last.stdout_file is not None:
            fd = yield from proc.open(last.stdout_file, "w")
            yield from proc.write(fd, output)
            yield from proc.close(fd)
        else:
            yield from proc.write(1, output)
        return 0

    # -- reporting ----------------------------------------------------------------------

    def stats(self) -> dict:
        return self.cache.stats()
