"""Command-line front end: ``jash``.

Subcommands::

    jash run SCRIPT.sh [--engine bash|pash|jash] [--machine PROFILE]
    jash run -c 'cat f | sort' --trace OUT.json  # + Chrome trace export
    jash run -c '...' --metrics OUT.json    # + deterministic metrics snapshot
    jash stat SCRIPT.sh [--interval 0.25]   # windowed telemetry tables
    jash profile SCRIPT.sh                  # critical-path report
    jash lint SCRIPT.sh                     # static diagnostics
    jash check SCRIPT.sh [--format json]    # whole-script effect analysis
    jash explain 'cut -c1-4 | sort -rn'     # spec-backed explanation
    jash parse -c 'if true; then echo x; fi'  # AST dump
    jash infer sort -rn                     # black-box spec inference

Scripts run on the *virtual* OS; use --file HOST:VIRT to load inputs.
"""

from __future__ import annotations

import argparse
import sys

from .bench.runners import make_engine
from .shell import Shell
from .vos.machines import PROFILES, profile


def main(argv=None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        return 141  # stdout consumer went away (e.g. `jash ... | head`)


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="jash", description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    run_p = sub.add_parser("run", help="run a script on the virtual OS")
    run_p.add_argument("script", nargs="?", help="script file (host path)")
    run_p.add_argument("-c", dest="inline", help="inline script text")
    run_p.add_argument("--engine", choices=("bash", "pash", "jash"),
                       default="jash")
    run_p.add_argument("--machine", choices=sorted(PROFILES), default="laptop")
    run_p.add_argument("--file", action="append", default=[],
                       metavar="HOST:VIRT",
                       help="copy a host file into the virtual fs")
    run_p.add_argument("--report", action="store_true",
                       help="print the optimizer's decisions afterwards")
    run_p.add_argument("--trace", metavar="OUT.json",
                       help="record a trace and export Chrome trace_event "
                            "JSON (open in ui.perfetto.dev)")
    run_p.add_argument("--metrics", metavar="OUT.json",
                       help="sample the metrics plane on the virtual clock "
                            "and export the deterministic snapshot")
    run_p.add_argument("--no-splice", action="store_true",
                       help="disable the kernel splice fast path (results "
                            "are identical; this exists to prove it)")
    run_p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="host worker processes for certificate-gated "
                            "regions (default $JASH_JOBS or 1; stdout and "
                            "virtual times are identical at any N)")
    run_p.add_argument("--supervise", action="store_true",
                       help="run under the crash-consistent supervisor "
                            "(journaled rounds, durable checkpoints, "
                            "resume from --checkpoint after a crash)")
    run_p.add_argument("--checkpoint", metavar="DIR",
                       help="checkpoint directory (journal + cache "
                            "snapshot); required with --supervise")
    run_p.add_argument("--input", metavar="VIRT", default="/stream.log",
                       help="virtual path of the growing input "
                            "(default /stream.log)")
    run_p.add_argument("--tail", metavar="HOST",
                       help="host file to tail as the growing input; "
                            "default is a seeded synthetic log stream")
    run_p.add_argument("--rounds", type=int, default=1,
                       help="supervised rounds to run (default 1)")
    run_p.add_argument("--grow", type=int, default=65536, metavar="BYTES",
                       help="bytes the synthetic source grows per round")
    run_p.add_argument("--seed", type=int, default=0,
                       help="synthetic source seed")

    stat_p = sub.add_parser(
        "stat", help="run a script with the metrics plane and print "
                     "per-window telemetry tables")
    stat_p.add_argument("script", nargs="?", help="script file (host path)")
    stat_p.add_argument("-c", dest="inline", help="inline script text")
    stat_p.add_argument("--engine", choices=("bash", "pash", "jash"),
                        default="jash")
    stat_p.add_argument("--machine", choices=sorted(PROFILES),
                        default="laptop")
    stat_p.add_argument("--file", action="append", default=[],
                        metavar="HOST:VIRT",
                        help="copy a host file into the virtual fs")
    stat_p.add_argument("--interval", type=float, default=0.25,
                        metavar="VSEC",
                        help="sampling window in virtual seconds "
                             "(default 0.25)")
    stat_p.add_argument("--top", type=int, default=5,
                        help="processes to show in the top table")
    stat_p.add_argument("--format", choices=("table", "prom"),
                        default="table",
                        help="table report or Prometheus text exposition")
    stat_p.add_argument("--metrics", metavar="OUT.json",
                        help="also export the deterministic snapshot")
    stat_p.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="host worker processes; adds the pool section "
                             "to the report when N > 1")
    stat_p.add_argument("--supervise", action="store_true",
                        help="drive the script under the supervisor and "
                             "report across its rounds")
    stat_p.add_argument("--checkpoint", metavar="DIR",
                        help="checkpoint directory; required with "
                             "--supervise")
    stat_p.add_argument("--input", metavar="VIRT", default="/stream.log")
    stat_p.add_argument("--tail", metavar="HOST",
                        help="host file to tail as the growing input")
    stat_p.add_argument("--rounds", type=int, default=1)
    stat_p.add_argument("--grow", type=int, default=65536, metavar="BYTES")
    stat_p.add_argument("--seed", type=int, default=0)

    prof_p = sub.add_parser(
        "profile", help="run a script with tracing and print the "
                        "critical-path report")
    prof_p.add_argument("script", nargs="?", help="script file (host path)")
    prof_p.add_argument("-c", dest="inline", help="inline script text")
    prof_p.add_argument("--engine", choices=("bash", "pash", "jash"),
                        default="jash")
    prof_p.add_argument("--machine", choices=sorted(PROFILES),
                        default="laptop")
    prof_p.add_argument("--file", action="append", default=[],
                        metavar="HOST:VIRT",
                        help="copy a host file into the virtual fs")
    prof_p.add_argument("--trace", metavar="OUT.json",
                        help="also export the Chrome trace_event JSON")
    prof_p.add_argument("--top", type=int, default=8,
                        help="processes to show in the report table")

    lint_p = sub.add_parser("lint", help="static analysis of a script")
    lint_p.add_argument("script", nargs="?")
    lint_p.add_argument("-c", dest="inline")

    check_p = sub.add_parser(
        "check", help="whole-script effect analysis: safety certificates, "
                      "races, def-use flow, plus all lint diagnostics")
    check_p.add_argument("script", nargs="?")
    check_p.add_argument("-c", dest="inline")
    check_p.add_argument("--format", choices=("text", "json"),
                         default="text")
    check_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="also report S21 pool eligibility (JS2260) "
                              "as if run with --jobs N")

    explain_p = sub.add_parser("explain",
                               help="explain a pipeline or a JSnnnn "
                                    "lint code")
    explain_p.add_argument("pipeline")

    tutor_p = sub.add_parser("tutor", help="review a script with guidance")
    tutor_p.add_argument("script", nargs="?")
    tutor_p.add_argument("-c", dest="inline")

    parse_p = sub.add_parser("parse", help="dump the AST")
    parse_p.add_argument("script", nargs="?")
    parse_p.add_argument("-c", dest="inline")

    infer_p = sub.add_parser("infer", help="infer a command's spec")
    infer_p.add_argument("argv", nargs="+")

    diff_p = sub.add_parser(
        "difftest",
        help="differential conformance campaign vs the host /bin/sh")
    diff_p.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    diff_p.add_argument("--count", type=int, default=200,
                        help="number of generated scripts (default 200)")
    diff_p.add_argument("--profile", default="default", dest="grammar_profile",
                        help="grammar profile (see `jash difftest --list-profiles`)")
    diff_p.add_argument("--list-profiles", action="store_true",
                        help="list grammar profiles and exit")
    diff_p.add_argument("--minimize", action="store_true",
                        help="delta-debug each divergence to a minimal script")
    diff_p.add_argument("--save-corpus", action="store_true",
                        help="write minimized divergences to tests/corpus/divergences/")
    diff_p.add_argument("--shell", default=None,
                        help="host shell binary (default: sh on PATH)")
    diff_p.add_argument("--baseline", default=None,
                        help="known-divergence baseline JSON (fail only on new ones)")
    diff_p.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with this campaign's divergences")
    diff_p.add_argument("--show", type=int, default=10, metavar="N",
                        help="print at most N divergences (default 10)")
    diff_p.add_argument("--replay", default=None, metavar="DIR",
                        help="replay checked-in session traces from DIR "
                             "instead of generating scripts")
    diff_p.add_argument("--report", default=None, metavar="FILE",
                        help="write a JSON divergence report (CI artifact)")
    diff_p.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run the virtual side under the S21 host pool "
                             "with N workers (ship gate forced open so tiny "
                             "corpora still exercise it)")

    args = parser.parse_args(argv)

    if args.cmd == "run":
        if args.no_splice:
            from .commands.base import set_splice_enabled

            set_splice_enabled(False)
        text = _script_text(args)
        machine = profile(args.machine)
        metrics = _make_metrics(args)
        if args.supervise:
            return _supervise(args, text, machine, metrics=metrics)
        optimizer = make_engine(args.engine)
        tracer = None
        if args.trace:
            from .obs import Tracer

            tracer = Tracer()
        shell = Shell(machine, optimizer=optimizer, tracer=tracer,
                      metrics=metrics, jobs=args.jobs)
        for spec in args.file:
            host, _, virt = spec.partition(":")
            with open(host, "rb") as fh:
                shell.fs.write_bytes(virt or "/" + host, fh.read())
        _warn_jobs_idle(text, shell)
        result = shell.run(text)
        sys.stdout.write(result.out)
        sys.stderr.write(result.err)
        print(f"[virtual time: {result.elapsed:.4f}s on {machine.name}]",
              file=sys.stderr)
        if args.report and optimizer is not None and hasattr(optimizer, "report"):
            print(optimizer.report(), file=sys.stderr)
        if tracer is not None:
            from .obs import dump_chrome

            dump_chrome(tracer, args.trace)
            print(f"[trace: {len(tracer.records)} records -> {args.trace}]",
                  file=sys.stderr)
        if metrics is not None:
            _export_metrics(metrics, shell.kernel.now, args.metrics)
        return result.status

    if args.cmd == "stat":
        return _stat(args)

    if args.cmd == "profile":
        from .obs import Tracer, dump_chrome, render_report

        text = _script_text(args)
        machine = profile(args.machine)
        optimizer = make_engine(args.engine)
        tracer = Tracer()
        shell = Shell(machine, optimizer=optimizer, tracer=tracer)
        for spec in args.file:
            host, _, virt = spec.partition(":")
            with open(host, "rb") as fh:
                shell.fs.write_bytes(virt or "/" + host, fh.read())
        result = shell.run(text)
        sys.stderr.write(result.err)
        print(f"[status {result.status}, virtual time {result.elapsed:.4f}s "
              f"on {machine.name}, engine {args.engine}]")
        print(render_report(tracer, top=args.top))
        if args.trace:
            dump_chrome(tracer, args.trace)
            print(f"[trace: {len(tracer.records)} records -> {args.trace}]")
        return result.status

    if args.cmd == "lint":
        from .lint import lint

        text = _script_text(args)
        diagnostics = lint(text)
        for diag in diagnostics:
            print(diag)
        return 1 if any(d.severity == "error" for d in diagnostics) else 0

    if args.cmd == "check":
        return _check(args)

    if args.cmd == "explain":
        import re as _re

        from .lint import explain, explain_check

        if _re.fullmatch(r"JS\d{4}", args.pipeline):
            print(explain_check(args.pipeline))
        else:
            print(explain(args.pipeline))
        return 0

    if args.cmd == "tutor":
        from .lint import tutor

        print(tutor(_script_text(args)).render())
        return 0

    if args.cmd == "parse":
        from .parser import parse

        print(parse(_script_text(args)))
        return 0

    if args.cmd == "infer":
        from .annotations.inference import infer

        result = infer(args.argv)
        print(f"{' '.join(args.argv)}: {result.par_class.value}")
        if result.aggregator is not None:
            agg = result.aggregator
            print(f"  aggregator: {agg.kind.value} {' '.join(agg.argv)}")
        for line in result.evidence:
            print(f"  evidence: {line}")
        return 0

    if args.cmd == "difftest":
        return _difftest(args)

    return 2


def _warn_jobs_idle(text: str, shell) -> None:
    """JS2260: tell the user when --jobs > 1 cannot do anything."""
    if shell.host_coord is None:
        return
    from .analysis import analyze_program
    from .lint import check_jobs_eligibility
    from .parser import parse

    try:
        program = parse(text)
        diag = check_jobs_eligibility(
            program, analyze_program(program, fs=shell.fs), shell.jobs)
    except Exception:
        return
    if diag is not None:
        print(diag, file=sys.stderr)


def _make_metrics(args):
    if not getattr(args, "metrics", None):
        return None
    from .obs import MetricsRegistry

    return MetricsRegistry(interval=getattr(args, "interval", 0.25))


def _export_metrics(metrics, now: float, path: str) -> None:
    from .obs import dump_snapshot

    metrics.finish(now)
    dump_snapshot(metrics, path)
    print(f"[metrics: {len(metrics.series)} series, "
          f"{len(metrics.windows)} window(s) -> {path}]", file=sys.stderr)


def _supervise(args, text: str, machine, metrics=None,
               emit_output: bool = True) -> int:
    """``jash run --supervise``: journaled rounds over a growing input,
    resumable from the checkpoint directory after a crash."""
    from .supervise import (FileTailSource, Supervisor, SuperviseConfig,
                            SyntheticSource)

    if not args.checkpoint:
        print("jash run --supervise requires --checkpoint DIR",
              file=sys.stderr)
        return 2
    tracer = None
    if getattr(args, "trace", None):
        from .obs import Tracer

        tracer = Tracer()
    source = (FileTailSource(args.tail) if args.tail
              else SyntheticSource(seed=args.seed))
    config = SuperviseConfig(script=text, checkpoint_dir=args.checkpoint,
                             input_path=args.input, machine=machine,
                             tracer=tracer, metrics=metrics)
    supervisor = Supervisor(config, source)
    repairs = supervisor.resume()
    if repairs["records"]:
        print(f"[resumed: {repairs['records']} committed round(s), "
              f"input offset {supervisor.journal.input_offset}, repaired "
              f"{repairs['torn_tail_bytes']}B torn tail / "
              f"{repairs['orphan_segs']} orphan seg(s)]", file=sys.stderr)
    for _ in range(max(1, args.rounds)):
        if not args.tail:
            source.grow(args.grow)
        report = supervisor.run_round()
        print(f"[round {report.round}: engine {report.engine}, "
              f"{report.attempts} attempt(s), {report.mode} commit, "
              f"output {report.output_len}B, saved {report.saved_bytes}B]",
              file=sys.stderr)
    if emit_output:
        sys.stdout.buffer.write(supervisor.committed_output())
        sys.stdout.flush()
    if tracer is not None:
        from .obs import dump_chrome

        dump_chrome(tracer, args.trace)
        print(f"[trace: {len(tracer.records)} records -> {args.trace}]",
              file=sys.stderr)
    if metrics is not None and supervisor.shell is not None:
        metrics.finish(supervisor.shell.kernel.now)
        if getattr(args, "metrics", None):
            _export_metrics(metrics, supervisor.shell.kernel.now,
                            args.metrics)
    return 0


def _stat(args) -> int:
    """``jash stat``: run the workload with the metrics plane installed
    and print the windowed telemetry report (script stdout is
    suppressed; telemetry is the product)."""
    from .obs import MetricsRegistry, render_prometheus, render_stat

    text = _script_text(args)
    machine = profile(args.machine)
    metrics = MetricsRegistry(interval=args.interval)
    shell = None
    if args.supervise:
        status = _supervise(args, text, machine, metrics=metrics,
                            emit_output=False)
        if status != 0:
            return status
    else:
        optimizer = make_engine(args.engine)
        shell = Shell(machine, optimizer=optimizer, metrics=metrics,
                      jobs=args.jobs)
        for spec in args.file:
            host, _, virt = spec.partition(":")
            with open(host, "rb") as fh:
                shell.fs.write_bytes(virt or "/" + host, fh.read())
        _warn_jobs_idle(text, shell)
        result = shell.run(text)
        sys.stderr.write(result.err)
        print(f"[status {result.status}, virtual time {result.elapsed:.4f}s "
              f"on {machine.name}, engine {args.engine}]", file=sys.stderr)
        metrics.finish(shell.kernel.now)
        if args.metrics:
            _export_metrics(metrics, shell.kernel.now, args.metrics)
    if args.format == "prom":
        sys.stdout.write(render_prometheus(metrics))
    else:
        sys.stdout.write(render_stat(metrics, top=args.top))
        if shell is not None and shell.host_coord is not None:
            from .parallel_host import render_pool_stats

            coord = shell.host_coord
            worker_stats = (coord.pool.worker_stats
                            if coord.pool is not None else {})
            sys.stdout.write(render_pool_stats(coord.stats, worker_stats))
    return 0


def _difftest(args) -> int:
    """``jash difftest``: generate seeded scripts, run them in both
    shells, and report divergences (optionally minimized / baselined)."""
    from pathlib import Path

    from . import difftest as dt
    from .difftest import runner as dt_runner

    if args.list_profiles:
        for name in dt.profiles():
            print(name)
        return 0

    if args.jobs and args.jobs > 1:
        # the runner builds its own Shells; the env default reaches them.
        # Forcing the ship gate open makes tiny generated corpora still
        # exercise the pool machinery.
        import os

        os.environ["JASH_JOBS"] = str(args.jobs)
        os.environ.setdefault("JASH_POOL_MIN_BYTES", "0")

    if args.replay:
        return _difftest_replay(args)

    if dt_runner.HOST_SH is None and args.shell is None:
        print("difftest: no host /bin/sh available; nothing to compare against",
              file=sys.stderr)
        return 0

    cases = dt.generate_cases(args.seed, args.count, args.grammar_profile)
    result = dt.run_campaign(cases, sh=args.shell)
    print(f"difftest: {result.agreed}/{result.total} agreed "
          f"(profile={args.grammar_profile}, seed={args.seed})")

    divergences = result.divergences
    if args.minimize and divergences:
        minimized = []
        for d in divergences:
            reduced = dt.minimize(d.case, sh=args.shell)
            # re-run so the reported outcomes describe the reduced case
            minimized.append(dt.run_case(reduced, sh=args.shell) or d)
        divergences = minimized

    baseline_path = Path(args.baseline) if args.baseline else None
    baseline = dt.load_baseline(baseline_path) if (
        args.baseline or args.update_baseline) else {}
    new, known = (dt.split_new(divergences, baseline)
                  if baseline else (divergences, []))
    if known:
        print(f"difftest: {len(known)} known divergence(s) in baseline")

    for d in new[:args.show]:
        print(f"--- {d.case.ident} [{dt.fingerprint(d.case)}]: {d.reason}")
        print(d.case.script)
        if d.case.files:
            for name in sorted(d.case.files):
                print(f"  file {name}: {d.case.files[name]!r}")
        print(f"  virtual: status={d.virtual.status} "
              f"stdout={d.virtual.stdout[:120]!r}")
        print(f"  host:    status={d.host.status} "
              f"stdout={d.host.stdout[:120]!r}")
    if len(new) > args.show:
        print(f"... and {len(new) - args.show} more")

    if args.save_corpus:
        for d in new:
            host = d.host
            entry = dt.CorpusEntry(
                name=d.case.ident, profile=d.case.profile, reason=d.reason,
                script=d.case.script, files=d.case.files,
                expect_status=host.status, expect_stdout=host.stdout)
            path = dt.write_entry(entry)
            print(f"difftest: saved {path}")

    if args.report:
        _write_difftest_report(
            args.report, result,
            mode="grammar", profile=args.grammar_profile, seed=args.seed,
            new=new, known=known)

    if args.update_baseline:
        path = dt.save_baseline(divergences, baseline_path)
        print(f"difftest: baseline updated -> {path}")
        return 0

    if new:
        print(f"difftest: {len(new)} NEW divergence(s)", file=sys.stderr)
        return 1
    return 0


def _write_difftest_report(path, result, *, mode, new, known,
                           profile=None, seed=None) -> None:
    """JSON divergence report for CI artifact upload."""
    import json

    from . import difftest as dt

    def _div(d):
        return {
            "ident": d.case.ident,
            "fingerprint": dt.fingerprint(d.case),
            "reason": d.reason,
            "script": d.case.script,
            "files": {name: data.decode("latin-1")
                      for name, data in sorted(d.case.files.items())},
            "virtual": {"status": d.virtual.status,
                        "stdout": d.virtual.stdout.decode("latin-1"),
                        "error": d.virtual.error},
            "host": {"status": d.host.status,
                     "stdout": d.host.stdout.decode("latin-1"),
                     "error": d.host.error},
        }

    payload = {
        "mode": mode,
        "profile": profile,
        "seed": seed,
        "total": result.total,
        "agreed": result.agreed,
        "new": [_div(d) for d in new],
        "known": [_div(d) for d in known],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"difftest: report written -> {path}")


def _difftest_replay(args) -> int:
    """``jash difftest --replay DIR``: replay checked-in session traces.
    With a host shell: the full virtual-vs-host comparison.  Without one:
    verify the virtual shell against each trace's recorded expectations."""
    from pathlib import Path

    from . import difftest as dt
    from .difftest import runner as dt_runner

    directory = Path(args.replay)
    traces = dt.load_sessions(directory)
    if not traces:
        print(f"difftest: no *.session traces under {directory}",
              file=sys.stderr)
        return 1

    if dt_runner.HOST_SH is None and args.shell is None:
        # host-less box: fall back to the recorded expectations
        failures = []
        for trace in traces:
            reason = dt.verify_recorded(trace)
            if reason is not None:
                failures.append((trace, reason))
        print(f"difftest: replayed {len(traces)} session(s) against "
              f"recordings, {len(failures)} mismatch(es)")
        for trace, reason in failures[:args.show]:
            print(f"--- session-{trace.name}: {reason}")
        return 1 if failures else 0

    result = dt.run_replay(traces, sh=args.shell)
    print(f"difftest: {result.agreed}/{result.total} session(s) agreed "
          f"(dir={directory})")

    divergences = result.divergences
    if args.minimize and divergences:
        by_name = {f"session-{t.name}": t for t in traces}
        minimized = []
        for d in divergences:
            trace = by_name.get(d.case.ident)
            if trace is None:
                minimized.append(d)
                continue
            reduced = dt.minimize_session(trace, sh=args.shell)
            case = dt.session_case(reduced)
            minimized.append(dt.run_case(case, sh=args.shell) or d)
        divergences = minimized

    baseline_path = Path(args.baseline) if args.baseline else None
    baseline = dt.load_baseline(baseline_path) if args.baseline else {}
    new, known = (dt.split_new(divergences, baseline)
                  if baseline else (divergences, []))
    if known:
        print(f"difftest: {len(known)} known divergence(s) in baseline")

    for d in new[:args.show]:
        print(f"--- {d.case.ident} [{dt.fingerprint(d.case)}]: {d.reason}")
        print(d.case.script)
        print(f"  virtual: status={d.virtual.status} "
              f"stdout={d.virtual.stdout[:120]!r}")
        print(f"  host:    status={d.host.status} "
              f"stdout={d.host.stdout[:120]!r}")
    if len(new) > args.show:
        print(f"... and {len(new) - args.show} more")

    if args.report:
        _write_difftest_report(args.report, result, mode="replay",
                               new=new, known=known)

    if new:
        print(f"difftest: {len(new)} NEW session divergence(s)",
              file=sys.stderr)
        return 1
    return 0


def _check(args) -> int:
    """``jash check``: run the S16 analyzer + all lint checks and render
    a whole-script safety report."""
    import json

    from .analysis import analyze_program
    from .lint import lint
    from .parser import parse

    text = _script_text(args)
    program = parse(text)
    result = analyze_program(program)
    diagnostics = lint(text)
    if args.jobs and args.jobs > 1:
        from .lint import check_jobs_eligibility

        jobs_diag = check_jobs_eligibility(program, result, args.jobs)
        if jobs_diag is not None:
            diagnostics.append(jobs_diag)
    errors = sum(1 for d in diagnostics if d.severity == "error")

    if args.format == "json":
        payload = result.to_dict()
        # deterministic order regardless of check registration or hash
        # seed: position first, then code/message/context tie-breaks
        payload["diagnostics"] = [
            {"code": d.code, "severity": d.severity,
             "line": d.line, "col": d.col,
             "message": d.message, "context": d.context}
            for d in sorted(diagnostics,
                            key=lambda d: (d.line, d.col, d.code,
                                           d.message, d.context))
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if errors else 0

    stats = result.stats()
    print(f"statements analyzed: {stats['statements']}")
    print(f"certificates: {stats['certificates']} "
          f"(safe_parallel {stats['safe_parallel']}, "
          f"safe_reorder {stats['safe_reorder']}, "
          f"unsafe {stats['unsafe']})")
    for cert in result.cert_list:
        print(f"  [{cert.verdict}] `{cert.node_text}` — {cert.reason} "
              f"({cert.digest})")
        for hazard in cert.hazards:
            print(f"      hazard: {hazard}")
    if result.statements:
        print("effects:")
        for stmt in result.statements:
            s = stmt.summary
            reads = ", ".join(sorted(p.display() for p in s.reads)) or "-"
            writes = ", ".join(sorted(p.display() for p in s.writes)) or "-"
            mark = " &" if stmt.is_async else ""
            opaque = " (opaque)" if s.opaque else ""
            print(f"  `{stmt.text}`{mark}: reads {reads}; writes "
                  f"{writes}{opaque}")
    if result.races:
        print("races:")
        for race in result.races:
            print(f"  {race.display()}")
    if result.use_before_def:
        print("use-before-def:")
        for use in result.use_before_def:
            print(f"  ${use.name} in `{_unparse_node(use.node)}`")
    if diagnostics:
        print("diagnostics:")
        for diag in diagnostics:
            print(f"  {diag}")
    print(f"{errors} error(s), "
          f"{sum(1 for d in diagnostics if d.severity == 'warning')} "
          f"warning(s)")
    return 1 if errors else 0


def _unparse_node(node) -> str:
    from .parser.unparse import unparse

    return unparse(node)


def _script_text(args) -> str:
    if getattr(args, "inline", None):
        return args.inline
    if getattr(args, "script", None):
        with open(args.script, "r") as fh:
            return fh.read()
    return sys.stdin.read()


if __name__ == "__main__":
    raise SystemExit(main())
