"""Retry / backoff / timeout policies (§4 "fault tolerant").

One policy vocabulary shared by every recovery layer: the distributed
shell re-runs failed per-file branches under a :class:`RetryPolicy`,
and the transactional region executor
(:mod:`repro.compiler.transactional`) re-runs rolled-back dataflow
plans under the same object.  This replaces dshell's ad-hoc attempt
counting.

Delays are *virtual* seconds (slept on the vOS clock) and default to
zero so fault-free timings are unchanged; backoff is exponential with
a cap and optional deterministic jitter (seeded, so fault schedules
stay reproducible).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) to re-execute failed work.

    ``max_retries`` counts *re*-executions: 2 means up to three total
    attempts.  ``timeout_s`` arms a watchdog over each attempt where
    the caller supports one (dshell branches); ``None`` disables it.
    """

    max_retries: int = 2
    base_delay_s: float = 0.0
    backoff: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.0  # fraction of the delay, drawn deterministically
    seed: int = 0
    timeout_s: Optional[float] = None
    #: total virtual seconds (attempt time + backoff) after which no
    #: further retry is started; None = unbounded
    max_elapsed_s: Optional[float] = None

    def should_retry(self, retry_index: int,
                     elapsed_s: float = 0.0) -> bool:
        """May we start re-execution number ``retry_index`` (1-based)?
        ``elapsed_s`` is virtual time spent since the first attempt
        began — once it exceeds ``max_elapsed_s`` the budget is gone
        regardless of the retry count."""
        if not 1 <= retry_index <= self.max_retries:
            return False
        if self.max_elapsed_s is not None and elapsed_s >= self.max_elapsed_s:
            return False
        return True

    def delay(self, retry_index: int) -> float:
        """Virtual seconds to back off before re-execution ``retry_index``."""
        if self.base_delay_s <= 0.0 or retry_index < 1:
            return 0.0
        d = min(self.max_delay_s,
                self.base_delay_s * self.backoff ** (retry_index - 1))
        if self.jitter > 0.0:
            rng = random.Random(self.seed * 1_000_003 + retry_index)
            d *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, d)

    def next_delay(self, retry_index: int,
                   elapsed_s: float = 0.0) -> Optional[float]:
        """The single retry decision point: ``None`` means give up
        (count or elapsed budget exhausted), otherwise the virtual
        backoff before re-execution ``retry_index``.  Every recovery
        layer (transactional regions, dshell branches, the supervisor)
        must route its loop through here rather than hand-rolling
        sleep/attempt arithmetic."""
        if not self.should_retry(retry_index, elapsed_s):
            return None
        d = self.delay(retry_index)
        if self.max_elapsed_s is not None:
            # never sleep past the elapsed budget
            d = min(d, max(0.0, self.max_elapsed_s - elapsed_s))
        return d

    def attempts(self) -> int:
        """Total executions allowed (first try + retries)."""
        return 1 + max(0, self.max_retries)


NO_RETRY = RetryPolicy(max_retries=0)


def policy_from_max_retries(max_retries: int) -> RetryPolicy:
    """Adapter for the legacy ``max_retries=N`` keyword arguments."""
    return RetryPolicy(max_retries=max(0, max_retries))


def spawn_watchdog(proc, kernel, pids, timeout_s: Optional[float],
                   name: str = "watchdog"):
    """Arm a virtual-time watchdog over ``pids`` (generator; use with
    ``yield from``).  After ``timeout_s`` virtual seconds any still-
    running victim is SIGKILLed (status 137), so a stalled branch or
    region surfaces as an ordinary fault-suspected failure and is
    retried by whatever :class:`RetryPolicy` loop owns it.  This is the
    one watchdog implementation shared by dshell and the supervisor.
    No-op when ``timeout_s`` is None."""
    if timeout_s is None:
        return None
    from ..vos.process import DONE

    def watchdog(wproc, pids=tuple(pids), timeout=timeout_s):
        yield from wproc.sleep(timeout)
        for pid in pids:
            victim = kernel.processes.get(pid)
            if victim is not None and victim.state != DONE:
                kernel.kill_process(victim)
        return 0

    pid = yield from proc.spawn(watchdog, name=name)
    return pid


def arm_watchdog(kernel, timeout_s: Optional[float],
                 name: str = "watchdog"):
    """Host-side variant of :func:`spawn_watchdog` for callers outside
    any vOS process (the supervisor arming a whole-script timeout):
    creates the watchdog process directly on ``kernel``.  After
    ``timeout_s`` virtual seconds every *other* still-running process
    is SIGKILLed.  Returns the watchdog Process — disarm it with
    ``kernel.kill_process`` once the guarded run finished (a killed
    watchdog's pending timer is inert).  None timeout = no-op."""
    if timeout_s is None:
        return None
    from ..vos.process import DONE

    def watchdog(wproc, timeout=timeout_s):
        yield from wproc.sleep(timeout)
        for victim in list(kernel.processes.values()):
            if victim is not wproc and victim.state != DONE:
                kernel.kill_process(victim)
        return 0

    return kernel.create_process(watchdog, name=name)
