"""Retry / backoff / timeout policies (§4 "fault tolerant").

One policy vocabulary shared by every recovery layer: the distributed
shell re-runs failed per-file branches under a :class:`RetryPolicy`,
and the transactional region executor
(:mod:`repro.compiler.transactional`) re-runs rolled-back dataflow
plans under the same object.  This replaces dshell's ad-hoc attempt
counting.

Delays are *virtual* seconds (slept on the vOS clock) and default to
zero so fault-free timings are unchanged; backoff is exponential with
a cap and optional deterministic jitter (seeded, so fault schedules
stay reproducible).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) to re-execute failed work.

    ``max_retries`` counts *re*-executions: 2 means up to three total
    attempts.  ``timeout_s`` arms a watchdog over each attempt where
    the caller supports one (dshell branches); ``None`` disables it.
    """

    max_retries: int = 2
    base_delay_s: float = 0.0
    backoff: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.0  # fraction of the delay, drawn deterministically
    seed: int = 0
    timeout_s: Optional[float] = None

    def should_retry(self, retry_index: int) -> bool:
        """May we start re-execution number ``retry_index`` (1-based)?"""
        return 1 <= retry_index <= self.max_retries

    def delay(self, retry_index: int) -> float:
        """Virtual seconds to back off before re-execution ``retry_index``."""
        if self.base_delay_s <= 0.0 or retry_index < 1:
            return 0.0
        d = min(self.max_delay_s,
                self.base_delay_s * self.backoff ** (retry_index - 1))
        if self.jitter > 0.0:
            rng = random.Random(self.seed * 1_000_003 + retry_index)
            d *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, d)

    def attempts(self) -> int:
        """Total executions allowed (first try + retries)."""
        return 1 + max(0, self.max_retries)


NO_RETRY = RetryPolicy(max_retries=0)


def policy_from_max_retries(max_retries: int) -> RetryPolicy:
    """Adapter for the legacy ``max_retries=N`` keyword arguments."""
    return RetryPolicy(max_retries=max(0, max_retries))
