"""Cluster substrate: multiple nodes in one kernel plus a network model.

"Building a distributed Unix equivalent, in which Unix abstractions
transcend single-computer boundaries, has been a goal since the 1970s"
(§4 Distribution).  Each node has its own filesystem, disk, and cores;
cross-node byte movement goes through a shared FIFO network with
bandwidth and per-transfer latency, which is what makes POSH-style
data-aware placement measurably better than shipping everything to one
node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..vos.kernel import Kernel, Node
from ..vos.machines import MachineSpec, laptop
from ..vos.process import Process
from ..vos.syscalls import NetSendReq


@dataclass
class _NetRequest:
    nbytes: int
    process: Process


class Network:
    """Shared-medium FIFO network: one transfer in flight at a time,
    service time = latency + bytes/bandwidth."""

    def __init__(self, bandwidth_bps: float = 1.25e9, latency_s: float = 0.0002):
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.queue: list[_NetRequest] = []
        self.current: Optional[_NetRequest] = None
        self.busy_until: Optional[float] = None
        self.total_bytes = 0
        self.total_transfers = 0

    def submit(self, kernel: Kernel, proc: Process, request: NetSendReq) -> None:
        self.total_bytes += request.nbytes
        self.total_transfers += 1
        net_request = _NetRequest(request.nbytes, proc)
        if self.current is None:
            self._start(kernel, net_request)
        else:
            self.queue.append(net_request)

    def _start(self, kernel: Kernel, request: _NetRequest) -> None:
        self.current = request
        duration = self.latency_s + request.nbytes / self.bandwidth_bps
        self.busy_until = kernel.now + duration

    def next_event_time(self) -> Optional[float]:
        return self.busy_until

    def advance_to(self, kernel: Kernel, now: float) -> None:
        while self.busy_until is not None and self.busy_until <= now + 1e-12:
            done = self.current
            self.current = None
            self.busy_until = None
            if done is not None:
                kernel._ready.append((done.process, None, None))
            if self.queue:
                self._start(kernel, self.queue.pop(0))


class Cluster:
    """A multi-node machine: one kernel, one network, n nodes."""

    def __init__(self, n_nodes: int = 4, machine: Optional[MachineSpec] = None,
                 bandwidth_bps: float = 1.25e9, latency_s: float = 0.0002):
        self.machine = machine or laptop()
        self.kernel = Kernel()
        self.kernel.network = Network(bandwidth_bps, latency_s)
        self.node_names: list[str] = []
        for i in range(n_nodes):
            name = f"node{i}"
            self.kernel.add_node(self.machine.make_node(name=name))
            self.node_names.append(name)
        self.failed: set[str] = set()

    @property
    def network(self) -> Network:
        return self.kernel.network

    def node(self, name: str) -> Node:
        return self.kernel.nodes[name]

    def fs(self, name: str):
        return self.kernel.nodes[name].fs

    def write_file(self, path: str, data: bytes, nodes: list[str]) -> None:
        """Store ``path`` on the given nodes (replication factor =
        len(nodes))."""
        for name in nodes:
            self.fs(name).write_bytes(path, data, mtime=self.kernel.now)

    def locate(self, path: str) -> list[str]:
        """Nodes (not failed) holding a replica of ``path``."""
        return [name for name in self.node_names
                if name not in self.failed and self.fs(name).is_file(path)]

    def fail_node(self, name: str) -> None:
        """Immediately kill everything on a node and take it offline."""
        self.failed.add(name)
        node = self.kernel.nodes[name]
        for proc in self.kernel.processes_on(node):
            self.kernel.kill_process(proc)

    def alive_nodes(self) -> list[str]:
        return [n for n in self.node_names if n not in self.failed]
