"""S12/S8 — the distributed, fault-tolerant shell and POSH-style
data-aware placement over a simulated cluster."""

from .cluster import Cluster, Network
from .dshell import DistributedError, DistributedResult, DistributedShell
from .placement import Placement, PlacementError, bytes_moved, central, data_aware

__all__ = [
    "Cluster", "Network", "DistributedError", "DistributedResult",
    "DistributedShell", "Placement", "PlacementError", "bytes_moved",
    "central", "data_aware",
]
