"""S12/S8 — the distributed, fault-tolerant shell and POSH-style
data-aware placement over a simulated cluster."""

from .cluster import Cluster, Network
from .dshell import DistributedError, DistributedResult, DistributedShell
from .placement import Placement, PlacementError, bytes_moved, central, data_aware
from .retry import NO_RETRY, RetryPolicy, policy_from_max_retries

__all__ = [
    "Cluster", "Network", "DistributedError", "DistributedResult",
    "DistributedShell", "Placement", "PlacementError", "bytes_moved",
    "central", "data_aware", "NO_RETRY", "RetryPolicy",
    "policy_from_max_retries",
]
