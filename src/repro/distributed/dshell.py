"""A distributed, fault-tolerant shell for dataflow regions (§4
Distribution).

"combining programs in this fragment with the JIT compilation of Jash
... could enable the development of a well-behaved distributed and
fault tolerant shell, where users can easily configure and efficiently
execute tasks on a cluster of nodes."

``DistributedShell.run`` takes a per-file *chain* (a pipeline of
annotated commands, e.g. ``grep ERROR | wc -l``) and a set of input
files resident on cluster nodes.  The chain runs next to each file
(POSH placement) or centrally (baseline); partial results are staged on
the merge node (network-charged), aggregated with the chain's
aggregator, and failed branches are retried on surviving replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..annotations.library import DEFAULT_LIBRARY
from ..annotations.model import AggKind, ParClass, SpecLibrary
from ..commands.base import PROC_STARTUP, lookup
from ..dfg.from_ast import make_stage
from ..parser import parse_one
from ..parser.ast_nodes import Pipeline, SimpleCommand
from ..vos.faults import FAULT_STATUSES
from ..vos.handles import Collector, NullHandle, StringSource, make_pipe
from ..vos.process import CHUNK, Process
from .cluster import Cluster
from .placement import Placement, PlacementError, central, data_aware
from .retry import RetryPolicy, policy_from_max_retries, spawn_watchdog


@dataclass
class DistributedResult:
    status: int
    output: bytes
    elapsed: float
    network_bytes: int
    retries: int
    placement: Optional[Placement] = None

    @property
    def out(self) -> str:
        return self.output.decode("utf-8", "replace")


class DistributedError(Exception):
    pass


class DistributedShell:
    def __init__(self, cluster: Cluster, head: str = "node0",
                 library: Optional[SpecLibrary] = None):
        self.cluster = cluster
        self.head = head
        self.library = library or DEFAULT_LIBRARY

    # -- public API ---------------------------------------------------------------

    def parse_chain(self, pipeline_text: str):
        """Parse and classify a per-file chain; returns (stages, agg)."""
        node = parse_one(pipeline_text)
        if isinstance(node, SimpleCommand):
            cmds = [node]
        elif isinstance(node, Pipeline) and not node.negated:
            cmds = list(node.commands)
        else:
            raise DistributedError("chain must be a flat pipeline")
        stages = []
        for cmd in cmds:
            if not isinstance(cmd, SimpleCommand) or cmd.redirects or cmd.assigns:
                raise DistributedError("chain stages must be plain commands")
            argv = [w.literal_value() for w in cmd.words if w.is_literal()]
            if len(argv) != len(cmd.words):
                raise DistributedError("chain must be static (no expansions)")
            stage = make_stage(argv, self.library)
            if stage is None:
                raise DistributedError(f"unknown/side-effectful command: {argv[0]}")
            stages.append(stage)
        # aggregation: stateless prefix + optional parallelizable-pure cap
        agg_kind, agg_argv = AggKind.CONCAT, ()
        for i, stage in enumerate(stages):
            if stage.spec.par_class is ParClass.STATELESS:
                continue
            if (stage.spec.par_class is ParClass.PARALLELIZABLE_PURE
                    and i == len(stages) - 1):
                agg_kind = stage.spec.aggregator.kind
                agg_argv = stage.spec.aggregator.argv
            else:
                raise DistributedError(
                    f"stage {' '.join(stage.argv)} is not distributable"
                )
        return stages, (agg_kind, agg_argv)

    def run(self, pipeline_text: str, paths: list[str],
            strategy: str = "data-aware",
            selectivity: float = 1.0,
            max_retries: int = 1,
            retry: Optional[RetryPolicy] = None,
            fail: Optional[dict[str, float]] = None) -> DistributedResult:
        """Execute the chain over ``paths`` across the cluster.

        ``retry`` is the :class:`RetryPolicy` governing failed branches
        (backoff delays, retry budget, optional per-attempt timeout
        watchdog); ``max_retries`` is the legacy shorthand for
        ``RetryPolicy(max_retries=N)``.  ``fail`` maps node names to
        virtual times at which they crash (fault injection for the
        recovery experiments); injected vOS faults (a ``FaultPlan`` on
        the cluster kernel) are detected the same way, via the branch
        exit statuses 137 (crash) and 74 (injected I/O error).
        """
        stages, (agg_kind, agg_argv) = self.parse_chain(pipeline_text)
        policy = retry if retry is not None else policy_from_max_retries(max_retries)
        cluster = self.cluster
        kernel = cluster.kernel
        if strategy == "central":
            placement = central(cluster, paths, self.head)
        else:
            placement = data_aware(cluster, paths, self.head, selectivity)
        start = kernel.now
        net_before = cluster.network.total_bytes
        out = Collector()
        retries_box = {"count": 0}

        shell = self
        tracer = getattr(kernel, "tracer", None)

        def main(proc: Process):
            # fault injection reapers
            for node_name, at in (fail or {}).items():
                def reaper(rproc, node_name=node_name, at=at):
                    yield from rproc.sleep(max(0.0, at))
                    cluster.fail_node(node_name)
                    return 0
                yield from proc.spawn(reaper, name=f"reaper:{node_name}")
            staged: dict[str, Collector] = {}
            pending: list[tuple[str, str, list[int], Collector]] = []
            for path in paths:
                node_name = placement.assignments[path]
                branch = yield from shell._spawn_branch(
                    proc, stages, path, node_name
                )
                yield from shell._arm_watchdog(proc, branch[0], policy)
                if tracer is not None:
                    tracer.instant("dshell", "dshell.dispatch", kernel.now,
                                   proc, path=path, node=node_name, attempt=0)
                pending.append((path, node_name) + branch)
            attempt = 0
            while pending:
                failed: list[tuple[str, str]] = []
                for path, node_name, pids, collector in pending:
                    ok = True
                    for pid in pids:
                        st = yield from proc.wait(pid)
                        if st in FAULT_STATUSES:
                            ok = False
                    if ok:
                        staged[path] = collector
                    else:
                        failed.append((path, node_name))
                pending = []
                if failed:
                    attempt += 1
                    delay = policy.next_delay(attempt,
                                              elapsed_s=kernel.now - start)
                    if delay is None:
                        return 1
                    if delay > 0:
                        yield from proc.sleep(delay)
                    retries_box["count"] += len(failed)
                    for path, bad_node in failed:
                        replicas = cluster.locate(path)
                        if not replicas:
                            return 1
                        # prefer a replica that is not the node the branch
                        # just failed on (it may still be faulting)
                        others = [r for r in replicas if r != bad_node]
                        pool = others or replicas
                        node_name = self.head if self.head in pool else pool[0]
                        branch = yield from shell._spawn_branch(
                            proc, stages, path, node_name
                        )
                        yield from shell._arm_watchdog(proc, branch[0], policy)
                        if tracer is not None:
                            tracer.instant("dshell", "dshell.retry",
                                           kernel.now, proc, path=path,
                                           node=node_name, failed_on=bad_node,
                                           attempt=attempt)
                        pending.append((path, node_name) + branch)
            merge_start = kernel.now
            status = yield from shell._merge(proc, staged, paths,
                                             agg_kind, agg_argv, out)
            if tracer is not None:
                tracer.span("dshell", "dshell.merge", merge_start, kernel.now,
                            proc, node=shell.head, branches=len(paths),
                            agg=agg_kind.name.lower(), status=status)
            return status

        root = kernel.create_process(main, "dshell",
                                     node=kernel.nodes[self.head])
        status = kernel.run_until_process_done(root)
        return DistributedResult(
            status=status,
            output=out.getvalue(),
            elapsed=kernel.now - start,
            network_bytes=cluster.network.total_bytes - net_before,
            retries=retries_box["count"],
            placement=placement,
        )

    # -- watchdog ------------------------------------------------------------------

    def _arm_watchdog(self, proc: Process, pids: list[int], policy: RetryPolicy):
        """When the policy sets a timeout, arm the shared retry-layer
        watchdog (:func:`repro.distributed.retry.spawn_watchdog`) over
        the branch's processes — a stalled branch (e.g. a disk
        brown-out) then surfaces as status 137 and is retried like any
        other failure."""
        if policy.timeout_s is None:
            return
            yield  # pragma: no cover - keep generator shape
        yield from spawn_watchdog(proc, self.cluster.kernel, pids,
                                  policy.timeout_s)

    # -- branch construction -------------------------------------------------------

    def _spawn_branch(self, proc: Process, stages, path: str, node_name: str):
        """Spawn one file's chain on ``node_name`` with its output staged
        into a Collector on the merge node.  Returns (pids, collector)."""
        cluster = self.cluster
        collector = Collector()
        pids: list[int] = []
        exec_has_file = node_name in cluster.locate(path)

        # stdin source feeding the chain
        if exec_has_file:
            source_node = node_name
        else:
            replicas = cluster.locate(path)
            if not replicas:
                raise DistributedError(f"no replica of {path}")
            source_node = replicas[0]

        reader, writer = make_pipe()

        def source_body(sproc: Process, path=path, dst=node_name,
                        remote=not exec_has_file):
            yield from sproc.cpu(PROC_STARTUP * 0.25)
            fd = yield from sproc.open(path, "r")
            while True:
                data = yield from sproc.read(fd, CHUNK)
                if not data:
                    break
                if remote:
                    yield from sproc.net_send(dst, len(data))
                yield from sproc.write(1, data)
            return 0

        pid = yield from proc.spawn(source_body, name=f"src:{path}",
                                    fds={1: writer}, node=source_node)
        pids.append(pid)

        prev_reader = reader
        for i, stage in enumerate(stages):
            fn = lookup(stage.argv[0])
            argv = list(stage.argv[1:])
            if i < len(stages) - 1:
                nxt_reader, nxt_writer = make_pipe()
                out_handle = nxt_writer
            else:
                nxt_reader = None
                relay_reader, relay_writer = make_pipe()
                out_handle = relay_writer

            def stage_body(cproc: Process, fn=fn, argv=argv):
                yield from cproc.cpu(PROC_STARTUP)
                st = yield from fn(cproc, argv)
                return st if st is not None else 0

            pid = yield from proc.spawn(
                stage_body, name=f"{stage.argv[0]}:{path}",
                fds={0: prev_reader, 1: out_handle, 2: NullHandle()},
                node=node_name,
            )
            pids.append(pid)
            prev_reader = nxt_reader

        # relay: chain output -> (network) -> staging collector at merge node
        merge_node = self.head

        def relay_body(rproc: Process, dst=merge_node,
                       remote=node_name != merge_node):
            while True:
                data = yield from rproc.read(0, CHUNK)
                if not data:
                    break
                if remote:
                    yield from rproc.net_send(dst, len(data))
                yield from rproc.write(1, data)
            return 0

        pid = yield from proc.spawn(relay_body, name=f"relay:{path}",
                                    fds={0: relay_reader, 1: collector},
                                    node=node_name)
        pids.append(pid)
        return pids, collector

    # -- aggregation ----------------------------------------------------------------

    def _merge(self, proc: Process, staged: dict, paths: list[str],
               agg_kind: AggKind, agg_argv, out: Collector):
        from ..commands.base import cpu_coeff
        from ..commands.sorting import kway_merge, make_sort_key
        from ..compiler.runtime import sum_merge_body

        sources = [StringSource(staged[p].getvalue()) for p in paths]
        fds = {i + 3: src for i, src in enumerate(sources)}
        fds[1] = out
        in_fds = [fd for fd in fds if fd != 1]

        if agg_kind is AggKind.CONCAT:
            def body(mproc: Process):
                for fd in in_fds:
                    while True:
                        data = yield from mproc.read(fd, CHUNK)
                        if not data:
                            break
                        yield from mproc.write(1, data)
                return 0
        elif agg_kind is AggKind.SUM:
            body = sum_merge_body(in_fds)
        elif agg_kind is AggKind.SORT_MERGE:
            flags = [a for a in agg_argv if a.startswith("-") and a != "-m"]

            def body(mproc: Process, flags=flags):
                from ..commands.sorting import make_cmp_key

                numeric = any("n" in f for f in flags)
                reverse = any("r" in f for f in flags)
                unique = any("u" in f for f in flags)
                primary = make_sort_key(numeric, None, None)
                key = primary if unique else make_cmp_key(primary)
                st = yield from kway_merge(mproc, in_fds, key, reverse,
                                           unique, cpu_coeff("sort"),
                                           eq_key=primary)
                return st
        elif agg_kind is AggKind.RERUN:
            rerun_argv = list(agg_argv)
            fn = lookup(rerun_argv[0])
            if fn is None:
                raise DistributedError(f"unknown aggregator {rerun_argv[0]}")

            def body(mproc: Process, fn=fn, rerun_argv=rerun_argv):
                chunks = []
                for fd in in_fds:
                    data = yield from mproc.read_all(fd)
                    chunks.append(data)
                source = StringSource(b"".join(chunks))
                mproc.fds[0] = source.dup()
                st = yield from fn(mproc, rerun_argv[1:])
                return st if st is not None else 0
        else:
            raise DistributedError(f"unsupported aggregator {agg_kind}")
        pid = yield from proc.spawn(body, name="merge", fds=fds,
                                    node=self.head)
        status = yield from proc.wait(pid)
        return status
