"""POSH-style placement (S8): decide where each piece of a distributed
dataflow runs.

POSH's insight: "offload commands close to their input data, reducing
network overhead."  For a map-style region (a per-file chain of pure
commands followed by an aggregation), the placement maps each input
file to an execution node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .cluster import Cluster


@dataclass
class Placement:
    #: input path -> node the chain for that file runs on
    assignments: dict[str, str]
    #: node the aggregator runs on
    merge_node: str
    strategy: str

    def describe(self) -> str:
        rows = [f"  {path} -> {node}" for path, node in
                sorted(self.assignments.items())]
        return (f"placement[{self.strategy}] merge@{self.merge_node}\n"
                + "\n".join(rows))


class PlacementError(Exception):
    pass


def central(cluster: Cluster, paths: list[str], head: str) -> Placement:
    """The naive baseline: ship every input to the head node and run
    everything there (what `ssh head 'grep ... '` over NFS amounts to)."""
    return Placement({path: head for path in paths}, head, "central")


def data_aware(cluster: Cluster, paths: list[str], head: str,
               selectivity: float = 1.0) -> Placement:
    """POSH placement: each file's chain runs on a node holding a
    replica (ties broken by load-balance), the merge runs at the head.

    ``selectivity`` (output bytes / input bytes of the chain) is used to
    confirm offloading pays: when a chain *expands* its input, shipping
    the input can be cheaper than shipping the output — POSH's cost
    model handles exactly this case.
    """
    load: dict[str, int] = {name: 0 for name in cluster.alive_nodes()}
    assignments: dict[str, str] = {}
    for path in paths:
        replicas = cluster.locate(path)
        if not replicas:
            raise PlacementError(f"no live replica of {path}")
        if selectivity > 1.0 and head in replicas:
            # expanding chain: prefer head (ship input, not output)
            choice = head
        elif selectivity > 1.0:
            choice = min(replicas, key=lambda n: load[n])
        else:
            choice = min(replicas, key=lambda n: load[n])
        assignments[path] = choice
        load[choice] += 1
    return Placement(assignments, head, "data-aware")


def bytes_moved(cluster: Cluster, placement: Placement,
                sizes: dict[str, int], selectivity: float = 1.0) -> int:
    """Predicted network bytes for a placement: inputs shipped to
    non-replica nodes plus chain outputs shipped to the merge node."""
    total = 0
    for path, node in placement.assignments.items():
        if node not in cluster.locate(path):
            total += sizes[path]
        out = int(sizes[path] * selectivity)
        if node != placement.merge_node:
            total += out
    return total
