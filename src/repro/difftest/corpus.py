"""S17 §4: the checked-in divergence corpus.

Every divergence the harness ever finds is minimized and frozen as a
``.sh`` file under ``tests/corpus/divergences/``, then replayed forever
by ``tests/test_difftest_corpus.py``.  An entry is a plain shell script
with a structured comment header:

    # jash-difftest divergence
    # name: tail-n-plus-k
    # profile: coreutils
    # reason: tail -n +K returned the last K lines instead of
    #         emitting from line K
    # file f1.txt: "a\nb\nc\n"
    # expect-status: 0
    # expect-stdout: "b\nc\n"
    tail -n +2 f1.txt

File contents and expected stdout are Python string literals (decoded
via ``ast.literal_eval`` and encoded latin-1, so arbitrary bytes
round-trip).  The expectation is the **host** shell's behaviour at the
time the entry was minimized — replay asserts the virtual shell matches
it, so the corpus keeps protecting against regressions even on machines
with no host shell at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

HEADER = "# jash-difftest divergence"

CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "corpus" / "divergences"


@dataclass(frozen=True)
class CorpusEntry:
    name: str
    profile: str
    reason: str
    script: str
    files: dict[str, bytes] = field(hash=False)
    expect_status: int = 0
    expect_stdout: bytes = b""


def _encode_bytes(data: bytes) -> str:
    return repr(data.decode("latin-1"))


def _decode_bytes(literal: str) -> bytes:
    value = ast.literal_eval(literal)
    if not isinstance(value, str):
        raise ValueError(f"expected a string literal, got {literal!r}")
    return value.encode("latin-1")


def render_entry(entry: CorpusEntry) -> str:
    lines = [HEADER,
             f"# name: {entry.name}",
             f"# profile: {entry.profile}"]
    for rline in entry.reason.splitlines() or [""]:
        lines.append(f"# reason: {rline}")
    for fname in sorted(entry.files):
        lines.append(f"# file {fname}: {_encode_bytes(entry.files[fname])}")
    lines.append(f"# expect-status: {entry.expect_status}")
    lines.append(f"# expect-stdout: {_encode_bytes(entry.expect_stdout)}")
    lines.append(entry.script.rstrip("\n"))
    return "\n".join(lines) + "\n"


def parse_entry(text: str, *, name_hint: str = "?") -> CorpusEntry:
    lines = text.splitlines()
    if not lines or lines[0].strip() != HEADER:
        raise ValueError(f"{name_hint}: missing {HEADER!r} header")
    meta: dict[str, str] = {}
    reasons: list[str] = []
    files: dict[str, bytes] = {}
    body_start = len(lines)
    for i, line in enumerate(lines[1:], start=1):
        if not line.startswith("#"):
            body_start = i
            break
        content = line[1:].strip()
        key, _, value = content.partition(":")
        key = key.strip()
        value = value.strip()
        if key == "reason":
            reasons.append(value)
        elif key.startswith("file "):
            files[key[5:].strip()] = _decode_bytes(value)
        elif key in ("name", "profile", "expect-status", "expect-stdout"):
            meta[key] = value
        # unknown keys are ignored: forward compatibility
    script = "\n".join(lines[body_start:]).strip("\n")
    if not script:
        raise ValueError(f"{name_hint}: empty script body")
    return CorpusEntry(
        name=meta.get("name", name_hint),
        profile=meta.get("profile", "manual"),
        reason=" ".join(reasons),
        script=script,
        files=files,
        expect_status=int(meta.get("expect-status", "0")),
        expect_stdout=_decode_bytes(meta.get("expect-stdout", "''")),
    )


def load_corpus(directory: Path | None = None) -> list[CorpusEntry]:
    directory = directory or CORPUS_DIR
    entries = []
    for path in sorted(directory.glob("*.sh")):
        entries.append(parse_entry(path.read_text(), name_hint=path.stem))
    return entries


def write_entry(entry: CorpusEntry, directory: Path | None = None) -> Path:
    directory = directory or CORPUS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.sh"
    path.write_text(render_entry(entry))
    return path
