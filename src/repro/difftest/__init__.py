"""S17: grammar-based differential conformance testing vs the host shell.

Pipeline: :mod:`.grammar` generates seeded scripts → :mod:`.runner`
executes each in the virtual shell and host ``/bin/sh`` and compares
under a minimal normalization policy → :mod:`.reduce` delta-debugs any
divergence into a small reproducer → :mod:`.corpus` freezes it as a
replayed-forever regression test → :mod:`.baseline` lets CI fail only
on *new* divergences.  :mod:`.replay` complements the synthetic grammar
with checked-in realistic session traces run through the same
comparison.  See DESIGN.md §10.
"""

from .baseline import fingerprint, load_baseline, save_baseline, split_new
from .corpus import CorpusEntry, load_corpus, parse_entry, render_entry, write_entry
from .grammar import Case, generate_case, generate_cases, profiles
from .reduce import minimize
from .replay import (SessionStep, SessionTrace, load_sessions,
                     minimize_session, parse_session, record_expectations,
                     render_session, run_replay, session_case,
                     verify_recorded, write_session)
from .runner import (CampaignResult, Divergence, Outcome, compare,
                     run_campaign, run_case, run_host, run_virtual,
                     statuses_equivalent)

__all__ = [
    "Case", "CampaignResult", "CorpusEntry", "Divergence", "Outcome",
    "SessionStep", "SessionTrace",
    "compare", "fingerprint", "generate_case", "generate_cases",
    "load_baseline", "load_corpus", "load_sessions", "minimize",
    "minimize_session", "parse_entry", "parse_session", "profiles",
    "record_expectations", "render_entry", "render_session", "run_campaign",
    "run_case", "run_host", "run_replay", "run_virtual", "save_baseline",
    "session_case", "split_new", "statuses_equivalent", "verify_recorded",
    "write_entry", "write_session",
]
