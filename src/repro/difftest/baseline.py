"""S17 §5: the CI divergence baseline.

CI runs the difftest smoke campaign with fixed seeds and fails only on
divergences *not* present in ``tools/difftest_baseline.json``.  Each
known divergence is identified by a content fingerprint (sha256 of the
script plus its fixture files), so the baseline survives renames and
reruns but invalidates automatically when the generator changes what it
emits for those seeds.

An empty baseline — the goal state — means any divergence at all fails
the build.  ``tools/regen_difftest_baseline.py`` regenerates the file
after a triage decision to accept a divergence as known.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .grammar import Case
from .runner import Divergence

BASELINE_PATH = Path(__file__).resolve().parents[3] / "tools" / "difftest_baseline.json"


def fingerprint(case: Case) -> str:
    h = hashlib.sha256()
    h.update(case.script.encode())
    for name in sorted(case.files):
        h.update(b"\x00" + name.encode() + b"\x00" + case.files[name])
    return h.hexdigest()[:16]


def load_baseline(path: Path | None = None) -> dict[str, dict]:
    path = path or BASELINE_PATH
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    return data.get("known_divergences", {})


def save_baseline(divergences: list[Divergence],
                  path: Path | None = None) -> Path:
    path = path or BASELINE_PATH
    known = {
        fingerprint(d.case): {
            "ident": d.case.ident,
            "reason": d.reason,
            "script": d.case.script,
        }
        for d in divergences
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(
        {"format": "jash-difftest-baseline-v1",
         "known_divergences": dict(sorted(known.items()))},
        indent=2) + "\n")
    return path


def split_new(divergences: list[Divergence],
              baseline: dict[str, dict]) -> tuple[list[Divergence],
                                                  list[Divergence]]:
    """Partition into (new, known) against the baseline."""
    new, known = [], []
    for d in divergences:
        (known if fingerprint(d.case) in baseline else new).append(d)
    return new, known
