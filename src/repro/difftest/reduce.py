"""S17 §3: automatic divergence minimization (delta debugging).

Given a diverging case, shrink it while preserving *the fact that it
diverges* (any reason — the minimal script may diverge for a simpler
reason than the original, which is fine: the point is a small
reproducer).  Three passes, iterated to fixpoint under a bounded test
budget:

1. **line ddmin** — classic Zeller ddmin over script lines;
2. **pipeline-stage dropping** — for each line, try removing individual
   ``|``-separated stages (ddmin can't see inside a line);
3. **fixture shrinking** — drop unreferenced files, then halve each
   remaining file's line count while the divergence persists.

Every candidate costs one virtual + one host execution, so the budget
(default 400 tests) keeps worst-case reduction time bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .grammar import Case
from .runner import compare, run_host, run_virtual


@dataclass
class _Budget:
    remaining: int

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _diverges(script: str, files: dict[str, bytes], budget: _Budget,
              sh: str | None) -> bool:
    if not budget.spend():
        return False
    if not script.strip():
        return False
    return compare(run_virtual(script, files),
                   run_host(script, files, sh=sh)) is not None


def _ddmin_lines(lines: list[str], files: dict[str, bytes],
                 budget: _Budget, sh: str | None) -> list[str]:
    n = 2
    while len(lines) >= 2:
        chunk = max(1, len(lines) // n)
        shrunk = False
        for start in range(0, len(lines), chunk):
            candidate = lines[:start] + lines[start + chunk:]
            if candidate and _diverges("\n".join(candidate), files,
                                       budget, sh):
                lines = candidate
                n = max(n - 1, 2)
                shrunk = True
                break
        if not shrunk:
            if n >= len(lines):
                break
            n = min(len(lines), n * 2)
        if budget.remaining <= 0:
            break
    return lines


def _drop_stages(lines: list[str], files: dict[str, bytes],
                 budget: _Budget, sh: str | None) -> list[str]:
    changed = True
    while changed and budget.remaining > 0:
        changed = False
        for i, line in enumerate(lines):
            stages = [s.strip() for s in line.split(" | ")]
            if len(stages) < 2:
                continue
            for j in range(len(stages)):
                candidate_line = " | ".join(stages[:j] + stages[j + 1:])
                candidate = lines[:i] + [candidate_line] + lines[i + 1:]
                if _diverges("\n".join(candidate), files, budget, sh):
                    lines = candidate
                    changed = True
                    break
            if changed:
                break
    return lines


def _shrink_files(script: str, files: dict[str, bytes],
                  budget: _Budget, sh: str | None) -> dict[str, bytes]:
    # drop files the script no longer mentions
    files = {name: data for name, data in files.items() if name in script}
    for name in list(files):
        data = files[name]
        while budget.remaining > 0:
            lines = data.splitlines(keepends=True)
            if len(lines) <= 1:
                break
            half = b"".join(lines[: len(lines) // 2])
            candidate = dict(files, **{name: half})
            if _diverges(script, candidate, budget, sh):
                data = half
                files = candidate
            else:
                tail = b"".join(lines[len(lines) // 2:])
                candidate = dict(files, **{name: tail})
                if _diverges(script, candidate, budget, sh):
                    data = tail
                    files = candidate
                else:
                    break
    return files


def minimize(case: Case, sh: str | None = None,
             max_tests: int = 400) -> Case:
    """Shrink ``case`` to a smaller script/fixture set that still
    diverges.  Returns the (possibly unchanged) reduced case."""
    budget = _Budget(max_tests)
    if not _diverges(case.script, case.files, budget, sh):
        return case  # flaky or already fixed; don't touch it
    lines = [ln for ln in case.script.split("\n") if ln.strip()]
    lines = _ddmin_lines(lines, case.files, budget, sh)
    lines = _drop_stages(lines, case.files, budget, sh)
    script = "\n".join(lines)
    files = _shrink_files(script, dict(case.files), budget, sh)
    return replace(case, script=script, files=files)
