"""S17 §5: session-replay conformance (PR 9).

The grammar generates *synthetic* scripts; this module replays
*realistic* session traces — cowrie-honeypot-style interactive command
sequences (probe → redirect → background job → ``wait`` → cleanup),
command-substitution-heavy one-liners, awk-heavy reporting — through the
same virtual-vs-host comparison as the grammar campaigns.

A trace is a checked-in file under ``tests/corpus/sessions/`` holding a
structured comment header (same string-literal encoding as the
divergence corpus) followed by the session body split into *steps*:

    # jash-replay session
    # name: probe-and-cleanup
    # description: recon commands then a background fetch
    # file logs.txt: "a\\nb\\n"
    # expect-status: 0
    # expect-stdout: "..."
    --- step: probe
    echo $0
    --- step: fetch
    sort logs.txt > s.txt &
    wait

The step markers matter twice: they document the interactive structure,
and they are the reduction granularity — ddmin drops whole steps, never
individual lines, because slicing through a here-doc body or a loop
produces degenerate parse-error "divergences" instead of smaller real
ones.  ``expect-status``/``expect-stdout`` record the host's behaviour
when the trace was checked in, so replay also works host-less (CI boxes
without a POSIX shell still verify the virtual side against the
recording).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from .corpus import _decode_bytes, _encode_bytes
from .grammar import Case
from .reduce import _Budget, _diverges, _shrink_files
from .runner import CampaignResult, Divergence, run_case, run_virtual

HEADER = "# jash-replay session"
STEP_MARKER = "--- step:"

SESSIONS_DIR = Path(__file__).resolve().parents[3] / "tests" / "corpus" / "sessions"


@dataclass(frozen=True)
class SessionStep:
    """One interactive exchange: a label plus the command text (which may
    span several lines, e.g. a here-doc or a loop)."""

    label: str
    text: str


@dataclass(frozen=True)
class SessionTrace:
    name: str
    description: str
    steps: tuple[SessionStep, ...]
    files: dict[str, bytes] = field(hash=False)
    expect_status: int | None = None
    expect_stdout: bytes | None = None

    @property
    def script(self) -> str:
        return "\n".join(step.text for step in self.steps)


def parse_session(text: str, *, name_hint: str = "?") -> SessionTrace:
    lines = text.splitlines()
    if not lines or lines[0].strip() != HEADER:
        raise ValueError(f"{name_hint}: missing {HEADER!r} header")
    meta: dict[str, str] = {}
    descriptions: list[str] = []
    files: dict[str, bytes] = {}
    i = 1
    while i < len(lines) and lines[i].startswith("#"):
        content = lines[i][1:].strip()
        key, _, value = content.partition(":")
        key = key.strip()
        value = value.strip()
        if key == "description":
            descriptions.append(value)
        elif key.startswith("file "):
            files[key[5:].strip()] = _decode_bytes(value)
        elif key in ("name", "expect-status", "expect-stdout"):
            meta[key] = value
        # unknown keys are ignored: forward compatibility
        i += 1
    steps: list[SessionStep] = []
    label: str | None = None
    body: list[str] = []
    for line in lines[i:]:
        if line.startswith(STEP_MARKER):
            if label is not None:
                steps.append(SessionStep(label, "\n".join(body)))
            label = line[len(STEP_MARKER):].strip()
            body = []
            continue
        if label is None:
            if line.strip():
                raise ValueError(
                    f"{name_hint}: command text before the first "
                    f"{STEP_MARKER!r} marker")
            continue
        body.append(line)
    if label is not None:
        steps.append(SessionStep(label, "\n".join(body)))
    if not steps:
        raise ValueError(f"{name_hint}: session has no steps")
    steps = [replace(s, text=s.text.strip("\n")) for s in steps]
    expect_status = meta.get("expect-status")
    expect_stdout = meta.get("expect-stdout")
    return SessionTrace(
        name=meta.get("name", name_hint),
        description=" ".join(descriptions),
        steps=tuple(steps),
        files=files,
        expect_status=int(expect_status) if expect_status is not None else None,
        expect_stdout=(_decode_bytes(expect_stdout)
                       if expect_stdout is not None else None),
    )


def render_session(trace: SessionTrace) -> str:
    lines = [HEADER, f"# name: {trace.name}"]
    for dline in trace.description.splitlines() or [""]:
        lines.append(f"# description: {dline}")
    for fname in sorted(trace.files):
        lines.append(f"# file {fname}: {_encode_bytes(trace.files[fname])}")
    if trace.expect_status is not None:
        lines.append(f"# expect-status: {trace.expect_status}")
    if trace.expect_stdout is not None:
        lines.append(f"# expect-stdout: {_encode_bytes(trace.expect_stdout)}")
    for step in trace.steps:
        lines.append(f"{STEP_MARKER} {step.label}")
        lines.append(step.text)
    return "\n".join(lines) + "\n"


def load_sessions(directory: Path | None = None) -> list[SessionTrace]:
    directory = Path(directory) if directory is not None else SESSIONS_DIR
    traces = []
    for path in sorted(directory.glob("*.session")):
        traces.append(parse_session(path.read_text(), name_hint=path.stem))
    return traces


def write_session(trace: SessionTrace, directory: Path | None = None) -> Path:
    directory = Path(directory) if directory is not None else SESSIONS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{trace.name}.session"
    path.write_text(render_session(trace))
    return path


def session_case(trace: SessionTrace, index: int = 0) -> Case:
    """Adapt a trace to the Case shape the runner/reducer/baseline
    pipeline speaks."""
    return Case(ident=f"session-{trace.name}", profile="session", seed=0,
                index=index, script=trace.script, files=dict(trace.files))


def record_expectations(trace: SessionTrace,
                        sh: str | None = None) -> SessionTrace:
    """Stamp the host shell's current behaviour into the trace (used when
    authoring or refreshing a session file)."""
    from .runner import run_host

    outcome = run_host(trace.script, trace.files, sh=sh)
    if outcome.error:
        raise RuntimeError(f"{trace.name}: host run failed: {outcome.error}")
    return replace(trace, expect_status=outcome.status,
                   expect_stdout=outcome.stdout)


def verify_recorded(trace: SessionTrace) -> str | None:
    """Host-less replay: run the virtual shell and compare against the
    recorded expectations.  Returns a mismatch reason or None."""
    if trace.expect_stdout is None or trace.expect_status is None:
        return f"{trace.name}: no recorded expectations"
    outcome = run_virtual(trace.script, trace.files)
    if outcome.error:
        return f"virtual error: {outcome.error}"
    if outcome.stdout != trace.expect_stdout:
        return "stdout differs from recording"
    if outcome.status != trace.expect_status and not (
            outcome.status > 0 and trace.expect_status > 0):
        return (f"status differs from recording: virtual={outcome.status} "
                f"recorded={trace.expect_status}")
    return None


def run_replay(traces: list[SessionTrace],
               sh: str | None = None, progress=None) -> CampaignResult:
    """Replay each session through the standard virtual-vs-host
    comparison."""
    result = CampaignResult()
    for index, trace in enumerate(traces):
        case = session_case(trace, index)
        result.total += 1
        div = run_case(case, sh=sh)
        if div is None:
            result.agreed += 1
        else:
            result.divergences.append(div)
        if progress is not None:
            progress(case, div)
    return result


def minimize_session(trace: SessionTrace, sh: str | None = None,
                     max_tests: int = 400) -> SessionTrace:
    """Step-granular ddmin: drop whole session steps while the divergence
    persists, then shrink fixtures.  Lines inside a step are never
    touched — a step is the smallest unit that keeps here-docs, loops and
    job-control sequences syntactically intact."""
    budget = _Budget(max_tests)
    files = dict(trace.files)
    if not _diverges(trace.script, files, budget, sh):
        return trace  # flaky or already fixed; don't touch it

    steps = list(trace.steps)
    n = 2
    while len(steps) >= 2:
        chunk = max(1, len(steps) // n)
        shrunk = False
        for start in range(0, len(steps), chunk):
            candidate = steps[:start] + steps[start + chunk:]
            script = "\n".join(s.text for s in candidate)
            if candidate and _diverges(script, files, budget, sh):
                steps = candidate
                n = max(n - 1, 2)
                shrunk = True
                break
        if not shrunk:
            if n >= len(steps):
                break
            n = min(len(steps), n * 2)
        if budget.remaining <= 0:
            break

    script = "\n".join(s.text for s in steps)
    files = _shrink_files(script, files, budget, sh)
    return replace(trace, steps=tuple(steps), files=files)
