"""S17 §2: run a case in both shells and compare under normalization.

Backends
--------
* **virtual** — ``repro.shell.Shell`` on a free-IO machine spec, with the
  case's fixture files pre-seeded into the virtual filesystem at ``/``
  (the shell's cwd).
* **host** — ``/bin/sh -c script`` in a fresh temporary directory holding
  the same fixtures, with a pinned environment
  (``PATH=/usr/bin:/bin``, ``HOME=<tmpdir>``, ``LC_ALL=C``) so host
  locale/profile noise can't masquerade as a divergence.

Normalization policy (deliberately minimal — every rule hides a class of
real differences, so each one must pay rent):

1. **stdout is compared byte-exact.**  No whitespace trimming, no line
   reordering.
2. **exit status**: equal is equal; otherwise two *nonzero* statuses are
   equivalent (POSIX fixes "zero vs nonzero", not the specific code —
   e.g. grep says "exit >0" for errors, and shells differ on 1 vs 2).
3. **stderr is ignored.**  Diagnostic wording is unspecified by POSIX
   and differs between every implementation pair.

Nothing else is normalized.
"""

from __future__ import annotations

import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..shell import Shell
from ..vos.devices import DiskSpec
from ..vos.machines import MachineSpec
from .grammar import Case

HOST_SH = shutil.which("sh")

HOST_TIMEOUT = 20.0


def fast_machine() -> MachineSpec:
    """Free-IO machine: conformance must not wait on the simulated clock."""
    return MachineSpec(
        name="difftest",
        cores=8,
        cpu_speed=1e6,
        disk=DiskSpec(name="ram", throughput_bps=1e12, base_iops=1e9,
                      burst_iops=1e9),
    )


@dataclass(frozen=True)
class Outcome:
    """Result of one backend run."""

    status: int
    stdout: bytes
    error: str | None = None  # interpreter crash / host timeout


@dataclass(frozen=True)
class Divergence:
    case: Case
    virtual: Outcome
    host: Outcome
    reason: str


@dataclass
class CampaignResult:
    total: int = 0
    agreed: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    skipped: int = 0  # host shell unavailable

    @property
    def ok(self) -> bool:
        return not self.divergences


def run_virtual(script: str, files: dict[str, bytes]) -> Outcome:
    shell = Shell(fast_machine())
    for name, data in files.items():
        shell.fs.write_bytes("/" + name, data)
    try:
        result = shell.run(script)
    except Exception as exc:  # interpreter crash is itself a divergence
        return Outcome(status=-1, stdout=b"",
                       error=f"{type(exc).__name__}: {exc}")
    return Outcome(status=result.status, stdout=result.stdout)


def run_host(script: str, files: dict[str, bytes],
             sh: str | None = None) -> Outcome:
    sh = sh or HOST_SH
    if sh is None:
        raise RuntimeError("no host /bin/sh available")
    with tempfile.TemporaryDirectory(prefix="difftest-") as tmp:
        root = Path(tmp)
        for name, data in files.items():
            target = root / name
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(data)
        try:
            proc = subprocess.run(
                [sh, "-c", script, "sh"],
                cwd=root, capture_output=True, timeout=HOST_TIMEOUT,
                env={"PATH": "/usr/bin:/bin", "HOME": str(root),
                     "LC_ALL": "C"},
            )
        except subprocess.TimeoutExpired:
            return Outcome(status=-1, stdout=b"", error="host timeout")
    return Outcome(status=proc.returncode, stdout=proc.stdout)


def statuses_equivalent(a: int, b: int) -> bool:
    return a == b or (a > 0 and b > 0)


def compare(virtual: Outcome, host: Outcome) -> str | None:
    """Return a divergence reason, or None when the outcomes agree."""
    if virtual.error:
        return f"virtual error: {virtual.error}"
    if host.error:
        return f"host error: {host.error}"
    if virtual.stdout != host.stdout:
        return "stdout differs"
    if not statuses_equivalent(virtual.status, host.status):
        return f"status differs: virtual={virtual.status} host={host.status}"
    return None


def run_case(case: Case, sh: str | None = None) -> Divergence | None:
    virtual = run_virtual(case.script, case.files)
    host = run_host(case.script, case.files, sh=sh)
    reason = compare(virtual, host)
    if reason is None:
        return None
    return Divergence(case=case, virtual=virtual, host=host, reason=reason)


def run_campaign(cases: list[Case], sh: str | None = None,
                 progress=None) -> CampaignResult:
    result = CampaignResult()
    if (sh or HOST_SH) is None:
        result.skipped = len(cases)
        return result
    for case in cases:
        result.total += 1
        div = run_case(case, sh=sh)
        if div is None:
            result.agreed += 1
        else:
            result.divergences.append(div)
        if progress is not None:
            progress(case, div)
    return result
