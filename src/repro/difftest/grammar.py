"""S17 §1: seeded, grammar-based POSIX script generation.

Each :class:`Case` is a small shell script plus the fixture files it
reads, drawn from a grammar covering pipelines, word expansion,
arithmetic, control flow, redirections and the coreutils flag sets this
repo implements.  Generation is fully deterministic: the RNG is seeded
with ``"{seed}:{profile}:{index}"`` (string seeding is stable across
platforms and hash randomization), so ``--seed 0 --count 200`` names the
same 200 scripts forever — which is what lets CI diff campaign results
against a checked-in baseline.

The grammar deliberately stays inside the *implemented, verified*
dialect: constructs the virtual shell does not support (or where GNU
behaviour is locale/width dependent, e.g. ``nl``, multi-file ``wc``)
are excluded, so every divergence the harness reports is a real
semantics or coreutils bug, not a known feature gap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Case:
    """One generated differential test case."""

    ident: str
    profile: str
    seed: int
    index: int
    script: str
    files: dict[str, bytes] = field(hash=False)


#: statement-kind weights per grammar profile.  NOTE: the pre-existing
#: profiles (default/pipeline/coreutils/expansion/arith/control) must
#: stay byte-stable — CI campaigns replay them against a fixed baseline —
#: so new coverage lands as *new* profiles, never as edits to old ones.
PROFILE_WEIGHTS: dict[str, dict[str, int]] = {
    "default": {"pipeline": 5, "coreutils": 4, "expansion": 3,
                "arith": 2, "control": 3, "redirect": 2},
    "pipeline": {"pipeline": 8, "coreutils": 2, "redirect": 1},
    "coreutils": {"coreutils": 8, "pipeline": 2, "redirect": 1},
    "expansion": {"expansion": 7, "arith": 2, "control": 1},
    "arith": {"arith": 8, "expansion": 1},
    "control": {"control": 6, "expansion": 2, "arith": 1},
    # PR 9 growth: job control, here-documents, and the session-style mix
    "jobs": {"jobs": 6, "func": 2, "pipeline": 2},
    "heredoc": {"heredoc": 6, "expansion": 2, "pipeline": 2},
    "replay": {"readloop": 3, "heredoc": 2, "jobs": 2, "func": 2,
               "caseesac": 2, "pipeline": 2},
}


def profiles() -> list[str]:
    return sorted(PROFILE_WEIGHTS)


_WORDS = ["alpha", "beta", "gamma", "delta", "omega", "red", "blue",
          "green", "fox", "dog", "jazz", "quartz", "vex", "nymph",
          "Alpha", "BETA", "Fox", "kiwi", "lemon", "mango"]

_LETTERS = "abcdegoxz"


class _Gen:
    def __init__(self, rng: random.Random, profile: str):
        self.rng = rng
        self.profile = profile
        self.files: dict[str, bytes] = {}
        self._counter = 0

    # -- fixtures ---------------------------------------------------------

    def _fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}{self._counter}.txt"

    def words_file(self) -> str:
        """Lines of 1-3 words; duplicates and mixed case on purpose."""
        name = self._fresh("f")
        rng = self.rng
        lines = []
        for _ in range(rng.randint(4, 9)):
            n = rng.randint(1, 3)
            lines.append(" ".join(rng.choice(_WORDS) for _ in range(n)))
        if rng.random() < 0.4:  # duplicates make uniq/sort -u interesting
            lines.append(rng.choice(lines))
        self.files[name] = ("\n".join(lines) + "\n").encode()
        return name

    def nums_file(self) -> str:
        """Lines of "number [word]" — numeric sorts and awk-ish sums."""
        name = self._fresh("n")
        rng = self.rng
        lines = []
        for _ in range(rng.randint(4, 8)):
            num = rng.randint(0, 999)
            if rng.random() < 0.5:
                lines.append(f"{num} {rng.choice(_WORDS)}")
            else:
                lines.append(str(num))
        self.files[name] = ("\n".join(lines) + "\n").encode()
        return name

    def colon_file(self) -> str:
        """key:value:num lines for -t: / cut -d: workloads."""
        name = self._fresh("c")
        rng = self.rng
        lines = [f"{rng.choice(_WORDS)}:{rng.choice(_WORDS)}:{rng.randint(0, 99)}"
                 for _ in range(rng.randint(3, 6))]
        self.files[name] = ("\n".join(lines) + "\n").encode()
        return name

    def sorted_file(self) -> str:
        """Sorted unique words (valid comm/join/uniq -d input)."""
        name = self._fresh("s")
        rng = self.rng
        words = sorted(set(rng.choice(_WORDS) for _ in range(rng.randint(3, 7))))
        self.files[name] = ("\n".join(words) + "\n").encode()
        return name

    def any_file(self) -> str:
        kind = self.rng.choice([self.words_file, self.nums_file,
                                self.colon_file])
        return kind()

    # -- vocabulary -------------------------------------------------------

    def word(self) -> str:
        return self.rng.choice(_WORDS)

    def letter(self) -> str:
        return self.rng.choice(_LETTERS)

    def bre_pattern(self) -> str:
        """BRE patterns, including ones where + ? | { are literal."""
        rng = self.rng
        return rng.choice([
            self.letter(),
            self.word(),
            f"^{self.letter()}",
            f"{self.letter()}$",
            "[aeiou]",
            "[0-9]",
            "[[:digit:]]",
            f"{self.letter()}.{self.letter()}",
            f"{self.letter()}*{self.letter()}",
            # literal metacharacters — the bug class this harness caught
            f"{self.letter()}+{self.letter()}",
            f"{self.letter()}?",
            f"{self.word()}|{self.word()}",
            f"{self.letter()}{{2}}",
        ])

    def ere_pattern(self) -> str:
        rng = self.rng
        return rng.choice([
            f"{self.word()}|{self.word()}",
            "[0-9]+",
            f"{self.letter()}+",
            f"^{self.letter()}.*{self.letter()}$",
            f"({self.letter()}|{self.letter()})",
            f"{self.letter()}{{1,3}}",
        ])

    # -- pipeline pieces --------------------------------------------------

    def source(self) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.45:
            return f"cat {self.any_file()}"
        if roll < 0.55:
            f = self.any_file()
            k = rng.randint(1, 5)
            return rng.choice([f"head -n {k} {f}", f"tail -n {k} {f}",
                               f"tail -n +{k} {f}", f"tail -c +{k} {f}"])
        if roll < 0.70:
            return rng.choice([f"seq {rng.randint(3, 12)}",
                               f"seq {rng.randint(2, 5)} {rng.randint(6, 15)}"])
        if roll < 0.85:
            words = " ".join(self.word() for _ in range(rng.randint(2, 4)))
            return f"printf '%s\\n' {words}"
        fmt, args = rng.choice([
            ("%05d", str(rng.randint(0, 9999))),
            ("%-8s|", self.word()),
            ("%.3s", self.word()),
            ("%6.3d", str(rng.randint(0, 99))),
            ("%x %o", f"{rng.randint(0, 255)} {rng.randint(0, 63)}"),
            ("%+d", str(rng.randint(0, 99))),
            ("%u %c", f"{rng.randint(0, 99)} {self.word()}"),
        ])
        return f"printf '{fmt}\\n' {args}"

    def filter(self) -> str:
        rng = self.rng
        choices = [
            lambda: f"grep '{self.bre_pattern()}'",
            lambda: f"grep -v '{self.bre_pattern()}'",
            lambda: f"grep -c '{self.letter()}'",
            lambda: f"grep -i '{self.word()}'",
            lambda: f"grep -n '{self.letter()}'",
            lambda: f"grep -E '{self.ere_pattern()}'",
            lambda: "tr a-z A-Z",
            lambda: "tr A-Z a-z",
            lambda: f"tr -d '{rng.choice(['aeiou', '0-9', 'a-m'])}'",
            lambda: "tr -s ' '",
            lambda: "tr -cs 'A-Za-z' '\\n'",
            lambda: f"cut -c {rng.randint(1, 3)}-{rng.randint(4, 9)}",
            lambda: f"cut -d : -f {rng.randint(1, 3)}",
            lambda: f"sed 's/{self.letter()}/{self.letter().upper()}/'",
            lambda: f"sed 's/{self.letter()}/{self.letter()}/g'",
            lambda: f"sed -n '/{self.letter()}/p'",
            lambda: f"sed '/{self.letter()}/d'",
            lambda: f"sort{rng.choice(['', ' -r', ' -n', ' -u', ' -f', ' -rn', ' -nu', ' -fu'])}",
            lambda: f"sort -k{rng.randint(1, 3)}",
            lambda: f"sort -k{rng.randint(1, 2)},{rng.randint(2, 3)}",
            lambda: "sort | uniq",
            lambda: "sort | uniq -c",
            lambda: f"head -n {rng.randint(1, 4)}",
            lambda: f"tail -n {rng.randint(1, 4)}",
            lambda: f"tail -n +{rng.randint(1, 4)}",
            lambda: "rev",
            lambda: "tac",
            lambda: f"paste -s -d'{rng.choice([',', ':', '-', ';'])}'",
        ]
        return rng.choice(choices)()

    def sink(self) -> str:
        return self.rng.choice(["wc -l", "wc -c", "wc -w", "sort -u",
                                "uniq", "tail -n 2", "head -n 3"])

    def pipeline(self) -> str:
        rng = self.rng
        stages = [self.source()]
        for _ in range(rng.randint(0, 3)):
            stages.append(self.filter())
        if rng.random() < 0.4:
            stages.append(self.sink())
        return " | ".join(stages)

    # -- statement kinds --------------------------------------------------

    def stmt_pipeline(self) -> list[str]:
        return [self.pipeline()]

    def stmt_coreutils(self) -> list[str]:
        rng = self.rng
        roll = rng.random()
        if roll < 0.28:
            f = rng.choice([self.words_file, self.nums_file])()
            flags = rng.choice(["", " -r", " -n", " -u", " -f", " -rn",
                                " -fu", " -k2", " -k2,2", " -n -k2",
                                " -r -k2"])
            return [f"sort{flags} {f}"]
        if roll < 0.40:
            c = self.colon_file()
            return [rng.choice([f"sort -t: -k2 {c}", f"sort -t : -k3 {c}",
                                f"cut -d : -f 2 {c}",
                                f"cut -d : -f 1,3 {c}"])]
        if roll < 0.55:
            f = self.any_file()
            flag = rng.choice(["", " -v", " -c", " -i", " -x", " -n"])
            return [f"grep{flag} '{self.bre_pattern()}' {f}"]
        if roll < 0.65:
            a, b = self.sorted_file(), self.sorted_file()
            return [f"comm {rng.choice(['-12', '-13', '-23', ''])} {a} {b}"]
        if roll < 0.78:
            a, b = self.words_file(), self.nums_file()
            d = rng.choice([",", ":", ",;"])
            return [rng.choice([f"paste {a} {b}", f"paste -d '{d}' {a} {b}",
                                f"paste -s {a} {b}",
                                f"paste -s -d '{d}' {a}"])]
        if roll < 0.88:
            f = self.any_file()
            k = rng.randint(1, 6)
            return [rng.choice([f"tail -n +{k} {f}", f"tail -c +{k} {f}",
                                f"head -n {k} {f}", f"tail -n {k} {f}"])]
        f = self.words_file()
        return [rng.choice([f"wc -l < {f}", f"wc -c < {f}", f"wc -w < {f}",
                            f"uniq -c {f}", f"rev {f}", f"tac {f}"])]

    def stmt_redirect(self) -> list[str]:
        rng = self.rng
        out = self._fresh("out")
        lines = [f"{self.pipeline()} > {out}"]
        if rng.random() < 0.5:
            lines.append(f"{self.source()} >> {out}")
        lines.append(rng.choice([f"cat {out}", f"wc -l < {out}",
                                 f"sort {out}"]))
        return lines

    def stmt_expansion(self) -> list[str]:
        rng = self.rng
        w, w2 = self.word(), self.word()
        v = rng.choice(["x", "y", "v"])
        roll = rng.randint(0, 9)
        if roll == 0:
            return [f"{v}={w}", f'echo ${v} ${{{v}}} "${v}"']
        if roll == 1:
            return [f"echo ${{unset_{v}:-{w}}} ${{unset_{v}-{w2}}}"]
        if roll == 2:
            return [f"{v}={w}", f"echo ${{{v}:+alt}} ${{#{v}}} ${{no_{v}:+alt}}"]
        if roll == 3:
            return [f"{v}={w}.tar.gz",
                    f"echo ${{{v}%.gz}} ${{{v}%%.*}} ${{{v}#*.}} ${{{v}##*.}}"]
        if roll == 4:
            ws = " ".join(self.word() for _ in range(3))
            return [f"set -- {ws}", 'echo $# $1 $3 "$*"']
        if roll == 5:
            return [f"{v}='{w}  {w2}'", f"echo ${v}", f'echo "${v}"']
        if roll == 6:
            return [f"{v}=$({self.pipeline()})", f'echo "[${v}]"']
        if roll == 7:
            return [f"echo `echo {w}`"]
        if roll == 8:
            return [f"IFS=:; {v}={w}:{w2}:{self.word()}",
                    f"set -- ${v}", "echo $# $2"]
        return [f"{v}={w}", f"echo ${{{v}:=kept}} ${{newvar_{v}:=set}}",
                f"echo ${v} $newvar_{v}"]

    def stmt_arith(self) -> list[str]:
        rng = self.rng
        a, b = rng.randint(0, 99), rng.randint(1, 9)
        c = rng.randint(0, 9)
        roll = rng.randint(0, 5)
        if roll == 0:
            op = rng.choice(["+", "-", "*", "/", "%"])
            return [f"echo $(({a}{op}{b}))"]
        if roll == 1:
            return [f"echo $(( ({a}+{b})*{c} )) $(({a}*{b}+{c}))"]
        if roll == 2:
            return [f"echo $(({a}<{b})) $(({a}>={b})) $(({a}=={a}))"]
        if roll == 3:
            return [f"x={a}", f"echo $((x*2)) $(($x+{b})) $((x%{b}))"]
        if roll == 4:
            return [f"echo $((1&&{c})) $((0||{c})) $((!{c}))"]
        return [f"echo $((0x{a:x})) $((0{b:o}))"]

    def stmt_control(self) -> list[str]:
        rng = self.rng
        roll = rng.randint(0, 7)
        if roll == 0:
            a, b = rng.randint(0, 5), rng.randint(0, 5)
            return [f"if [ {a} -lt {b} ]; then echo L; else echo GE; fi"]
        if roll == 1:
            items = " ".join(self.word() for _ in range(rng.randint(1, 3)))
            return [f"for w in {items}; do echo p:$w; done"]
        if roll == 2:
            self.words_file()  # ensure at least one *.txt exists
            return ["for f in *.txt; do echo f:$f; done"]
        if roll == 3:
            w = self.word()
            pat = rng.choice([f"{w[0]}*", "[a-m]*", w, "*o*"])
            return [f"case {w} in {pat}) echo hit;; *) echo miss;; esac"]
        if roll == 4:
            k = rng.randint(1, 4)
            return [f"i=0; while [ $i -lt {k} ]; do echo i$i; i=$((i+1)); done"]
        if roll == 5:
            f = self.words_file()
            return [f"while read x; do echo [$x]; done < {f}"]
        if roll == 6:
            w = self.word()
            return [f"f() {{ echo fn:$1; }}; f {w}"]
        cond = rng.choice(["true", "false"])
        return [f"{cond} && echo AND || echo OR"]

    def stmt_heredoc(self) -> list[str]:
        """Here-documents: <<, <<- (tab stripping), quoted and unquoted
        delimiters, expansion inside bodies, and heredocs feeding
        pipelines or read loops.  $HOME-style env-dependent expansions
        are deliberately absent (the host runs in a scratch HOME)."""
        rng = self.rng
        w, w2 = self.word(), self.word()
        roll = rng.randint(0, 5)
        if roll == 0:
            # unquoted delimiter: parameter + arithmetic expansion active
            a, b = rng.randint(1, 9), rng.randint(1, 9)
            return [f"v={w}",
                    "cat <<EOF",
                    f"hello ${{v}} and {w2}",
                    f"sum=$(({a}+{b}))",
                    "EOF"]
        if roll == 1:
            # quoted delimiter: body is literal, $v must NOT expand
            return [f"v={w}",
                    "cat <<'EOF'",
                    f"raw $v `echo x` {w2}",
                    "EOF"]
        if roll == 2:
            # <<- strips leading tabs (including the delimiter line)
            return [f"v={w}",
                    "cat <<-EOF",
                    f"\tindent $v",
                    f"\t\tdeeper {w2}",
                    "\tEOF"]
        if roll == 3:
            # heredoc feeding a pipeline
            filt = rng.choice(["tr a-z A-Z", "sort", "wc -l", "rev",
                               f"grep '{self.letter()}'"])
            return [f"cat <<EOF | {filt}",
                    w,
                    w2,
                    self.word(),
                    "EOF"]
        if roll == 4:
            # heredoc as loop input
            return ["while read x; do echo r:$x; done <<EOF",
                    w,
                    w2,
                    "EOF"]
        # double-quoted delimiter behaves like the single-quoted one
        return ['cat <<"END"',
                f"plain $undef {w}",
                "END"]

    def stmt_jobs(self) -> list[str]:
        """Background jobs, wait, $!, kill — kept deterministic: output
        of concurrent jobs goes to distinct files, only long sleeps are
        killed (so the host never loses the race), and every job is
        either waited for or killed."""
        rng = self.rng
        roll = rng.randint(0, 6)
        if roll == 0:
            n = rng.randint(0, 9)
            return [f"(exit {n}) &", "wait $!", "echo rc=$?"]
        if roll == 1:
            n = rng.randint(1, 9)
            # bare wait reaps everything and always reports 0
            return [f"(exit {n}) &", "wait", "echo rc=$?"]
        if roll == 2:
            out = self._fresh("bg")
            return [f"{self.pipeline()} > {out} &", "wait",
                    rng.choice([f"cat {out}", f"wc -l < {out}",
                                f"sort {out}"])]
        if roll == 3:
            sig, status = rng.choice([("", 143), ("-9 ", 137),
                                      ("-s TERM ", 143)])
            return ["sleep 5 &", f"kill {sig}$!", "wait $!",
                    f"echo rc=$?"]
        if roll == 4:
            out1, out2 = self._fresh("bg"), self._fresh("bg")
            return [f"{self.source()} > {out1} &",
                    f"{self.source()} > {out2} &",
                    "wait",
                    f"cat {out1} {out2}"]
        if roll == 5:
            n = rng.randint(0, 9)
            return [f"(exit {n}) &", "p=$!", "wait $p", "echo rc=$?"]
        # killed-then-waited pid keeps reporting its signal status
        return ["sleep 5 &", "kill $!", "wait $!", "echo a=$?",
                "echo b=$?"]

    def stmt_func(self) -> list[str]:
        """Function definition + call + return, positional shadowing."""
        rng = self.rng
        w, w2 = self.word(), self.word()
        roll = rng.randint(0, 4)
        if roll == 0:
            return [f"f() {{ echo fn:$1:$2; }}", f"f {w} {w2}",
                    "echo rc=$?"]
        if roll == 1:
            n = rng.randint(0, 9)
            return [f"f() {{ return {n}; }}", "f", "echo rc=$?"]
        if roll == 2:
            # function args shadow the script positionals, then restore
            return [f"set -- {w} {w2}",
                    'g() { echo inner:$#:$1; }',
                    f"g {self.word()}",
                    'echo outer:$#:$1']
        if roll == 3:
            n = rng.randint(1, 5)
            return ["count() { echo c:$#; return $#; }",
                    f"count {' '.join(self.word() for _ in range(n))}",
                    "echo rc=$?"]
        return [f"up() {{ echo $1 | tr a-z A-Z; }}", f"up {w.lower()}"]

    def stmt_caseesac(self) -> list[str]:
        """case/esac: multi-pattern arms, bracket and glob patterns,
        cases inside loops."""
        rng = self.rng
        w = self.word()
        roll = rng.randint(0, 3)
        if roll == 0:
            p1, p2 = rng.sample(_WORDS, 2)
            return [f"v={w}",
                    f"case $v in {p1}|{p2}) echo one;; {w}) echo two;; "
                    "*) echo other;; esac"]
        if roll == 1:
            n = rng.randint(0, 99)
            return [f"case {n} in [0-9]) echo d1;; [0-9][0-9]) echo d2;; "
                    "*) echo big;; esac"]
        if roll == 2:
            items = " ".join(rng.sample(_WORDS, 3))
            pat = rng.choice(["[a-m]*", "*o*", f"{w[0]}*", "??*"])
            return [f"for w in {items}; do "
                    f"case $w in {pat}) echo hit:$w;; *) echo miss:$w;; esac; "
                    "done"]
        return [f"v={w}.txt",
                'case $v in *.txt) echo text;; *.gz) echo zip;; esac']

    def stmt_readloop(self) -> list[str]:
        """read- and getopts-driven loops — the interactive-script shapes
        (argument parsing, line-by-line processing) synthetic pipelines
        miss."""
        rng = self.rng
        roll = rng.randint(0, 4)
        if roll == 0:
            f = self.words_file()
            return [f"while read a b; do echo [$a][$b]; done < {f}"]
        if roll == 1:
            f = self.nums_file()
            return [f"while read -r x; do echo n:$x; done < {f}"]
        if roll == 2:
            optstring, args = rng.choice([
                ("ab:", f"-a -b {self.word()}"),
                ("xy", "-x -y"),
                ("n:v", f"-n {rng.randint(0, 99)} -v"),
                ("ab:", "-b"),        # missing argument -> '?' arm
                ("ab:", f"-a -z {self.word()}"),  # illegal option
            ])
            return [f"while getopts {optstring} o {args}; do "
                    'echo o:$o:$OPTARG; done',
                    "echo ind=$OPTIND"]
        if roll == 3:
            f = self.words_file()
            return [f"while read x; do "
                    f"case $x in [A-Z]*) echo U:$x;; *) echo l:$x;; esac; "
                    f"done < {f}"]
        f = self.colon_file()
        return [f"while read line; do "
                "k=${line%%:*}; echo key:$k; "
                f"done < {f}"]

    KINDS = {
        "pipeline": stmt_pipeline,
        "coreutils": stmt_coreutils,
        "expansion": stmt_expansion,
        "arith": stmt_arith,
        "control": stmt_control,
        "redirect": stmt_redirect,
        "heredoc": stmt_heredoc,
        "jobs": stmt_jobs,
        "func": stmt_func,
        "caseesac": stmt_caseesac,
        "readloop": stmt_readloop,
    }

    def script(self) -> str:
        weights = PROFILE_WEIGHTS[self.profile]
        kinds = list(weights)
        wts = [weights[k] for k in kinds]
        lines: list[str] = []
        for _ in range(self.rng.randint(1, 3)):
            kind = self.rng.choices(kinds, weights=wts)[0]
            lines.extend(self.KINDS[kind](self))
        return "\n".join(lines)


def generate_case(seed: int, index: int, profile: str = "default") -> Case:
    if profile not in PROFILE_WEIGHTS:
        raise ValueError(f"unknown grammar profile {profile!r}; "
                         f"choose from {profiles()}")
    rng = random.Random(f"{seed}:{profile}:{index}")
    gen = _Gen(rng, profile)
    script = gen.script()
    return Case(ident=f"{profile}-{seed}-{index}", profile=profile,
                seed=seed, index=index, script=script, files=dict(gen.files))


def generate_cases(seed: int, count: int,
                   profile: str = "default") -> list[Case]:
    return [generate_case(seed, i, profile) for i in range(count)]
