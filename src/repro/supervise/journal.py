"""The durable pipeline journal: fsync-ordered, crash-consistent.

Layout of a checkpoint directory::

    <root>/journal.jsonl     append-only records, one JSON object/line
    <root>/segs/seg-N.bin    output payload for record N

Commit protocol for one round (write-ahead ordering):

1. the payload is written to ``segs/.tmp-seg-N``, flushed + fsynced,
   and atomically renamed to ``segs/seg-N.bin``;
2. only then is the record line — carrying the segment's length and
   sha256 — appended to ``journal.jsonl`` and fsynced.

A crash between (1) and (2) leaves an *orphan* segment that no record
references; a crash during (2) leaves a *torn* tail line.  Both are
repaired by :meth:`Journal.recover`: the tail is truncated back to the
last fully-valid record and orphan/tmp segments are deleted — the
durable-side analogue of rolling back a partially-staged sink.  Every
record line also embeds a sha256 over its own body, so a corrupted
middle record is detected (the journal is trusted only up to the first
invalid record).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Optional

JOURNAL_NAME = "journal.jsonl"
SEG_DIR = "segs"
TMP_PREFIX = ".tmp-"


class JournalError(Exception):
    pass


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class JournalRecord:
    """One committed round."""

    round: int
    input_offset: int
    output_len: int
    output_sha: str
    seg: str
    seg_len: int
    seg_sha: str
    mode: str  # "delta" (seg appends to the output) | "full" (seg replaces it)
    script_sha: str = ""
    engine: str = ""
    extra: dict = field(default_factory=dict)

    def body(self) -> dict:
        d = {
            "round": self.round,
            "input_offset": self.input_offset,
            "output_len": self.output_len,
            "output_sha": self.output_sha,
            "seg": self.seg,
            "seg_len": self.seg_len,
            "seg_sha": self.seg_sha,
            "mode": self.mode,
            "script_sha": self.script_sha,
            "engine": self.engine,
        }
        if self.extra:
            d["extra"] = self.extra
        return d

    @classmethod
    def from_body(cls, body: dict) -> "JournalRecord":
        return cls(
            round=body["round"], input_offset=body["input_offset"],
            output_len=body["output_len"], output_sha=body["output_sha"],
            seg=body["seg"], seg_len=body["seg_len"],
            seg_sha=body["seg_sha"], mode=body["mode"],
            script_sha=body.get("script_sha", ""),
            engine=body.get("engine", ""),
            extra=body.get("extra", {}),
        )


def _encode_line(body: dict) -> bytes:
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    line = json.dumps({"v": 1, "sha": _sha(payload.encode()), "body": body},
                      sort_keys=True, separators=(",", ":"))
    return line.encode() + b"\n"


def _decode_line(raw: bytes) -> Optional[dict]:
    """Parse + self-check one journal line; None when torn/corrupt."""
    try:
        obj = json.loads(raw)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(obj, dict) or obj.get("v") != 1:
        return None
    body = obj.get("body")
    if not isinstance(body, dict):
        return None
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    if _sha(payload.encode()) != obj.get("sha"):
        return None
    return body


class Journal:
    """The durable round journal of one supervised pipeline."""

    def __init__(self, root: str):
        self.root = root
        self.seg_dir = os.path.join(root, SEG_DIR)
        self.path = os.path.join(root, JOURNAL_NAME)
        os.makedirs(self.seg_dir, exist_ok=True)
        self.records: list[JournalRecord] = []

    # -- commit -------------------------------------------------------------------

    def append(self, record: JournalRecord, payload: bytes,
               crash_after_payload: bool = False,
               torn_record: bool = False) -> None:
        """Durably commit one round (payload first, then the record).

        ``crash_after_payload`` / ``torn_record`` simulate a host crash
        at the two interesting points of the protocol (used by the
        recovery tests and the chaos campaign): the former leaves an
        orphan segment, the latter additionally leaves a torn record
        line.  Both raise without registering the record."""
        from .supervisor import SimulatedCrash

        record.seg_len = len(payload)
        record.seg_sha = _sha(payload)
        seg_final = os.path.join(self.seg_dir, record.seg)
        seg_tmp = os.path.join(self.seg_dir, TMP_PREFIX + record.seg)
        with open(seg_tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.rename(seg_tmp, seg_final)
        _fsync_dir(self.seg_dir)
        if crash_after_payload:
            raise SimulatedCrash("crash after payload fsync, before record")
        line = _encode_line(record.body())
        if torn_record:
            with open(self.path, "ab") as fh:
                fh.write(line[: max(1, len(line) // 2)])
                fh.flush()
                os.fsync(fh.fileno())
            raise SimulatedCrash("crash mid-record (torn journal tail)")
        with open(self.path, "ab") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self.records.append(record)

    # -- recovery -----------------------------------------------------------------

    def recover(self) -> dict:
        """Load the journal, truncating any torn tail and deleting any
        orphan/tmp segments.  Returns a small repair report."""
        repairs = {"torn_tail_bytes": 0, "orphan_segs": 0,
                   "records": 0, "invalid_records": 0}
        self.records = []
        valid_bytes = 0
        raw = b""
        if os.path.exists(self.path):
            with open(self.path, "rb") as fh:
                raw = fh.read()
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                break  # torn tail (no terminator)
            line = raw[offset:newline]
            body = _decode_line(line)
            if body is None:
                repairs["invalid_records"] += 1
                break
            record = JournalRecord.from_body(body)
            if not self._seg_valid(record):
                # record without durable payload: write-ahead ordering
                # was violated by corruption — trust nothing after it
                repairs["invalid_records"] += 1
                break
            self.records.append(record)
            offset = newline + 1
            valid_bytes = offset
        if valid_bytes < len(raw):
            repairs["torn_tail_bytes"] = len(raw) - valid_bytes
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        referenced = {r.seg for r in self.records}
        for name in os.listdir(self.seg_dir):
            if name in referenced:
                continue
            os.unlink(os.path.join(self.seg_dir, name))
            repairs["orphan_segs"] += 1
        repairs["records"] = len(self.records)
        return repairs

    def _seg_valid(self, record: JournalRecord) -> bool:
        seg_path = os.path.join(self.seg_dir, record.seg)
        if not os.path.exists(seg_path):
            return False
        with open(seg_path, "rb") as fh:
            data = fh.read()
        return len(data) == record.seg_len and _sha(data) == record.seg_sha

    # -- reconstruction -----------------------------------------------------------

    def read_seg(self, record: JournalRecord) -> bytes:
        with open(os.path.join(self.seg_dir, record.seg), "rb") as fh:
            return fh.read()

    def committed_output(self) -> bytes:
        """Rebuild the committed pipeline output by applying records in
        order (delta segments append, full segments replace)."""
        out = b""
        for record in self.records:
            seg = self.read_seg(record)
            out = out + seg if record.mode == "delta" else seg
            if len(out) != record.output_len or _sha(out) != record.output_sha:
                raise JournalError(
                    f"round {record.round}: reconstructed output does not "
                    f"match committed digest")
        return out

    @property
    def input_offset(self) -> int:
        return self.records[-1].input_offset if self.records else 0

    def next_seg_name(self) -> str:
        return f"seg-{len(self.records)}.bin"
