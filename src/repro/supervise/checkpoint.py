"""Durable snapshots of incremental-cache state + the run manifest.

The cache snapshot makes a supervised restart *warm*: after a crash the
new process re-seeds its :class:`~repro.incremental.IncrementalCache`
from disk, so resumed rounds extend cached outputs instead of
recomputing the whole input (the <50% recompute guarantee measured by
``benchmarks/bench_recovery.py``).

Snapshot format (``cache.bin``, written tmp + fsync + rename so a crash
never leaves a half-written snapshot under the final name):

* one header line of JSON;
* per entry: a JSON meta line (key, status, provenance fingerprints,
  an ``output_sha`` self-check, and the payload length) followed by the
  raw output bytes and a newline;
* a trailer line carrying the cache's delta-lookup map.

Loading is defensive in depth: a torn file stops at the last complete
entry, and an entry whose payload fails its digest is skipped — the
engine additionally re-verifies ``output_sha`` on every replay, so even
a snapshot corrupted *after* loading can never leak stale bytes into
pipeline output.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from ..incremental.cache import CacheEntry, IncrementalCache

CACHE_NAME = "cache.bin"
MANIFEST_NAME = "MANIFEST.json"


class CheckpointError(Exception):
    pass


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write(path: str, data: bytes) -> None:
    tmp = os.path.join(os.path.dirname(path),
                       ".tmp-" + os.path.basename(path))
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.rename(tmp, path)


def save_cache(root: str, cache: IncrementalCache) -> str:
    """Snapshot ``cache`` into ``<root>/cache.bin`` atomically."""
    os.makedirs(root, exist_ok=True)
    chunks: list[bytes] = []
    chunks.append(json.dumps({"v": 1, "entries": len(cache.entries)}).encode()
                  + b"\n")
    for key, entry in cache.entries.items():
        meta = {
            "key": entry.key,
            "status": entry.status,
            "input_paths": entry.input_paths,
            "input_sizes": entry.input_sizes,
            "input_prefix_fps": entry.input_prefix_fps,
            "input_head_fps": entry.input_head_fps,
            "input_tail_fps": entry.input_tail_fps,
            "output_sha": entry.output_sha or _sha(entry.output),
            "output_len": len(entry.output),
        }
        chunks.append(json.dumps(meta, sort_keys=True).encode() + b"\n")
        chunks.append(entry.output + b"\n")
    latest = [[sig, list(paths), key]
              for (sig, paths), key in cache.latest_for_paths.items()]
    chunks.append(json.dumps({"latest": latest}, sort_keys=True).encode()
                  + b"\n")
    path = os.path.join(root, CACHE_NAME)
    _atomic_write(path, b"".join(chunks))
    return path


def load_cache(root: str,
               cache: Optional[IncrementalCache] = None) -> IncrementalCache:
    """Rebuild an :class:`IncrementalCache` from a snapshot, skipping
    torn or digest-mismatched entries.  Missing snapshot = empty cache."""
    cache = cache if cache is not None else IncrementalCache()
    path = os.path.join(root, CACHE_NAME)
    if not os.path.exists(path):
        return cache
    with open(path, "rb") as fh:
        raw = fh.read()
    offset = raw.find(b"\n")
    if offset < 0:
        return cache
    offset += 1  # past the header
    entries: dict[str, CacheEntry] = {}
    latest: list = []
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break
        try:
            meta = json.loads(raw[offset:newline])
        except (ValueError, UnicodeDecodeError):
            break
        if "latest" in meta:
            latest = meta["latest"]
            break
        try:
            out_len = int(meta["output_len"])
        except (KeyError, TypeError, ValueError):
            break
        start = newline + 1
        end = start + out_len
        if end + 1 > len(raw):  # torn payload
            break
        output = raw[start:end]
        offset = end + 1
        if _sha(output) != meta.get("output_sha"):
            continue  # corrupted entry: skip, never replay stale bytes
        entry = CacheEntry(
            key=meta["key"], output=output, status=int(meta["status"]),
            input_paths=list(meta.get("input_paths", [])),
            input_sizes=list(meta.get("input_sizes", [])),
            input_prefix_fps=list(meta.get("input_prefix_fps", [])),
            output_sha=meta["output_sha"],
            input_head_fps=list(meta.get("input_head_fps", [])),
            input_tail_fps=list(meta.get("input_tail_fps", [])),
        )
        entries[entry.key] = entry
    for key, entry in entries.items():
        cache.entries[key] = entry
        cache.size_bytes += len(entry.output)
    for sig, paths, key in latest:
        if key in cache.entries:
            cache.latest_for_paths[(sig, tuple(paths))] = key
    cache._evict()
    return cache


# -- manifest ---------------------------------------------------------------------


def save_manifest(root: str, manifest: dict) -> str:
    os.makedirs(root, exist_ok=True)
    path = os.path.join(root, MANIFEST_NAME)
    _atomic_write(path, json.dumps(manifest, sort_keys=True,
                                   indent=2).encode() + b"\n")
    return path


def load_manifest(root: str) -> Optional[dict]:
    path = os.path.join(root, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path, "rb") as fh:
            return json.loads(fh.read())
    except (ValueError, UnicodeDecodeError):
        return None
