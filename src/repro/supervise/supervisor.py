"""The supervisor: crash-consistent, self-healing streaming pipelines.

A :class:`Supervisor` owns one script over one growing input source and
drives it in *rounds*: each round feeds newly-available input bytes into
the virtual filesystem, re-runs the script (the S11 incremental engine
turns the re-run into an append-only delta for stateless regions), and
durably commits the result to the :class:`~repro.supervise.Journal`
before acknowledging the new input offset.

Failure handling layers, innermost first:

* vOS faults inside a run are retried under the shared
  :class:`~repro.distributed.retry.RetryPolicy` (the same object dshell
  branches and transactional regions use), with partially-staged
  ``*.staged`` sinks re-sealed between attempts;
* a watchdog (``repro.distributed.retry.arm_watchdog``) SIGKILLs a
  stalled run after ``watchdog_s`` virtual seconds, turning a hang into
  an ordinary retryable failure;
* when a round exhausts its retry budget the engine is *degraded* one
  rung down the ladder (parallel jash → narrow jash → incremental-only
  → plain interpreter) and the round is retried with a fresh budget —
  the PR 1 degradation ladder, now driven from outside the run;
* a host crash (:class:`SimulatedCrash` at any :class:`CrashPoint`, or
  a real process death) is recovered by building a fresh supervisor
  over the same checkpoint directory and calling :meth:`Supervisor.resume`:
  the journal is repaired, the input prefix is replayed, the cache
  snapshot re-seeds the incremental engine, and the next round continues
  from the last *committed* offset — final output is byte-identical to
  a crash-free run;
* repeated crashes without progress (crash looping) are detected via the
  manifest's restart counter and penalised with exponentially capped
  virtual backoff before the first resumed round.

Everything the supervisor does is visible as ``supervise.*`` tracer
spans and instants.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..compiler.optimizer import OptimizerConfig
from ..distributed.retry import RetryPolicy, arm_watchdog
from ..incremental import IncrementalConfig, IncrementalOptimizer
from ..jit.composite import CompositeOptimizer
from ..jit.engine import JashConfig, JashOptimizer
from ..shell import Shell
from ..vos.process import DONE
from .checkpoint import load_cache, load_manifest, save_cache, save_manifest
from .journal import Journal, JournalRecord

#: the engine degradation ladder, strongest first
LADDER = ("jash", "jash-narrow", "inc", "interp")


class SimulatedCrash(RuntimeError):
    """A simulated host crash: the supervisor process dies *here*.

    Raised by the commit protocol's crash hooks (and by tests) to model
    losing the whole process — in-memory state is gone, only fsynced
    checkpoint state survives.  Recovery = fresh supervisor + resume().
    """


class SuperviseError(Exception):
    """The supervisor gave up (every engine rung exhausted its budget)."""


@dataclass(frozen=True)
class CrashPoint:
    """Where to kill the supervisor during a round's commit.

    ``where`` is one of:

    * ``"pre-commit"``   — before anything durable: the round vanishes;
    * ``"post-payload"`` — after the payload segment fsync, before the
      record: recovery must delete the orphan segment;
    * ``"torn-record"``  — mid-append of the record line: recovery must
      truncate the torn tail (and delete the orphan segment);
    * ``"post-commit"``  — after the record and cache snapshot are
      durable: recovery must be a no-op (idempotent resume).
    """

    round: int
    where: str

    def __post_init__(self) -> None:
        if self.where not in ("pre-commit", "post-payload",
                              "torn-record", "post-commit"):
            raise ValueError(f"unknown crash point {self.where!r}")


@dataclass
class SuperviseConfig:
    script: str
    checkpoint_dir: str
    input_path: str = "/stream.log"
    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_retries=3, base_delay_s=0.01,
                                            max_elapsed_s=300.0))
    #: SIGKILL a run after this many virtual seconds (None = no watchdog)
    watchdog_s: Optional[float] = 120.0
    #: restarts without a new committed round before declaring a crash loop
    crash_loop_threshold: int = 3
    crash_loop_base_s: float = 1.0
    crash_loop_cap_s: float = 60.0
    #: forwarded to the incremental engine (tests use small inputs)
    min_input_bytes: int = 4096
    #: delta validation mode for resumed/streaming rounds ("sampled" is
    #: the O(delta) continuous-ingestion mode; "full" is exact)
    delta_verify: str = "sampled"
    machine: Optional[object] = None  # MachineSpec
    faults: Optional[object] = None  # FaultPlan, installed on every shell
    tracer: Optional[object] = None  # obs.Tracer, installed on every shell
    #: obs.MetricsRegistry, installed on every shell; the supervisor
    #: additionally folds rounds/attempts/retries/journal bytes and
    #: checkpoint age/lag into it
    metrics: Optional[object] = None


@dataclass
class RoundReport:
    round: int
    engine: str
    attempts: int
    status: int
    input_len: int
    output_len: int
    mode: str  # "delta" | "full"
    saved_bytes: int = 0
    resealed: int = 0
    committed: bool = False


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class Supervisor:
    """Run one script over one growing source, crash-consistently."""

    def __init__(self, config: SuperviseConfig, source):
        self.config = config
        self.source = source
        self.journal = Journal(config.checkpoint_dir)
        self._inc = IncrementalOptimizer(IncrementalConfig(
            min_input_bytes=config.min_input_bytes,
            delta_verify=config.delta_verify))
        self.shell: Optional[Shell] = None
        self.reports: list[RoundReport] = []
        self.ladder_level = 0
        self.round = 0
        self.resume_backoff_s = 0.0
        self._fed = 0        # input bytes present in the vfs
        self._committed = b""  # output as of the last journal record
        # checkpoint age/lag tracking for the metrics plane
        self._last_commit_t = 0.0
        self._last_commit_offset = 0

    # -- plumbing -------------------------------------------------------------------

    @property
    def engine(self) -> str:
        return LADDER[self.ladder_level]

    def _make_optimizer(self, level: str):
        if level == "interp":
            return None
        if level == "inc":
            return self._inc
        width = 2 if level == "jash-narrow" else None
        jash = JashOptimizer(JashConfig(optimizer=OptimizerConfig(
            min_input_bytes=self.config.min_input_bytes, max_width=width)))
        return CompositeOptimizer(self._inc, jash)

    def _ensure_shell(self) -> Shell:
        if self.shell is None:
            self.shell = Shell(machine=self.config.machine,
                               optimizer=self._make_optimizer(self.engine),
                               faults=self.config.faults,
                               tracer=self.config.tracer,
                               metrics=self.config.metrics)
            data = self.source.replay(self._fed) if self._fed else b""
            self.shell.fs.write_bytes(self.config.input_path, data,
                                      mtime=self.shell.kernel.now)
        return self.shell

    def _instant(self, name: str, **args) -> None:
        tracer = self.shell.tracer if self.shell is not None else None
        if tracer is not None:
            tracer.instant("supervise", name, self.shell.kernel.now, **args)
        metrics = self.config.metrics
        if metrics is not None:
            metrics.counter("supervise.events",
                            event=name.split(".", 1)[-1]).inc()

    def _sleep(self, delay: float) -> None:
        """Advance virtual time (backoff lives on the vOS clock)."""
        if delay <= 0.0:
            return
        kernel = self._ensure_shell().kernel

        def sleeper(proc, delay=delay):
            yield from proc.sleep(delay)
            return 0

        kernel.run_until_process_done(
            kernel.create_process(sleeper, name="backoff"))

    def _feed(self) -> int:
        """Pull newly-available source bytes into the vfs input file."""
        shell = self._ensure_shell()
        total = self.source.available()
        if total > self._fed:
            delta = self.source.read(self._fed, total - self._fed)
            node = shell.fs.open_node(self.config.input_path, create=True)
            node.data.extend(delta)
            node.mtime = shell.kernel.now
            self._fed = total
        return self._fed

    def _reseal(self) -> int:
        """Roll back partially-staged sinks left by a failed attempt."""
        shell = self._ensure_shell()
        staged = [p for p in shell.fs.walk() if p.endswith(".staged")]
        for path in staged:
            shell.fs.unlink(path)
        if staged:
            self._instant("supervise.reseal", count=len(staged))
        return len(staged)

    # -- one round ------------------------------------------------------------------

    def run_round(self, crash: Optional[CrashPoint] = None) -> RoundReport:
        """Feed, execute (with retries/degradation), durably commit."""
        shell = self._ensure_shell()
        self._feed()
        report = RoundReport(round=self.round, engine=self.engine,
                             attempts=0, status=-1, input_len=self._fed,
                             output_len=0, mode="full")
        start = shell.kernel.now
        result = self._attempt_with_recovery(report)
        report.status = result.status
        self._commit(result.stdout, report, crash)
        if shell.tracer is not None:
            shell.tracer.span("supervise", "supervise.round", start,
                              shell.kernel.now, round=report.round,
                              engine=report.engine, attempts=report.attempts,
                              committed=report.committed, mode=report.mode)
        metrics = self.config.metrics
        if metrics is not None:
            metrics.counter("supervise.rounds", engine=report.engine).inc()
            metrics.counter("supervise.attempts").inc(report.attempts)
            metrics.maybe_sample(shell.kernel.now)
        self.reports.append(report)
        self.round += 1
        return report

    def _attempt_with_recovery(self, report: RoundReport):
        """The retry + watchdog + degradation loop around one round."""
        shell = self._ensure_shell()
        policy = self.config.policy
        first_start = shell.kernel.now
        retry_no = 0
        plan = shell.faults
        while True:
            mark = len(self._inc.events)
            fired_before = plan.fired if plan is not None else 0
            watchdog = arm_watchdog(shell.kernel, self.config.watchdog_s,
                                    name="supervise-watchdog")
            result = shell.run(self.config.script)
            if watchdog is not None and watchdog.state != DONE:
                shell.kernel.kill_process(watchdog)
            report.attempts += 1
            fired = (plan.fired - fired_before) if plan is not None else 0
            if result.status == 0 and fired == 0:
                report.engine = self.engine
                report.saved_bytes = sum(
                    e.saved_bytes for e in self._inc.events[mark:])
                return result
            if result.status == 0:
                # POSIX pipeline semantics can mask an upstream fault
                # death (the killed stage's status is not the pipeline's)
                # — a clean exit during which faults fired is suspect;
                # never commit it.  The storm budget bounds this loop.
                self._instant("supervise.suspect", round=report.round,
                              fired=fired, engine=self.engine)
            report.resealed += self._reseal()
            retry_no += 1
            delay = policy.next_delay(retry_no,
                                      elapsed_s=shell.kernel.now - first_start)
            if delay is not None:
                self._instant("supervise.retry", round=report.round,
                              retry=retry_no, status=result.status,
                              delay_s=delay, engine=self.engine)
                self._sleep(delay)
                continue
            # budget exhausted at this rung: degrade and start over
            if self.ladder_level + 1 >= len(LADDER):
                raise SuperviseError(
                    f"round {report.round}: every engine "
                    f"({' -> '.join(LADDER)}) exhausted its retry budget "
                    f"(last status {result.status})")
            self.ladder_level += 1
            self._instant("supervise.degrade", round=report.round,
                          engine=self.engine, status=result.status)
            shell.optimizer = self._make_optimizer(self.engine)
            retry_no = 0
            first_start = shell.kernel.now

    # -- durable commit -------------------------------------------------------------

    def _commit(self, output: bytes, report: RoundReport,
                crash: Optional[CrashPoint]) -> None:
        where = crash.where if crash and crash.round == report.round else None
        if where == "pre-commit":
            raise SimulatedCrash(f"round {report.round}: crash before commit")
        if output.startswith(self._committed) and self._committed:
            mode, seg = "delta", output[len(self._committed):]
        else:
            mode, seg = "full", output
        record = JournalRecord(
            round=report.round, input_offset=self._fed,
            output_len=len(output), output_sha=_sha(output),
            seg=self.journal.next_seg_name(), seg_len=len(seg),
            seg_sha="", mode=mode,
            script_sha=_sha(self.config.script.encode()),
            engine=report.engine)
        self.journal.append(record, seg,
                            crash_after_payload=(where == "post-payload"),
                            torn_record=(where == "torn-record"))
        save_cache(self.config.checkpoint_dir, self._inc.cache)
        save_manifest(self.config.checkpoint_dir, {
            "v": 1, "script_sha": record.script_sha,
            "records": len(self.journal.records),
            "restarts_without_progress": 0,
        })
        self._committed = output
        report.output_len = len(output)
        report.mode = mode
        report.committed = True
        metrics = self.config.metrics
        if metrics is not None:
            now = self.shell.kernel.now if self.shell is not None else 0.0
            metrics.counter("supervise.journal_bytes").inc(len(seg))
            metrics.counter("supervise.commits", mode=mode).inc()
            metrics.gauge("supervise.checkpoint_age_s").set(
                now - self._last_commit_t)
            metrics.gauge("supervise.checkpoint_lag_bytes").set(
                self._fed - self._last_commit_offset)
            self._last_commit_t = now
            self._last_commit_offset = self._fed
        if where == "post-commit":
            raise SimulatedCrash(f"round {report.round}: crash after commit")

    # -- recovery -------------------------------------------------------------------

    def resume(self) -> dict:
        """Restore from the checkpoint directory after a crash.

        Repairs the journal (torn tail, orphan segments), replays the
        committed input prefix into a fresh virtual machine, re-seeds
        the incremental cache from its snapshot, and applies crash-loop
        backoff when restarts are not making progress.  Returns the
        repair report; afterwards :meth:`run_round` continues from the
        last committed offset."""
        repairs = self.journal.recover()
        self._committed = self.journal.committed_output()
        self._fed = self.journal.input_offset
        self.round = (self.journal.records[-1].round + 1
                      if self.journal.records else 0)
        self.shell = None  # force a fresh machine seeded from the journal
        load_cache(self.config.checkpoint_dir, self._inc.cache)
        manifest = load_manifest(self.config.checkpoint_dir) or {}
        stuck = manifest.get("restarts_without_progress", 0)
        if manifest.get("records") == len(self.journal.records):
            stuck += 1
        else:
            stuck = 0
        save_manifest(self.config.checkpoint_dir, {
            "v": 1, "script_sha": _sha(self.config.script.encode()),
            "records": len(self.journal.records),
            "restarts_without_progress": stuck,
        })
        self._ensure_shell()
        self._instant("supervise.resume", records=repairs["records"],
                      torn_tail_bytes=repairs["torn_tail_bytes"],
                      orphan_segs=repairs["orphan_segs"],
                      input_offset=self._fed)
        self.resume_backoff_s = 0.0
        if stuck >= self.config.crash_loop_threshold:
            backoff = min(
                self.config.crash_loop_cap_s,
                self.config.crash_loop_base_s
                * 2.0 ** (stuck - self.config.crash_loop_threshold))
            self.resume_backoff_s = backoff
            self._instant("supervise.crash_loop", restarts=stuck,
                          backoff_s=backoff)
            self._sleep(backoff)
        repairs["restarts_without_progress"] = stuck
        repairs["backoff_s"] = self.resume_backoff_s
        return repairs

    # -- results --------------------------------------------------------------------

    def committed_output(self) -> bytes:
        """The durably-committed pipeline output so far."""
        return self._committed

    def run_rounds(self, n: int, grow_bytes: int,
                   crashes: Optional[list[CrashPoint]] = None
                   ) -> list[RoundReport]:
        """Drive ``n`` rounds, growing the source before each one."""
        by_round = {c.round: c for c in (crashes or [])}
        out: list[RoundReport] = []
        for _ in range(n):
            self.source.grow(grow_bytes)
            out.append(self.run_round(crash=by_round.get(self.round)))
        return out
