"""S18 — crash-consistent supervision for long-running and streaming
pipelines (paper §4 "Incremental Computation" + "fault tolerant").

A :class:`Supervisor` re-drives a script as its input grows, journaling
each committed round to a durable, fsync-ordered checkpoint directory.
After a crash — a simulated host crash at any point in the commit
protocol, or injected vOS faults mid-run — a fresh supervisor restores
from the journal, re-seals partially-staged state, and resumes from the
last committed offset with byte-identical final output.
"""

from .checkpoint import CheckpointError, load_cache, load_manifest, save_cache, save_manifest
from .journal import Journal, JournalRecord
from .stream import FileTailSource, SyntheticSource
from .supervisor import (
    CrashPoint,
    RoundReport,
    SimulatedCrash,
    SuperviseConfig,
    SuperviseError,
    Supervisor,
)

__all__ = [
    "CheckpointError", "load_cache", "load_manifest", "save_cache",
    "save_manifest",
    "Journal", "JournalRecord",
    "FileTailSource", "SyntheticSource",
    "CrashPoint", "RoundReport", "SimulatedCrash", "SuperviseConfig",
    "SuperviseError", "Supervisor",
]
