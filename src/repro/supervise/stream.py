"""Growing input sources for supervised pipelines (tail -f analogue).

A source exposes a byte stream that only ever grows:

* ``available()`` — total bytes produced so far;
* ``read(offset, nbytes)`` — any committed range, *replayable*: after a
  crash a fresh process must be able to reconstruct exactly the bytes
  the dead process had ingested, so the supervisor can rebuild its
  virtual input file up to the last committed offset.

:class:`SyntheticSource` generates a deterministic log-like stream from
a seed (the chaos campaign's workhorse); :class:`FileTailSource` tails
a real host file for ``jash run --supervise``.
"""

from __future__ import annotations

import os
import random

_SEVERITIES = ("INFO", "INFO", "INFO", "WARN", "ERROR")
_OPS = ("open", "read", "write", "close", "sync", "retry")


class SyntheticSource:
    """A seeded, replayable stream of log lines.

    Line ``i`` is a pure function of ``(seed, i)``, so two instances
    with the same seed produce byte-identical streams — across
    processes, which is what makes crash recovery testable: the resumed
    supervisor rebuilds the ingested prefix from the seed alone.
    ``grow(nbytes)`` publishes at least ``nbytes`` more bytes."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._buf = bytearray()
        self._line = 0
        self._published = 0

    def _gen_line(self) -> bytes:
        i = self._line
        self._line += 1
        rng = random.Random((self.seed << 20) ^ i)
        sev = _SEVERITIES[rng.randrange(len(_SEVERITIES))]
        op = _OPS[rng.randrange(len(_OPS))]
        return (f"host{i % 7} {sev} {op} req{i} "
                f"lat={rng.randrange(10_000)}us\n").encode()

    def grow(self, nbytes: int) -> int:
        """Publish at least ``nbytes`` more bytes; returns new total."""
        target = self._published + max(0, nbytes)
        while len(self._buf) < target:
            self._buf.extend(self._gen_line())
        self._published = len(self._buf)
        return self._published

    def available(self) -> int:
        return self._published

    def read(self, offset: int, nbytes: int) -> bytes:
        end = min(self._published, offset + nbytes)
        return bytes(self._buf[offset:end])

    def replay(self, upto: int) -> bytes:
        """The first ``upto`` bytes — regenerated if this is a fresh
        instance (deterministic in the seed)."""
        while len(self._buf) < upto:
            self._buf.extend(self._gen_line())
        self._published = max(self._published, min(upto, len(self._buf)))
        return bytes(self._buf[:upto])


class FileTailSource:
    """Tail a growing host file (the real tail -f case)."""

    def __init__(self, path: str):
        self.path = path

    def available(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def read(self, offset: int, nbytes: int) -> bytes:
        try:
            with open(self.path, "rb") as fh:
                fh.seek(offset)
                return fh.read(nbytes)
        except OSError:
            return b""

    def replay(self, upto: int) -> bytes:
        return self.read(0, upto)
