"""Worker-side columnar kernels.

Everything here runs in a forked worker against memory-mapped spill
files; nothing touches the virtual OS.  Each kernel is the *exact*
byte-level semantics of the corresponding command body in
``repro.commands`` — not an approximation — because the coordinator's
oracles emit these streams verbatim into the simulation.  The numpy
paths are a columnar reformulation (translation tables, boolean run
masks) of the same function; when numpy is absent or a precondition
fails the pure-Python fallback computes the identical stream.  Line
counting deliberately stays on C-speed ``bytes.split`` + ``Counter``
— faster than a vectorized gather on variable-length records.

Grid tables: a tr stage's oracle needs "output offset at input offset
a" for arbitrary a (pipe reads land on arbitrary boundaries).  Workers
return the kept-byte prefix count at every GRID_STEP boundary; the
oracle resolves the sub-block remainder by transforming at most
GRID_STEP input bytes with :func:`tr_block` — the same 1-state
transducer — so the mapping is exact everywhere.
"""

from __future__ import annotations

import heapq
import os
import re
from array import array
from collections import Counter
from itertools import groupby, repeat

try:  # the container bakes numpy in; everything degrades without it
    import numpy as _np
except Exception:  # pragma: no cover - exercised on numpy-less hosts
    _np = None

HAVE_NUMPY = _np is not None

#: grid granularity for tr input->output offset tables
GRID_STEP = 4096
#: sort parts switch to the generic sorted-spill path above this many
#: distinct lines (the counting kernel's payoff is low cardinality)
CARD_LIMIT = 4096
#: lines sampled to detect high cardinality before a full count
PROBE_LINES = 1 << 16

_SQUEEZE_RE_CACHE: dict[bytes, re.Pattern] = {}


def _squeeze_re(squeeze: bytes) -> re.Pattern:
    pat = _SQUEEZE_RE_CACHE.get(squeeze)
    if pat is None:
        pat = re.compile(b"([" + re.escape(squeeze) + b"])\\1+")
        _SQUEEZE_RE_CACHE[squeeze] = pat
    return pat


def tr_block(data: bytes, spec: dict, carry: int) -> tuple[bytes, int]:
    """Serial-equivalent tr transform of one block.

    ``carry`` is the previous *kept output* byte (-1 if none yet); the
    return carries the updated value.  This mirrors the chunk loop in
    ``repro.commands.filters.tr`` exactly, which makes it both the
    pure-Python kernel and the oracle's sub-block remainder resolver.
    """
    delete, table, squeeze = spec["delete"], spec["table"], spec["squeeze"]
    if delete is not None:
        data = data.translate(None, delete)
    elif table is not None:
        data = data.translate(table)
    if squeeze and data:
        if carry >= 0 and carry in squeeze:
            i, n = 0, len(data)
            while i < n and data[i] == carry:
                i += 1
            data = data[i:]
        if data:
            data = _squeeze_re(squeeze).sub(b"\\1", data)
            carry = data[-1]
    return data, carry


def _identity_grid(n: int) -> array:
    grid = array("q", range(0, n + 1, GRID_STEP))
    if not grid or grid[-1] != n:
        grid.append(n)
    return grid


def _tr_part_python(data: bytes, spec: dict) -> tuple[bytes, array]:
    out_blocks: list[bytes] = []
    grid = array("q", [0])
    carry = -1
    total = 0
    for i in range(0, len(data), GRID_STEP):
        block, carry = tr_block(data[i : i + GRID_STEP], spec, carry)
        out_blocks.append(block)
        total += len(block)
        grid.append(total)
    return b"".join(out_blocks), grid


def _grid_from_kept(kept, n: int) -> array:
    """Prefix kept-byte counts sampled at GRID_STEP boundaries."""
    pad = (-n) % GRID_STEP
    if pad:
        kept = _np.concatenate([kept, _np.zeros(pad, dtype=bool)])
    per_block = kept.reshape(-1, GRID_STEP).sum(axis=1, dtype=_np.int64)
    grid = array("q", [0])
    grid.extend(_np.cumsum(per_block).tolist())
    return grid


def tr_part(data: bytes, spec: dict) -> tuple[bytes, array]:
    """Transform one input part (no incoming carry: the coordinator
    resolves squeeze seams between parts).  Returns the output stream
    and the input-offset -> output-offset grid table."""
    n = len(data)
    if n == 0:
        return b"", array("q", [0])
    delete, table, squeeze = spec["delete"], spec["table"], spec["squeeze"]
    if _np is None:
        return _tr_part_python(data, spec)
    if delete is None and table is not None and not squeeze:
        return data.translate(table), _identity_grid(n)
    if delete is not None and not squeeze:
        out = data.translate(None, delete)
        lut = _np.ones(256, dtype=bool)
        lut[_np.frombuffer(delete, dtype=_np.uint8)] = False
        kept = lut[_np.frombuffer(data, dtype=_np.uint8)]
        return out, _grid_from_kept(kept, n)
    arr = _np.frombuffer(data, dtype=_np.uint8)
    if delete is not None:
        lut = _np.ones(256, dtype=bool)
        lut[_np.frombuffer(delete, dtype=_np.uint8)] = False
        kept0 = lut[arr]
        comp = arr[kept0]
    elif table is not None:
        comp = _np.frombuffer(data.translate(table), dtype=_np.uint8)
        kept0 = None
    else:
        comp = arr
        kept0 = None
    if squeeze and len(comp):
        insq = _np.zeros(256, dtype=bool)
        insq[_np.frombuffer(squeeze, dtype=_np.uint8)] = True
        drop = _np.empty(len(comp), dtype=bool)
        drop[0] = False
        drop[1:] = insq[comp[1:]] & (comp[1:] == comp[:-1])
        keep2 = ~drop
        out = comp[keep2].tobytes()
        if kept0 is None:
            kept = keep2
        else:
            kept = _np.zeros(n, dtype=bool)
            kept[_np.flatnonzero(kept0)[keep2]] = True
    else:
        out = comp.tobytes()
        kept = kept0 if kept0 is not None else _np.ones(n, dtype=bool)
    return out, _grid_from_kept(kept, n)


# ---------------------------------------------------------------------------
# sort: C-speed line counting + generic sorted-part fallback
# ---------------------------------------------------------------------------


def _split_bodies(data: bytes) -> list[bytes]:
    """Newline-free line bodies with the serial sort's normalization:
    a missing final newline still yields a final body; a trailing
    newline does not yield an empty one."""
    if not data:
        return []
    bodies = data.split(b"\n")
    if bodies and bodies[-1] == b"":
        bodies.pop()
    return bodies


def sort_part(data: bytes, card_limit: int = CARD_LIMIT):
    """Count one line-aligned part of the pre-sort stream.

    Returns ``("counts", {body: n}, n_lines)`` when the part's
    cardinality fits the counting path, else
    ``("lines", sorted_bodies, n_lines)`` for the k-way merge path.

    Counting is a C-speed ``Counter`` over the split bodies — measured
    ~4x faster on this substrate than a vectorized packed-key kernel
    (whose gather tripled memory traffic and whose hash-collision
    bailout re-counted in Python anyway), and exact by construction.  A
    64 Ki-line probe skips straight to the sorted-lines path when
    cardinality is obviously high; a low-cardinality probe still needs
    the full count confirmed before the counts path is trusted.
    """
    bodies = _split_bodies(data)
    if len(bodies) > PROBE_LINES:
        if len(Counter(bodies[:PROBE_LINES])) > card_limit:
            bodies.sort()
            return ("lines", bodies, len(bodies))
    counts = Counter(bodies)
    if len(counts) > card_limit:
        bodies.sort()
        return ("lines", bodies, len(bodies))
    return ("counts", dict(counts), len(bodies))


def merge_sorted_parts(parts: list, reverse: bool, unique: bool):
    """K-way merge of part results into (stream, run_ends, n_lines).

    This is the dshell ``kway_merge`` discipline applied host-side:
    each part contributes an already-ordered iterator (counting parts
    expand lazily), heapq.merge interleaves them, and runs of equal
    bodies collapse into the run table the uniq oracle replays.
    """
    def expand(counts: dict):
        for word in sorted(counts, reverse=reverse):
            yield from repeat(word, 1 if unique else counts[word])

    iters = []
    n_lines = 0
    for kind, payload, m in parts:
        n_lines += m
        if kind == "counts":
            iters.append(expand(payload))
        else:
            iters.append(iter(payload if not reverse else payload[::-1]))
    merged = heapq.merge(*iters, reverse=reverse)
    out: list[bytes] = []
    run_ends = array("q")
    total = 0
    for body, group in groupby(merged):
        count = 1 if unique else sum(1 for _ in group)
        total += (len(body) + 1) * count
        out.append((body + b"\n") * count)
        run_ends.append(total)
    return b"".join(out), run_ends, n_lines


def assemble_counts(counts: dict, reverse: bool, unique: bool,
                    n_lines: int):
    """Build the sorted stream + run table from merged counts — the
    low-cardinality fast path (bytes-multiply runs at memcpy speed)."""
    words = sorted(counts, reverse=reverse)
    out: list[bytes] = []
    run_ends = array("q")
    total = 0
    for word in words:
        count = 1 if unique else counts[word]
        total += (len(word) + 1) * count
        out.append((word + b"\n") * count)
        run_ends.append(total)
    return b"".join(out), run_ends, n_lines


# ---------------------------------------------------------------------------
# task protocol (runs inside the worker process)
# ---------------------------------------------------------------------------


def _read_span(path: str, a: int, b: int) -> bytes:
    with open(path, "rb") as fh:
        fh.seek(a)
        return fh.read(b - a)


def run_task(task: dict) -> dict:
    """Execute one pool task; all large payloads travel as spill files
    under the pool's scratch directory (the host-level write set)."""
    kind = task["kind"]
    if task.get("chaos") == "crash":
        os._exit(137)
    if kind in ("tr_part", "tr_sort_part"):
        data = _read_span(task["in_path"], task["a"], task["b"])
        streams: list[str] = []
        grids: list[bytes] = []
        lens: list[int] = []
        for i, spec in enumerate(task["chain"]):
            out, grid = tr_part(data, spec)
            spill = f"{task['out_prefix']}.s{i}"
            with open(spill, "wb") as fh:
                fh.write(out)
            streams.append(spill)
            grids.append(grid.tobytes())
            lens.append(len(out))
            data = out
        result = {"streams": streams, "grids": grids, "lens": lens,
                  "a": task["a"], "b": task["b"],
                  "bytes_in": task["b"] - task["a"], "bytes_out": sum(lens)}
        if kind == "tr_sort_part":
            # single-part fusion: the sort wave's input is exactly this
            # part's final stage output, already in memory — counting it
            # here saves a task round trip and a spill re-read
            kind_, payload, m = sort_part(data,
                                          task.get("card_limit", CARD_LIMIT))
            if kind_ == "lines":
                spill = f"{task['out_prefix']}.lines"
                with open(spill, "wb") as fh:
                    for body in payload:
                        fh.write(body)
                        fh.write(b"\n")
                result["part"] = ("spill", spill, m)
            else:
                result["part"] = ("counts", payload, m)
        return result
    if kind == "sort_part":
        chunks = [_read_span(path, a, b) for path, a, b in task["segments"]]
        data = chunks[0] if len(chunks) == 1 else b"".join(chunks)
        kind_, payload, m = sort_part(data, task.get("card_limit", CARD_LIMIT))
        if kind_ == "lines":
            spill = f"{task['out_prefix']}.lines"
            with open(spill, "wb") as fh:
                for body in payload:
                    fh.write(body)
                    fh.write(b"\n")
            return {"part": ("spill", spill, m), "bytes_in": len(data),
                    "bytes_out": 0}
        return {"part": ("counts", payload, m), "bytes_in": len(data),
                "bytes_out": 0}
    if kind == "sort_merge":
        parts = []
        for entry in task["parts"]:
            if entry[0] == "spill":
                data = _read_span(entry[1], 0, os.path.getsize(entry[1]))
                parts.append(("lines", _split_bodies(data), entry[2]))
            else:
                parts.append(("counts", entry[1], entry[2]))
        stream, runs, n_lines = merge_sorted_parts(
            parts, task["reverse"], task["unique"])
        spill = f"{task['out_prefix']}.sorted"
        with open(spill, "wb") as fh:
            fh.write(stream)
        return {"stream": spill, "runs": runs.tobytes(), "n_lines": n_lines,
                "bytes_in": 0, "bytes_out": len(stream)}
    raise ValueError(f"unknown pool task kind {kind!r}")
