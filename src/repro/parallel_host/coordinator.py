"""Dispatch, deterministic merge, and the per-stage oracles.

The coordinator owns the virtual side of the pool protocol.  Per run it
analyzes the program (S16/S20), detects gated regions, snapshots their
input files, and ships part tasks to the pool.  Results merge by part
*index* — never by arrival order — so completion order is irrelevant by
construction (the shuffle-injection tests drive this).  Squeeze seams
between tr parts are repaired at merge exactly the way the serial tr's
cross-chunk ``last_byte`` carry would have: a leading run of the
previous part's final kept byte collapses into it.

Oracles are the only objects the simulation ever sees.  Each stage of
an oracled pipeline gets a fresh oracle per execution; the oracle
validates every chunk the stage actually reads against the precomputed
stream (incremental memcmp over memoryviews) and hands back precomputed
output.  Any divergence — input changed since the snapshot, worker
crash, watchdog expiry, fault-corrupted buffer — kills the oracle
mid-stream and the stage's own code resumes with reconstructed carry
state.  Output mappings are prefix-stable, so the bytes already emitted
are exactly the serial bytes and the fallback is invisible.

Virtual-time identity needs no merging at all: every virtual op (read,
CPU charge, write, fault decision) still executes in the simulation in
the same order with the same arguments, so workers' virtual-time deltas
are zero *by construction* and the fault plan's op counters advance
identically at any ``--jobs``.  The coordinator still sums the
(zero-valued) deltas workers return — the protocol keeps the slot so a
future worker that *did* simulate would be caught by the equality gate.
"""

from __future__ import annotations

import os
import time
from array import array
from bisect import bisect_right
from typing import Optional

from .kernels import GRID_STEP, assemble_counts, tr_block
from .pool import PoolConfig, WorkerPool, _env_int, get_global_pool
from .regions import RegionPlan, detect_regions

PENDING, DISPATCHED, TR_READY, READY, FAILED = (
    "pending", "dispatched", "tr_ready", "ready", "failed")


class RegionState:
    def __init__(self, plan: RegionPlan, region_no: int):
        self.plan = plan
        self.no = region_no
        self.status = PENDING
        self.snapshot: bytes = b""
        self.in_spill: str = ""
        self.deadline: float = 0.0
        self.tr_task_ids: list[int] = []
        self.sort_task_ids: list[int] = []
        self.merge_task_id: Optional[int] = None
        #: seam-merged output stream + global grid per tr stage
        self.streams: list[bytes] = []
        self.grids: list[array] = []
        self.sorted_stream: bytes = b""
        self.run_ends: array = array("q")
        self.n_lines: int = 0
        self.host_s: float = 0.0
        #: single-part fast path: the lone part's final-stage spill is
        #: byte-identical to the merged stream (a first part never
        #: trims), so the sort wave can read it without a rewrite
        self.final_spill: Optional[str] = None
        #: fused tr+sort results (single-part regions): the tr wave's
        #: result dicts already carry the sort parts
        self.sort_results: Optional[list] = None

    @property
    def pre_sort_stream(self) -> bytes:
        return self.streams[-1] if self.streams else self.snapshot


class HostCoordinator:
    """One per Shell; shares the process-global worker pool."""

    def __init__(self, config: PoolConfig):
        self.config = config
        self.pool: Optional[WorkerPool] = None
        self._regions: dict[int, RegionState] = {}
        self._region_no = 0
        self._fs = None
        self.stats = {
            "regions_detected": 0,
            "regions_dispatched": 0,
            "regions_validated": 0,
            "regions_failed": 0,
            "oracle_hits": 0,
            "oracle_fallbacks": 0,
            "tasks": 0,
            "bytes_shipped": 0,
            "bytes_returned": 0,
            "worker_vt_delta": 0.0,
            "worker_fault_ops": 0,
        }

    # -- per-run lifecycle -------------------------------------------------

    def begin_run(self, program, fs, cwd: str) -> None:
        self._fs = fs
        self._regions = {}
        # marks make end_run apply per-run deltas to the metrics plane
        # while self.stats stays cumulative for ``jash stat``
        self._mark = dict(self.stats)
        try:
            from ..analysis import analyze_program
            from ..compiler.cost import StaticCosts

            analysis = analyze_program(program, fs=fs, cwd=cwd)
            try:
                hints = StaticCosts.from_analysis(analysis)
            except Exception:
                hints = None
            plans = detect_regions(program, analysis, fs, cwd,
                                   self.config.min_ship_bytes,
                                   self.config.jobs, static_hints=hints)
        except Exception:
            plans = []
        for plan in plans:
            state = RegionState(plan, self._region_no)
            self._region_no += 1
            self._regions[plan.key] = state
            self.stats["regions_detected"] += 1
            if not plan.deferred:
                self._dispatch(state)

    def end_run(self, kernel=None) -> None:
        """Merge worker-returned deltas into the run's planes: metrics
        counters through the registry (so ``total_updates`` witnesses
        them), fault-plan op deltas onto the plan, spans to the tracer."""
        metrics = getattr(kernel, "metrics", None) if kernel else None
        tracer = getattr(kernel, "tracer", None) if kernel else None
        faults = getattr(kernel, "faults", None) if kernel else None
        mark = getattr(self, "_mark", None) or {}
        delta = {k: v - mark.get(k, 0) for k, v in self.stats.items()}
        if faults is not None:
            # workers execute zero virtual ops, so the summed delta is
            # zero — aggregated here so a nonzero delta would surface
            # as a --jobs divergence instead of vanishing silently
            faults.ops += int(delta["worker_fault_ops"])
        if metrics is not None and delta["regions_dispatched"]:
            # aggregates only: which worker got which task is host
            # scheduling noise, and the registry's snapshots must stay
            # byte-identical across reruns.  The per-worker split is
            # host telemetry and lives in the ``jash stat`` pool section.
            for key in ("regions_dispatched", "regions_validated",
                        "regions_failed", "oracle_hits",
                        "oracle_fallbacks", "tasks", "bytes_shipped",
                        "bytes_returned"):
                if delta[key]:
                    metrics.counter(f"pool.{key}").inc(delta[key])
        if tracer is not None and self.pool is not None:
            now = getattr(kernel, "now", 0.0)
            for state in self._regions.values():
                if state.status == PENDING:
                    continue
                # no host wall times here: the trace stream, like the
                # metrics snapshot, must be byte-identical across reruns
                tracer.instant(
                    "pool", f"region{state.no}", now,
                    status=state.status, bytes=len(state.snapshot),
                    parts=len(state.tr_task_ids)
                    or len(state.sort_task_ids))
        self._regions = {}

    # -- dispatch ----------------------------------------------------------

    def _ensure_pool(self) -> WorkerPool:
        if self.pool is None:
            self.pool = get_global_pool(self.config)
        return self.pool

    def _n_parts(self) -> int:
        """How many parts a wave splits into.

        Capped at the host's core count, not just ``--jobs``: on a
        single-core host N concurrent workers only thrash each other's
        caches (measured ~2x slower than one worker over the same
        bytes), so extra parts cost wall time without buying
        parallelism.  ``JASH_POOL_PARTS`` overrides the cap — tests use
        it to force multi-part merges regardless of the machine."""
        forced = _env_int("JASH_POOL_PARTS", 0)
        if forced > 0:
            return max(1, min(forced, 8))
        cores = os.cpu_count() or 1
        return max(1, min(self.config.jobs, cores, 8))

    def _parts(self, total: int, single: bool) -> list[tuple[int, int]]:
        """Byte ranges for part tasks; cuts land on GRID_STEP boundaries
        so per-part grids concatenate into one global table."""
        jobs = self._n_parts()
        if single or jobs == 1 or total < 4 * GRID_STEP:
            return [(0, total)]
        step = total // jobs
        cuts = [0]
        for i in range(1, jobs):
            cut = (i * step) // GRID_STEP * GRID_STEP
            if cut > cuts[-1]:
                cuts.append(cut)
        cuts.append(total)
        return list(zip(cuts[:-1], cuts[1:]))

    def _line_parts(self, stream: bytes, spill: str) -> list[list]:
        """Line-aligned (path, a, b) segment lists over one spill."""
        total = len(stream)
        jobs = self._n_parts()
        if jobs == 1 or total < 1 << 16:
            return [[(spill, 0, total)]] if total else [[(spill, 0, 0)]]
        cuts = [0]
        for i in range(1, jobs):
            probe = (i * total) // jobs
            if probe <= cuts[-1]:
                continue
            nl = stream.find(b"\n", probe)
            if nl < 0 or nl + 1 >= total:
                break
            cuts.append(nl + 1)
        cuts.append(total)
        return [[(spill, a, b)] for a, b in zip(cuts[:-1], cuts[1:])]

    def _dispatch(self, state: RegionState) -> None:
        plan = state.plan
        pool = self._ensure_pool()
        try:
            state.snapshot = self._fs.read_bytes(plan.input_path)
        except Exception:
            state.status = FAILED
            self.stats["regions_failed"] += 1
            return
        state.in_spill = pool.spill_path(f"r{state.no}-in.bin")
        with open(state.in_spill, "wb") as fh:
            fh.write(state.snapshot)
        state.deadline = time.monotonic() + self.config.watchdog_s
        self.stats["regions_dispatched"] += 1
        self.stats["bytes_shipped"] += len(state.snapshot)
        chaos = getattr(self, "chaos", None)
        if plan.tr_chain:
            parts = self._parts(len(state.snapshot), plan.single_part)
            # one part + a sort stage: fuse both waves into one task
            fuse = len(parts) == 1 and plan.has_sort
            for k, (a, b) in enumerate(parts):
                task = {
                    "kind": "tr_sort_part" if fuse else "tr_part",
                    "in_path": state.in_spill,
                    "a": a, "b": b, "chain": plan.tr_chain,
                    "out_prefix": pool.spill_path(f"r{state.no}-p{k}"),
                }
                if fuse:
                    task["card_limit"] = self.config.card_limit
                if chaos and k == 0:
                    task["chaos"] = chaos
                state.tr_task_ids.append(pool.submit(task))
                self.stats["tasks"] += 1
        else:
            self._dispatch_sort(state, state.snapshot, state.in_spill,
                                chaos=chaos)
        state.status = DISPATCHED

    def _dispatch_sort(self, state: RegionState, stream: bytes,
                       spill: str, chaos=None) -> None:
        pool = self._ensure_pool()
        for k, segments in enumerate(self._line_parts(stream, spill)):
            task = {
                "kind": "sort_part", "segments": segments,
                "card_limit": self.config.card_limit,
                "out_prefix": pool.spill_path(f"r{state.no}-s{k}"),
            }
            if chaos and k == 0 and not state.tr_task_ids:
                task["chaos"] = chaos
            state.sort_task_ids.append(pool.submit(task))
            self.stats["tasks"] += 1

    # -- merge -------------------------------------------------------------

    def _fail(self, state: RegionState) -> None:
        if state.status != FAILED:
            state.status = FAILED
            self.stats["regions_failed"] += 1

    def _merge_tr(self, state: RegionState, results: list[dict]) -> bool:
        """Seam-merge per-part tr streams into one stream + global
        (input offset -> output offset) table per stage.  Part order is
        task-submission order regardless of completion order.

        A stage's input is the previous stage's seam-merged output.
        Workers computed stage k+1 from *pre-trim* stage-k parts, so a
        nonzero trim on a squeezing non-final stage would desynchronize
        them — detection forbids that shape (``single_part``), which
        makes every non-final seam trim exactly zero and part p's
        stage-k input base simply the sum of earlier parts' stage-(k-1)
        output lengths."""
        pool = self.pool
        plan = state.plan
        n_stages = len(plan.tr_chain)
        for result in results:
            if any(not pool.owns(p) for p in result["streams"]):
                return False
            state.host_s += result.get("host_s", 0.0)
            self.stats["bytes_returned"] += result.get("bytes_out", 0)
            self.stats["worker_vt_delta"] += result.get("vt_delta", 0.0)
            self.stats["worker_fault_ops"] += result.get("fault_ops", 0)
        for stage_i in range(n_stages):
            spec = plan.tr_chain[stage_i]
            squeeze = spec["squeeze"]
            merged: list[bytes] = []
            in_offs = array("q", [0])
            out_offs = array("q", [0])
            in_total = 0
            out_total = 0
            prev_last = -1
            for result in results:
                with open(result["streams"][stage_i], "rb") as fh:
                    part = fh.read()
                if len(part) != result["lens"][stage_i]:
                    return False
                part_in_len = (result["b"] - result["a"] if stage_i == 0
                               else result["lens"][stage_i - 1])
                trim = 0
                if squeeze and prev_last >= 0 and prev_last in squeeze:
                    while trim < len(part) and part[trim] == prev_last:
                        trim += 1
                part_grid = array("q")
                part_grid.frombytes(result["grids"][stage_i])
                # entry j sits at local input offset min(j*GRID_STEP,
                # part_in_len); entry 0 duplicates the previous part's
                # closing boundary
                for j in range(1, len(part_grid)):
                    in_offs.append(min(j * GRID_STEP, part_in_len)
                                   + in_total)
                    out_offs.append(max(part_grid[j] - trim, 0)
                                    + out_total)
                part = part[trim:]
                merged.append(part)
                in_total += part_in_len
                out_total += len(part)
                if part:
                    prev_last = part[-1]
            state.streams.append(b"".join(merged))
            state.grids.append((in_offs, out_offs))
        if len(results) == 1 and n_stages:
            state.final_spill = results[0]["streams"][n_stages - 1]
        return True

    def _advance(self, state: RegionState) -> bool:
        """Drive a region's merge pipeline forward after task waves."""
        pool = self.pool
        plan = state.plan
        if state.status == DISPATCHED and state.tr_task_ids:
            results, failed = pool.wait_for(state.tr_task_ids,
                                            state.deadline)
            if results is None:
                self._fail(state)
                return False
            if not self._merge_tr(state, results):
                self._fail(state)
                return False
            state.status = TR_READY
            if plan.has_sort:
                if results and "part" in results[0]:
                    state.sort_results = results
                    return True
                final = state.streams[-1]
                spill = state.final_spill
                if spill is None:
                    spill = pool.spill_path(f"r{state.no}-final.bin")
                    with open(spill, "wb") as fh:
                        fh.write(final)
                self._dispatch_sort(state, final, spill)
            else:
                state.status = READY
                self.stats["regions_validated"] += 1
            return True
        if state.status == DISPATCHED and not state.tr_task_ids:
            state.status = TR_READY
            return True
        if state.status == TR_READY and plan.has_sort:
            fused = state.sort_results is not None
            if fused:
                results = state.sort_results
            else:
                results, failed = pool.wait_for(state.sort_task_ids,
                                                state.deadline)
            if results is None:
                self._fail(state)
                return False
            parts = []
            all_counts = True
            total_lines = 0
            for result in results:
                if not fused:  # fused results were accounted in _merge_tr
                    state.host_s += result.get("host_s", 0.0)
                    self.stats["worker_vt_delta"] += result.get(
                        "vt_delta", 0.0)
                    self.stats["worker_fault_ops"] += result.get(
                        "fault_ops", 0)
                kind, payload, m = result["part"]
                total_lines += m
                if kind == "spill":
                    if not pool.owns(payload):
                        self._fail(state)
                        return False
                    all_counts = False
                parts.append(result["part"])
            if all_counts:
                counts: dict[bytes, int] = {}
                for _, payload, _m in parts:
                    for word, count in payload.items():
                        counts[word] = counts.get(word, 0) + count
                stream, runs, n_lines = assemble_counts(
                    counts, plan.sort_reverse, plan.sort_unique,
                    total_lines)
                state.sorted_stream = stream
                state.run_ends = runs
                state.n_lines = n_lines
                state.status = READY
                self.stats["regions_validated"] += 1
                self.stats["bytes_returned"] += len(stream)
                return True
            task = {
                "kind": "sort_merge", "parts": parts,
                "reverse": plan.sort_reverse, "unique": plan.sort_unique,
                "out_prefix": pool.spill_path(f"r{state.no}-m"),
            }
            state.merge_task_id = pool.submit(task)
            self.stats["tasks"] += 1
            results, failed = pool.wait_for([state.merge_task_id],
                                            state.deadline)
            if results is None or not pool.owns(results[0]["stream"]):
                self._fail(state)
                return False
            result = results[0]
            state.host_s += result.get("host_s", 0.0)
            with open(result["stream"], "rb") as fh:
                state.sorted_stream = fh.read()
            state.run_ends = array("q")
            state.run_ends.frombytes(result["runs"])
            state.n_lines = result["n_lines"]
            state.status = READY
            self.stats["regions_validated"] += 1
            self.stats["bytes_returned"] += len(state.sorted_stream)
            return True
        return state.status in (READY, TR_READY)

    def require(self, state: RegionState, level: str) -> bool:
        """Block (host wall only — virtual time does not advance) until
        the region reaches ``level``, its watchdog expires, or a task
        fails.  False means the caller must fall back in-process."""
        want_ready = (level == "sorted")
        while True:
            if state.status == FAILED:
                return False
            if state.status == READY:
                return True
            if state.status == TR_READY and not want_ready:
                return True
            if state.status == PENDING:
                self._dispatch(state)
                if state.status == FAILED:
                    return False
                continue
            if not self._advance(state):
                return False

    # -- oracle hand-out ---------------------------------------------------

    def oracles_for(self, pipeline_node) -> Optional[list]:
        """Fresh per-execution oracles aligned to the pipeline's stages,
        or None when the statement carries no dispatched region."""
        state = self._regions.get(id(pipeline_node))
        if state is None:
            return None
        if state.status == PENDING:
            self._dispatch(state)
        if state.status == FAILED:
            return None
        oracles: list = []
        for stage in state.plan.stages:
            if stage.kind == "tr":
                oracles.append(TrOracle(self, state, stage.tr_index))
            elif stage.kind == "sort":
                oracles.append(SortOracle(self, state))
            elif stage.kind == "uniq":
                oracles.append(UniqOracle(self, state))
            else:
                oracles.append(None)
        return oracles

    def oracle_for_simple(self, node):
        """The single-stage (bare ``sort FILE``) variant."""
        oracles = self.oracles_for(node)
        if not oracles:
            return None
        return oracles[0]


# ---------------------------------------------------------------------------
# stage oracles
# ---------------------------------------------------------------------------


class _OracleBase:
    kind = ""

    def __init__(self, coord: HostCoordinator, state: RegionState):
        self.coord = coord
        self.state = state
        self.dead = False
        self.armed = False

    def _kill(self) -> None:
        if not self.dead:
            self.dead = True
            self.coord.stats["oracle_fallbacks"] += 1

    def _score(self) -> None:
        self.coord.stats["oracle_hits"] += 1


class TrOracle(_OracleBase):
    """Validates a tr stage's input chunks and emits precomputed output
    slices.  Prefix-stable: a kill after N chunks leaves the stage in
    exactly the serial state (``last_emitted_byte`` is the carry)."""

    kind = "tr"

    def __init__(self, coord, state, tr_index: int):
        super().__init__(coord, state)
        self.tr_index = tr_index
        self.in_pos = 0
        self.out_pos = 0
        self.in_view = b""
        self.out_view = b""
        self.in_offs: array = array("q")
        self.out_offs: array = array("q")
        self.spec: dict = {}

    def _arm(self) -> bool:
        if not self.coord.require(self.state, "tr"):
            return False
        state = self.state
        self.in_view = (state.snapshot if self.tr_index == 0
                        else state.streams[self.tr_index - 1])
        self.out_view = state.streams[self.tr_index]
        self.in_offs, self.out_offs = state.grids[self.tr_index]
        self.spec = state.plan.tr_chain[self.tr_index]
        self.armed = True
        return True

    def _outoff(self, b: int) -> int:
        """Output offset for input offset ``b``: nearest table boundary
        at or below ``b``, plus a <= GRID_STEP remainder transformed
        with the carry byte the merged stream holds at that boundary."""
        if b >= len(self.in_view):
            return len(self.out_view)
        j = bisect_right(self.in_offs, b) - 1
        base_in = self.in_offs[j]
        base_out = self.out_offs[j]
        carry = self.out_view[base_out - 1] if base_out > 0 else -1
        block, _ = tr_block(self.in_view[base_in:b], self.spec, carry)
        return base_out + len(block)

    def try_chunk(self, data: bytes) -> Optional[bytes]:
        """The precomputed output for this input chunk, or None — after
        which the caller must transform this chunk (and the rest of the
        stream) itself, seeded by :meth:`last_emitted_byte`."""
        if self.dead:
            return None
        if not self.armed and not self._arm():
            self._kill()
            return None
        end = self.in_pos + len(data)
        if (end > len(self.in_view)
                or self.in_view[self.in_pos : end] != data):
            self._kill()
            return None
        out_end = self._outoff(end)
        out = self.out_view[self.out_pos : out_end]
        self.in_pos = end
        self.out_pos = out_end
        return out

    def last_emitted_byte(self) -> int:
        return self.out_view[self.out_pos - 1] if self.out_pos else -1

    def finish(self) -> None:
        if not self.dead and self.armed:
            self._score()


class SortOracle(_OracleBase):
    """Validates the pre-sort stream chunk by chunk; at EOF hands back
    the precomputed sorted stream and line count.  Killing it costs
    nothing: the serial path already retains the raw chunks."""

    kind = "sort"

    def __init__(self, coord, state):
        super().__init__(coord, state)
        self.in_pos = 0

    def feed(self, data: bytes) -> None:
        if self.dead:
            return
        if not self.armed:
            if not self.coord.require(self.state, "tr"):
                self._kill()
                return
            self.armed = True
        view = self.state.pre_sort_stream
        end = self.in_pos + len(data)
        if end > len(view) or view[self.in_pos : end] != data:
            self._kill()
            return
        self.in_pos = end

    def finish(self) -> Optional[tuple[bytes, int]]:
        """(sorted stream, total line count) — None means fall back."""
        if self.dead:
            return None
        if self.in_pos != len(self.state.pre_sort_stream):
            self._kill()
            return None
        if not self.coord.require(self.state, "sorted"):
            self._kill()
            return None
        self._score()
        return self.state.sorted_stream, self.state.n_lines


class UniqOracle(_OracleBase):
    """Replays uniq's per-blob group keys from the sort run table."""

    kind = "uniq"

    def __init__(self, coord, state):
        super().__init__(coord, state)
        self.in_pos = 0
        self.run_idx = 0

    def _word(self, idx: int) -> bytes:
        stream = self.state.sorted_stream
        start = self.state.run_ends[idx - 1] if idx else 0
        nl = stream.index(b"\n", start)
        return stream[start:nl]

    def feed_blob(self, blob: bytes) -> Optional[list[bytes]]:
        """The groupby keys for one complete-lines blob, or None (fall
        back to computing them; subsequent blobs also fall back)."""
        if self.dead:
            return None
        if not self.armed:
            if not self.coord.require(self.state, "sorted"):
                self._kill()
                return None
            self.armed = True
        state = self.state
        a = self.in_pos
        b = a + len(blob)
        stream = state.sorted_stream
        if b > len(stream) or stream[a:b] != blob:
            self._kill()
            return None
        runs = state.run_ends
        while self.run_idx < len(runs) and runs[self.run_idx] <= a:
            self.run_idx += 1
        keys: list[bytes] = []
        j = self.run_idx
        while j < len(runs):
            keys.append(self._word(j))
            if runs[j] >= b:
                break
            j += 1
        self.in_pos = b
        return keys

    def finish(self) -> None:
        if not self.dead and self.armed:
            self._score()


def render_pool_stats(stats: dict, worker_stats: dict) -> str:
    """The ``jash stat`` pool section."""
    lines = ["", "host pool"]
    lines.append(
        f"  regions: {stats['regions_dispatched']} dispatched, "
        f"{stats['regions_validated']} validated, "
        f"{stats['regions_failed']} failed; "
        f"oracle hits {stats['oracle_hits']}, "
        f"fallbacks {stats['oracle_fallbacks']}")
    lines.append(
        f"  bytes: {stats['bytes_shipped']} shipped, "
        f"{stats['bytes_returned']} returned; "
        f"tasks {stats['tasks']}")
    for wid, ws in sorted(worker_stats.items()):
        lines.append(
            f"  worker {wid}: {ws['tasks']} task(s), "
            f"{ws['host_s']:.3f}s host, {ws['bytes_in']}B in, "
            f"{ws['bytes_out']}B out, {ws['crashes']} crash(es)")
    return "\n".join(lines) + "\n"
