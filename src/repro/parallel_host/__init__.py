"""S21 — the multi-core execution plane.

The virtual OS is a single-process discrete-event simulation: every
virtual op (reads, CPU charges, writes, faults) executes in the
coordinator process, which is what makes ``--jobs N`` trivially
byte-identical in *virtual* time.  What a worker pool can buy is the
*host* cost of the data plane: the byte crunching command kernels do
(tr translation tables, sort comparisons, uniq run collapse) over real
buffers.

``repro.parallel_host`` ships certificate-gated dataflow regions to a
persistent pool of forked workers.  Workers compute the byte streams a
region's stages *will* produce from a snapshot of the input subtree;
back in the simulation, per-stage oracles validate every chunk the
stage actually sees against the precomputed stream (an incremental
memcmp) and emit precomputed output slices instead of recomputing
them.  A mismatch at any point — the file changed between snapshot and
use, a fault corrupted a buffer, a worker crashed or timed out —
disarms the oracle mid-stream and the stage falls back to its ordinary
in-process code with reconstructed carry state.  Because the stream
mapping is prefix-stable, every byte emitted before the mismatch is
exactly what the serial path would have emitted, so the fallback is
seamless and ``--jobs`` can never change observable behaviour.

Layering:

* :mod:`.kernels`     — worker-side columnar compute (numpy-gated with
                        pure-Python fallbacks)
* :mod:`.pool`        — forked worker processes, pipes, watchdog,
                        crash retry, per-worker accounting
* :mod:`.regions`     — static region detection + S16/S20 gating
* :mod:`.coordinator` — dispatch, deterministic merge, stage oracles
"""

from .coordinator import HostCoordinator, render_pool_stats
from .pool import PoolConfig, shutdown_global_pool
from .regions import detect_regions, eligible_region_count

__all__ = [
    "HostCoordinator",
    "PoolConfig",
    "detect_regions",
    "eligible_region_count",
    "render_pool_stats",
    "shutdown_global_pool",
]
