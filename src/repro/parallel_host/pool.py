"""The persistent forked worker pool.

One pool serves every Shell in the process (workers fork lazily on the
first dispatched region, so ``--jobs N`` costs nothing until a region
actually ships).  Tasks and results travel over pipes; large payloads
travel as spill files under the pool's private scratch directory —
which doubles as the host-level write set: a worker that writes
anywhere else has broken the snapshot protocol, and the coordinator
validates every returned path against the scratch root before touching
it.

Failure model: a worker that raises returns an error result; a worker
that dies (crash, chaos injection, kill) trips its process sentinel in
``connection.wait``.  In-flight tasks of a dead worker are resubmitted
up to ``RetryPolicy.max_retries`` times to a respawned worker; a task
that exhausts the budget (or outlives the watchdog deadline) fails the
whole region, which the coordinator then degrades to in-process
execution — the same ladder supervision uses for crashed rounds.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Callable, Optional

from ..distributed.retry import RetryPolicy

DEFAULT_MIN_SHIP = 4 << 20  # bytes: below this a region never ships


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


@dataclass
class PoolConfig:
    jobs: int = 1
    #: volume gate floor (env JASH_POOL_MIN_BYTES overrides; difftest
    #: campaigns set 0 so tiny corpora still exercise the machinery)
    min_ship_bytes: int = field(
        default_factory=lambda: _env_int("JASH_POOL_MIN_BYTES",
                                         DEFAULT_MIN_SHIP))
    #: host-wall watchdog + resubmit budget for worker tasks
    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_retries=1, timeout_s=60.0))
    card_limit: int = 4096

    @property
    def watchdog_s(self) -> float:
        return self.policy.timeout_s if self.policy.timeout_s else 60.0


def _worker_main(conn, worker_id: int) -> None:  # pragma: no cover - subprocess
    from . import kernels

    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        if task is None:
            os._exit(0)
        t0 = time.perf_counter()
        try:
            result = kernels.run_task(task)
            result["ok"] = True
        except BaseException as exc:  # noqa: BLE001 - reported, not raised
            result = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        result["task_id"] = task["task_id"]
        result["worker"] = worker_id
        result["host_s"] = time.perf_counter() - t0
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            os._exit(1)


class _Worker:
    def __init__(self, ctx, worker_id: int):
        self.id = worker_id
        parent, child = ctx.Pipe()
        self.conn = parent
        self.proc = ctx.Process(target=_worker_main, args=(child, worker_id),
                                daemon=True, name=f"jash-pool-{worker_id}")
        self.proc.start()
        child.close()
        self.inflight: dict[int, dict] = {}  # task_id -> task


class WorkerPool:
    """``jobs`` forked workers with crash retry and accounting."""

    def __init__(self, config: PoolConfig):
        self.config = config
        self.scratch = tempfile.mkdtemp(prefix="jash-pool-")
        self._ctx = multiprocessing.get_context("fork")
        self._workers: list[_Worker] = []
        self._next_task = 0
        self._next_worker_id = 0
        self._results: dict[int, dict] = {}
        self._failed: set[int] = set()
        self._attempts: dict[int, int] = {}
        self._closed = False
        #: per-worker accounting surfaced in ``jash stat``
        self.worker_stats: dict[int, dict] = {}
        #: test hook — reorders each batch of ready results before the
        #: coordinator consumes them (adversarial completion order)
        self.reorder_hook: Optional[Callable[[list], list]] = None
        shuffle = os.environ.get("JASH_POOL_SHUFFLE")
        if shuffle:
            rng = random.Random(int(shuffle))
            self.reorder_hook = lambda batch: rng.sample(batch, len(batch))

    # -- lifecycle --------------------------------------------------------

    def _ensure_started(self) -> None:
        # workers fork lazily, one at a time: forking duplicates the
        # parent's page tables, so idle workers beyond the number of
        # concurrent tasks are pure startup cost (see _dispatch)
        if not self._workers:
            self._spawn_worker()

    def _spawn_worker(self) -> _Worker:
        worker = _Worker(self._ctx, self._next_worker_id)
        self._next_worker_id += 1
        self._workers.append(worker)
        self.worker_stats[worker.id] = {
            "tasks": 0, "host_s": 0.0, "bytes_in": 0, "bytes_out": 0,
            "crashes": 0,
        }
        return worker

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
            worker.conn.close()
        self._workers.clear()
        shutil.rmtree(self.scratch, ignore_errors=True)

    # -- task plane -------------------------------------------------------

    def spill_path(self, stem: str) -> str:
        return os.path.join(self.scratch, stem)

    def owns(self, path: str) -> bool:
        """Scratch-root containment check for returned spill paths."""
        return os.path.realpath(path).startswith(
            os.path.realpath(self.scratch) + os.sep)

    def submit(self, task: dict) -> int:
        self._ensure_started()
        task_id = self._next_task
        self._next_task += 1
        task = dict(task)
        task["task_id"] = task_id
        self._attempts[task_id] = 1
        self._dispatch(task)
        return task_id

    def _dispatch(self, task: dict) -> None:
        if (len(self._workers) < max(1, self.config.jobs)
                and all(w.inflight for w in self._workers)):
            self._spawn_worker()
        worker = min(self._workers, key=lambda w: len(w.inflight))
        worker.inflight[task["task_id"]] = task
        try:
            worker.conn.send(task)
        except (BrokenPipeError, OSError):
            self._reap(worker)

    def _reap(self, worker: _Worker) -> None:
        """A worker died: respawn and resubmit its in-flight tasks, or
        fail those whose retry budget is spent."""
        if worker in self._workers:
            self._workers.remove(worker)
        self.worker_stats[worker.id]["crashes"] += 1
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.terminate()
        orphans = list(worker.inflight.values())
        worker.inflight.clear()
        self._ensure_started()
        policy = self.config.policy
        for task in orphans:
            tid = task["task_id"]
            attempts = self._attempts.get(tid, 1)
            # re-execution number is 1-based: a task attempted once may
            # start re-execution #1
            if policy.should_retry(attempts):
                self._attempts[tid] = attempts + 1
                task.pop("chaos", None)  # a chaos crash only fires once
                self._dispatch(task)
            else:
                self._failed.add(tid)

    def _drain_ready(self, timeout: float) -> bool:
        """Collect any ready results; True if something arrived."""
        waitables: list = []
        by_conn: dict = {}
        by_sentinel: dict = {}
        for worker in self._workers:
            waitables.append(worker.conn)
            by_conn[worker.conn] = worker
            waitables.append(worker.proc.sentinel)
            by_sentinel[worker.proc.sentinel] = worker
        if not waitables:
            return False
        ready = connection.wait(waitables, timeout)
        if not ready:
            return False
        batch: list[dict] = []
        dead: list[_Worker] = []
        for item in ready:
            worker = by_conn.get(item)
            if worker is not None:
                try:
                    while worker.conn.poll():
                        batch.append(worker.conn.recv())
                except (EOFError, OSError):
                    dead.append(worker)
                continue
            dead.append(by_sentinel[item])
        if self.reorder_hook is not None and len(batch) > 1:
            batch = self.reorder_hook(list(batch))
        for result in batch:
            self._accept(result)
        for worker in dead:
            if worker in self._workers and not worker.proc.is_alive():
                self._reap(worker)
        return bool(batch) or bool(dead)

    def _accept(self, result: dict) -> None:
        task_id = result["task_id"]
        for worker in self._workers:
            task = worker.inflight.pop(task_id, None)
            if task is not None:
                break
        else:
            return  # stale duplicate (e.g. post-timeout arrival)
        stats = self.worker_stats.setdefault(
            result["worker"],
            {"tasks": 0, "host_s": 0.0, "bytes_in": 0, "bytes_out": 0,
             "crashes": 0})
        stats["tasks"] += 1
        stats["host_s"] += result.get("host_s", 0.0)
        stats["bytes_in"] += result.get("bytes_in", 0)
        stats["bytes_out"] += result.get("bytes_out", 0)
        if result.get("ok"):
            self._results[task_id] = result
        else:
            self._failed.add(task_id)

    def wait_for(self, task_ids: list[int], deadline: float):
        """Block until every task finished or ``deadline`` (host clock,
        ``time.monotonic``) passes.  Returns (results | None, failed)."""
        pending = [t for t in task_ids
                   if t not in self._results and t not in self._failed]
        while pending:
            if any(t in self._failed for t in task_ids):
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None, {t for t in task_ids if t in self._failed}
            self._drain_ready(min(remaining, 0.25))
            pending = [t for t in task_ids
                       if t not in self._results and t not in self._failed]
        failed = {t for t in task_ids if t in self._failed}
        if failed:
            return None, failed
        return [self._results[t] for t in task_ids], set()


_GLOBAL_POOL: Optional[WorkerPool] = None


def get_global_pool(config: PoolConfig) -> WorkerPool:
    """The process-wide pool, grown to at least ``config.jobs`` workers."""
    global _GLOBAL_POOL
    if _GLOBAL_POOL is None or _GLOBAL_POOL._closed:
        _GLOBAL_POOL = WorkerPool(config)
        atexit.register(shutdown_global_pool)
    elif config.jobs > _GLOBAL_POOL.config.jobs:
        # raising the budget is enough: workers fork on demand
        _GLOBAL_POOL.config.jobs = config.jobs
    return _GLOBAL_POOL


def shutdown_global_pool() -> None:
    global _GLOBAL_POOL
    if _GLOBAL_POOL is not None:
        _GLOBAL_POOL.close()
        _GLOBAL_POOL = None
