"""Static region detection and gating for the host pool.

A *region* is a top-level statement the pool can precompute: a pipeline
of literal-argv stages over a single input file whose byte streams are
fully determined by a snapshot of that file —

    cat FILE | tr ... [| tr ...] [| sort [-r|-u] [| uniq]] [> OUT]
    cat FILE | sort [-r|-u] [| uniq] [> OUT]
    sort [-r|-u] FILE [| uniq] [> OUT]

Three gates stand between a matched shape and a dispatch:

* **S16 certificate** — the statement must carry a verified
  ``safe_parallel`` (or stronger) certificate; an uncertified region is
  never shipped, which is what the JS2260 lint surfaces.
* **S20 volume** — the certified byte volume (the snapshot size,
  tightened by the abstract interpreter's static bound when one exists)
  must amortize the per-core IPC cost (:func:`estimate_host_ship`).
  ``min_ship_bytes == 0`` forces shipping — the difftest/CI override
  that exercises the machinery on tiny corpora.
* **write set** — a trailing ``> OUT`` redirect must be covered by the
  statement's declared write set; any statement effect the certificate
  did not declare vetoes the dispatch.

Detection never decides correctness — the oracles' chunk validation
does — so a too-eager match costs wasted worker time, never wrong
bytes.  Detection *does* decide prefetch timing: a region whose input
may be written by an earlier statement is dispatched lazily at
statement start instead of at run start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.certificates import SAFE_PARALLEL, SAFE_REORDER
from ..analysis.paths import literal, may_alias
from ..commands.base import UsageError, parse_flags
from ..commands.filters import _tr_plan
from ..parser.ast_nodes import (
    CommandList,
    Pipeline,
    SimpleCommand,
    Word,
)


@dataclass
class StagePlan:
    kind: str                     # "cat" | "tr" | "sort" | "uniq"
    tr_index: int = -1            # index into the region's tr chain
    reverse: bool = False
    unique: bool = False


@dataclass
class RegionPlan:
    node: object                  # the Pipeline / SimpleCommand AST node
    stages: list                  # StagePlan per pipeline stage
    tr_chain: list                # tr spec dicts, pipeline order
    input_path: str               # resolved virtual path of the source
    text: str                     # unparsed region (cert/report key)
    sort_reverse: bool = False
    sort_unique: bool = False
    has_sort: bool = False
    has_uniq: bool = False
    #: an early tr stage squeezes: seams between parts are not locally
    #: repairable, so the region ships as a single part
    single_part: bool = False
    #: snapshot at statement start instead of run start (an earlier
    #: statement may write the input)
    deferred: bool = False
    cert_verdict: str = ""
    nbytes: int = 0

    @property
    def key(self) -> int:
        return id(self.node)


def _literal_argv(cmd: SimpleCommand) -> Optional[list[str]]:
    if cmd.assigns or not cmd.words:
        return None
    argv = []
    for word in cmd.words:
        if not isinstance(word, Word) or not word.is_literal():
            return None
        argv.append(word.literal_value())
    return argv


def _tr_spec(argv: list[str]) -> Optional[dict]:
    try:
        opts, operands = parse_flags(argv[1:], "cCsd")
        delete_chars, table, squeeze_set, _ = _tr_plan(
            tuple(operands),
            bool(opts.get("c") or opts.get("C")),
            bool(opts.get("s")),
            bool(opts.get("d")),
        )
    except Exception:
        return None
    return {"delete": delete_chars, "table": table, "squeeze": squeeze_set}


def _redirects_ok(cmds: list[SimpleCommand]) -> bool:
    """Only a trailing stdout redirect on the last stage is allowed."""
    for i, cmd in enumerate(cmds):
        reds = cmd.redirects
        if not reds:
            continue
        if i != len(cmds) - 1 or len(reds) > 1:
            return False
        red = reds[0]
        if red.op not in (">", ">>") or red.default_fd() != 1:
            return False
        if not isinstance(red.target, Word) or not red.target.is_literal():
            return False
    return True


def match_region(node) -> Optional[RegionPlan]:
    """Match one statement node against the supported region shapes."""
    if isinstance(node, Pipeline):
        if node.negated:
            return None
        cmds = list(node.commands)
    elif isinstance(node, SimpleCommand):
        cmds = [node]
    else:
        return None
    if not 1 <= len(cmds) <= 5:
        return None
    if not all(isinstance(c, SimpleCommand) for c in cmds):
        return None
    if not _redirects_ok(cmds):
        return None
    argvs = [_literal_argv(c) for c in cmds]
    if any(a is None for a in argvs):
        return None

    stages: list[StagePlan] = []
    tr_chain: list[dict] = []
    input_path = None
    i = 0
    # -- source stage ------------------------------------------------------
    head = argvs[0]
    if head[0] == "cat":
        if len(head) != 2 or head[1] == "-" or head[1].startswith("-"):
            return None
        input_path = head[1]
        stages.append(StagePlan("cat"))
        i = 1
    elif head[0] != "sort":
        return None
    # -- tr chain ----------------------------------------------------------
    while i < len(cmds) and argvs[i][0] == "tr":
        if len(tr_chain) == 2:
            return None
        spec = _tr_spec(argvs[i])
        if spec is None:
            return None
        tr_chain.append(spec)
        stages.append(StagePlan("tr", tr_index=len(tr_chain) - 1))
        i += 1
    # -- sort [+ uniq] -----------------------------------------------------
    has_sort = has_uniq = False
    reverse = unique = False
    if i < len(cmds) and argvs[i][0] == "sort":
        try:
            opts, operands = parse_flags(argvs[i][1:], "rnumcf",
                                         with_value="kto")
        except UsageError:
            return None
        if set(opts) - {"r", "u"}:
            return None
        if i == 0:
            if len(operands) != 1 or operands[0] == "-" :
                return None
            input_path = operands[0]
        elif operands:
            return None
        reverse, unique = bool(opts.get("r")), bool(opts.get("u"))
        has_sort = True
        stages.append(StagePlan("sort", reverse=reverse, unique=unique))
        i += 1
        if i < len(cmds) and argvs[i] == ["uniq"]:
            has_uniq = True
            stages.append(StagePlan("uniq"))
            i += 1
    if i != len(cmds):
        return None
    if input_path is None or (not tr_chain and not has_sort):
        return None
    # squeeze seams between parts are only locally repairable on the
    # last tr stage; an earlier squeezing stage forces one part
    single_part = any(s["squeeze"] for s in tr_chain[:-1])
    return RegionPlan(node=node, stages=stages, tr_chain=tr_chain,
                      input_path=input_path, text="",
                      sort_reverse=reverse, sort_unique=unique,
                      has_sort=has_sort, has_uniq=has_uniq,
                      single_part=single_part)


def _statement_nodes(program) -> list:
    """(node, is_async) for each top-level statement, in program order
    — the same walk order ``analyze_program`` reports statements in."""
    items = []
    if isinstance(program, CommandList):
        for item in program.items:
            items.append((item.command, item.is_async))
    else:
        items.append((program, False))
    return items


def detect_regions(program, analysis, fs, cwd: str,
                   min_ship_bytes: int, jobs: int,
                   static_hints=None, observed=None) -> list[RegionPlan]:
    """All certificate- and volume-gated regions of ``program``."""
    from ..compiler.cost import estimate_host_ship
    from ..parser.unparse import unparse
    from ..vos.fs import normalize

    regions: list[RegionPlan] = []
    statements = _statement_nodes(program)
    reports = analysis.statements if analysis is not None else []
    aligned = len(reports) == len(statements)
    for idx, (node, is_async) in enumerate(statements):
        if is_async:
            continue
        plan = match_region(node)
        if plan is None:
            continue
        cert = (analysis.certificates.get(id(node))
                if analysis is not None else None)
        if cert is None or cert.verdict not in (SAFE_PARALLEL, SAFE_REORDER):
            continue
        if not cert.verify():
            continue
        plan.cert_verdict = cert.verdict
        plan.text = cert.node_text or unparse(node)
        # write-set validation: a trailing redirect the certificate's
        # statement effects never declared means the analysis and the
        # region disagree about the write set — do not ship
        last = (node.commands[-1] if isinstance(node, Pipeline) else node)
        if last.redirects:
            target = last.redirects[0].target.literal_value()
            declared = (reports[idx].summary.writes if aligned else set())
            if not any(may_alias(literal(target), w) for w in declared):
                continue
        plan.input_path = normalize(plan.input_path, cwd)
        if not fs.exists(plan.input_path):
            continue
        plan.nbytes = fs.size(plan.input_path)
        ship = estimate_host_ship(
            plan.nbytes, jobs, stages=len(plan.stages),
            static_hints=static_hints, region_text=plan.text,
            observed=observed, min_ship_bytes=min_ship_bytes)
        # min_ship_bytes == 0 is the explicit "always ship" override
        if not ship.worthwhile and min_ship_bytes > 0:
            continue
        if min_ship_bytes > 0 and plan.nbytes < min_ship_bytes:
            continue
        # prefetch timing: defer the snapshot when any earlier
        # statement may write (or has unknown effects on) the input
        input_ap = literal(plan.input_path)
        for report in (reports[:idx] if aligned else reports):
            summary = report.summary
            if summary.opaque or any(may_alias(input_ap, w)
                                     for w in summary.writes):
                plan.deferred = True
                break
        if not aligned:
            plan.deferred = True
        regions.append(plan)
    return regions


def eligible_region_count(program, analysis) -> tuple[int, int]:
    """(matched shapes, certificate-cleared shapes) — the JS2260 input."""
    matched = cleared = 0
    for node, is_async in _statement_nodes(program):
        if is_async:
            continue
        plan = match_region(node)
        if plan is None:
            continue
        matched += 1
        cert = (analysis.certificates.get(id(node))
                if analysis is not None else None)
        if cert is not None and cert.verdict in (SAFE_PARALLEL, SAFE_REORDER):
            cleared += 1
    return matched, cleared
