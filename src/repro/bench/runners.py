"""Engine runners and the record-loop baseline for the bench suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..commands.base import PROC_STARTUP
from ..compiler import PashConfig, PashOptimizer
from ..jit import JashConfig, JashOptimizer
from ..shell import RunResult, Shell
from ..vos.machines import MachineSpec

ENGINES = ("bash", "pash", "jash")


@dataclass
class EngineRun:
    engine: str
    machine: str
    result: RunResult
    optimizer: object = None
    shell: object = None  # the Shell (and its fs) the run executed on
    tracer: object = None  # repro.obs.Tracer, when the run was traced

    @property
    def elapsed(self) -> float:
        return self.result.elapsed

    def metrics(self) -> Optional[dict]:
        """Machine-readable resource metrics (ResourceAccounting.to_dict),
        or None for untraced runs."""
        if self.tracer is None:
            return None
        return self.tracer.accounting.to_dict()


def make_engine(engine: str, pash_width: int = 8):
    """The optimizer hook (or None) implementing an engine."""
    if engine == "bash":
        return None
    if engine == "pash":
        return PashOptimizer(PashConfig(width=pash_width))
    if engine == "jash":
        return JashOptimizer()
    raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")


def run_engine(engine: str, script: str, machine: MachineSpec,
               files: Optional[dict[str, bytes]] = None,
               args: Optional[list[str]] = None,
               env: Optional[dict[str, str]] = None,
               pash_width: int = 8,
               tracer=None) -> EngineRun:
    """One fresh machine, one engine, one script."""
    optimizer = make_engine(engine, pash_width)
    shell = Shell(machine, optimizer=optimizer, tracer=tracer)
    for path, data in (files or {}).items():
        shell.fs.write_bytes(path, data)
    result = shell.run(script, args=args, env=env)
    return EngineRun(engine, machine.name, result, optimizer, shell, tracer)


def run_matrix(script: str, machines: dict[str, MachineSpec],
               engines: tuple[str, ...] = ENGINES,
               files: Optional[dict[str, bytes]] = None,
               args: Optional[list[str]] = None,
               env: Optional[dict[str, str]] = None,
               pash_width: int = 8) -> dict[tuple[str, str], EngineRun]:
    """engine × machine grid of runs, fresh machine each."""
    out: dict[tuple[str, str], EngineRun] = {}
    for mname, machine in machines.items():
        for engine in engines:
            out[(engine, mname)] = run_engine(
                engine, script, machine, files=files, args=args, env=env,
                pash_width=pash_width,
            )
    return out


def run_record_loop(source: str, data: bytes, machine: MachineSpec,
                    cpu_per_line: float = 1.1e-6) -> tuple[object, float]:
    """Run a record-at-a-time program (the 'Java-equivalent' baseline of
    §2.1) over ``data`` on the vOS, charging per-record CPU comparable
    to a JVM record loop plus the input IO.

    Returns (program result, virtual seconds).
    """
    namespace: dict = {}
    exec(compile(source, "<record-loop>", "exec"), namespace)
    run = namespace["run"]

    kernel = machine.make_kernel()
    kernel.main_node.fs.write_bytes("/input.dat", data)
    box: dict = {}

    def body(proc):
        yield from proc.cpu(PROC_STARTUP * 25)  # JVM-ish startup
        fd = yield from proc.open("/input.dat", "r")
        raw = yield from proc.read_all(fd)
        lines = raw.decode("utf-8", "replace").splitlines()
        yield from proc.cpu(len(lines) * cpu_per_line / machine.cpu_speed)
        box["answer"] = run(lines)
        return 0

    root = kernel.create_process(body, "record-loop")
    kernel.run_until_process_done(root)
    return box.get("answer"), kernel.now
