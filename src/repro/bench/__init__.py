"""S14 — benchmark harness: workload generators, machine profiles,
engine runners, and report tables."""

from .report import format_table, speedup
from .runners import ENGINES, EngineRun, make_engine, run_engine, run_matrix, run_record_loop
from .workloads import (
    access_log,
    java_temperature_program,
    ncdc_records,
    spell_documents,
    words_text,
)

__all__ = [
    "format_table", "speedup", "ENGINES", "EngineRun", "make_engine",
    "run_engine", "run_matrix", "run_record_loop", "access_log",
    "java_temperature_program", "ncdc_records", "spell_documents",
    "words_text",
]
