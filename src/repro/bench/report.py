"""Tiny fixed-width table reporting for benchmark output."""

from __future__ import annotations

from typing import Iterable, Optional


def format_table(headers: list[str], rows: Iterable[Iterable[object]],
                 title: Optional[str] = None) -> str:
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def speedup(baseline: float, value: float) -> str:
    if value <= 0:
        return "inf"
    return f"{baseline / value:.2f}x"
