"""Deterministic workload generators for the benchmark suite.

Every generator takes a target size and a seed so benches are
reproducible; sizes default to laptop-friendly scales of the paper's
workloads (the 3 GB Figure 1 input becomes 48 MB — the ratios between
engines, which is what the figure shows, are preserved; see DESIGN.md
§4 Substitutions).
"""

from __future__ import annotations

import random

#: vocabulary for word-sort workloads: Zipf-ish mix of common words
_VOCAB = (
    "the of and to in a is that it was for on are as with his they at be "
    "this have from or had by hot word but what some we can out other were "
    "all there when up use your how said an each she which do their time "
    "apple banana cherry damson elderberry fig grape huckleberry imbe "
    "jackfruit kiwi lemon mango nectarine orange papaya quince raspberry "
    "strawberry tangerine ugli vanilla watermelon xigua yuzu zucchini"
).split()


def words_text(n_bytes: int, seed: int = 42, words_per_line: int = 9) -> bytes:
    """Multi-line text of whitespace-separated words (Figure 1 input)."""
    rng = random.Random(seed)
    out: list[str] = []
    size = 0
    row: list[str] = []
    while size < n_bytes:
        word = rng.choice(_VOCAB)
        row.append(word)
        size += len(word) + 1
        if len(row) >= words_per_line:
            out.append(" ".join(row))
            row = []
    if row:
        out.append(" ".join(row))
    return ("\n".join(out) + "\n").encode()


def ncdc_records(n_records: int, seed: int = 7) -> bytes:
    """NCDC-style fixed-width weather records (the §2.1 temperature
    workload from 'Hadoop: The Definitive Guide').

    Temperature is at columns 89-92 (1-based), sign at 88, quality at 93;
    ~5% of records carry the 9999 missing-value marker.
    """
    rng = random.Random(seed)
    rows = []
    for i in range(n_records):
        station = f"{rng.randrange(10_000, 99_999):05d}"
        year = rng.choice(["1949", "1950", "1951", "1952"])
        if rng.random() < 0.05:
            temp = "9999"
        else:
            temp = f"{rng.randrange(0, 600):04d}"
        # the 48-char pipeline reads the unsigned digits at columns
        # 89-92, so the generator emits positive temperatures only
        sign = "+"
        prefix = f"0029{station}99999{year}0515120049999999N9" .ljust(87, "0")
        row = (prefix[:87] + sign + temp + "1").ljust(105, "9")
        rows.append(row)
    return ("\n".join(rows) + "\n").encode()


def access_log(n_lines: int, seed: int = 11, error_rate: float = 0.08) -> bytes:
    """Web-server-ish access log for grep/wc workloads."""
    rng = random.Random(seed)
    hosts = [f"10.0.{rng.randrange(256)}.{rng.randrange(256)}" for _ in range(64)]
    paths = [f"/api/v1/resource/{i}" for i in range(40)]
    rows = []
    for i in range(n_lines):
        status = 500 if rng.random() < error_rate else rng.choice([200, 200, 200, 301, 404])
        rows.append(
            f"{rng.choice(hosts)} - - [15/Mar/2021:10:{i % 60:02d}:00] "
            f'"GET {rng.choice(paths)} HTTP/1.1" {status} {rng.randrange(200, 40000)}'
        )
    return ("\n".join(rows) + "\n").encode()


def spell_documents(n_docs: int, bytes_per_doc: int, seed: int = 23,
                    typo_rate: float = 0.02) -> tuple[dict[str, bytes], bytes]:
    """(documents, dictionary) for the §3.2 spell workload: documents
    with injected typos plus a sorted dictionary of the clean vocabulary."""
    rng = random.Random(seed)
    dictionary = sorted(set(w.lower() for w in _VOCAB))

    def typo(word: str) -> str:
        if len(word) < 3:
            return word + "x"
        i = rng.randrange(len(word) - 1)
        return word[:i] + word[i + 1] + word[i] + word[i + 2:]

    docs: dict[str, bytes] = {}
    for d in range(n_docs):
        lines: list[str] = []
        row: list[str] = []
        size = 0
        while size < bytes_per_doc:
            word = rng.choice(_VOCAB)
            if rng.random() < typo_rate:
                word = typo(word)
            if rng.random() < 0.3:
                word = word.capitalize()
            row.append(word)
            size += len(word) + 1
            if len(row) >= 12:
                lines.append(" ".join(row))
                row = []
        if row:
            lines.append(" ".join(row))
        docs[f"/docs/doc{d}.txt"] = ("\n".join(lines) + "\n").encode()
    return docs, ("\n".join(dictionary) + "\n").encode()


def java_temperature_program() -> str:
    """A line-by-line 'Java-equivalent' temperature-analysis program
    (the ~100-line record loop of White's Hadoop book, transliterated).
    Returned as Python source for repro.bench.runners.run_record_loop."""
    return JAVA_EQUIVALENT_SOURCE


#: The straight-line record-at-a-time program the paper contrasts with
#: the 48-character pipeline.  Port of MaxTemperature{,Mapper,Reducer}
#: from White's book, chapter 2 — structured the way the Java original
#: is (parser class, mapper, reducer, driver), totalling ~100 lines.
JAVA_EQUIVALENT_SOURCE = '''\
MISSING = 9999


class NcdcRecordParser:
    """Parses a fixed-width NCDC record (Java: NcdcRecordParser.java)."""

    def __init__(self):
        self.air_temperature = None
        self.quality = None

    def parse(self, record):
        if len(record) < 93:
            self.air_temperature = MISSING
            self.quality = "0"
            return
        sign = record[87]
        if sign in ("+", "-"):
            text = record[88:92]
        else:
            text = record[87:92]
        try:
            value = int(text)
        except ValueError:
            value = MISSING
        if sign == "-":
            value = -value
        self.air_temperature = value
        self.quality = record[92:93]

    def is_valid(self):
        return (self.air_temperature != MISSING
                and self.quality in ("0", "1", "4", "5", "9"))


class MaxTemperatureMapper:
    def __init__(self):
        self.parser = NcdcRecordParser()

    def map(self, line, collector):
        self.parser.parse(line)
        if self.parser.is_valid():
            collector.append(self.parser.air_temperature)


class MaxTemperatureReducer:
    def reduce(self, values):
        max_value = None
        for value in values:
            if max_value is None or value > max_value:
                max_value = value
        return max_value


def run(lines):
    mapper = MaxTemperatureMapper()
    reducer = MaxTemperatureReducer()
    collector = []
    for line in lines:
        mapper.map(line, collector)
    return reducer.reduce(collector)
'''
