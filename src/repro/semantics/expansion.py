"""Word expansion (POSIX XCU 2.6): tilde, parameter, command, and
arithmetic expansion, field splitting, pathname expansion, quote removal.

Expansion functions are generators (command substitution spawns a
subshell process), driven with ``yield from`` inside the interpreter.

Internal representation: a *marked string* where each quoted character is
preceded by QUOTE_MARK; FIELD_BREAK separates "$@" positionals and
EMPTY_QUOTE records an empty quoted string (which must survive as an
empty field).
"""

from __future__ import annotations

from typing import Optional

from ..parser.ast_nodes import (
    ArithSub,
    CmdSub,
    DoubleQuoted,
    Escaped,
    Lit,
    Param,
    SingleQuoted,
    Word,
    WordPart,
)
from . import arith
from .patterns import (
    EMPTY_MARK,
    QUOTE_MARK,
    SPLIT_MARK,
    glob_match_names,
    has_glob_chars,
    quote_literal,
    strip_quote_marks,
)
from .state import ShellError

FIELD_BREAK = "\x01"
EMPTY_QUOTE = EMPTY_MARK  # shared with the pattern matcher


def mark_splittable(text: str, ifs: str) -> str:
    """Tag every unquoted IFS character of an expansion result with
    SPLIT_MARK.  Field splitting (XCU 2.6.5) applies only to the results
    of parameter/command/arithmetic expansion — literal text in the word
    never splits — so marking happens exactly where expansion output is
    stitched into the word."""
    if not ifs or not text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c in (QUOTE_MARK, SPLIT_MARK):
            out.append(c)
            if i + 1 < n:
                out.append(text[i + 1])
            i += 2
            continue
        if c in ifs:
            out.append(SPLIT_MARK)
        out.append(c)
        i += 1
    return "".join(out)


class ExpansionError(ShellError):
    """Expansion failures (bad substitution, ${x:?msg}, nounset)."""


# ---------------------------------------------------------------------------
# part expansion -> marked string
# ---------------------------------------------------------------------------


def _expand_parts(interp, proc, parts: tuple[WordPart, ...], in_dquotes: bool):
    """Expand a sequence of word parts into one marked string."""
    out: list[str] = []
    for part in parts:
        if isinstance(part, Lit):
            out.append(quote_literal(part.text) if in_dquotes else part.text)
        elif isinstance(part, SingleQuoted):
            out.append(quote_literal(part.text) if part.text else EMPTY_QUOTE)
        elif isinstance(part, Escaped):
            out.append(QUOTE_MARK + part.char)
        elif isinstance(part, DoubleQuoted):
            inner = yield from _expand_parts(interp, proc, part.parts, True)
            out.append(inner if inner else EMPTY_QUOTE)
        elif isinstance(part, Param):
            text = yield from _expand_param(interp, proc, part, in_dquotes)
            if not in_dquotes:
                text = mark_splittable(text, interp.state.ifs)
            out.append(text)
        elif isinstance(part, CmdSub):
            raw = yield from interp.command_substitution(proc, part.command)
            text = raw.rstrip("\n")
            out.append(
                quote_literal(text)
                if in_dquotes
                else mark_splittable(text, interp.state.ifs)
            )
        elif isinstance(part, ArithSub):
            expr_marked = yield from _expand_parts(interp, proc, part.parts, False)
            expr = strip_quote_marks(expr_marked)
            try:
                value = arith.evaluate(
                    expr,
                    get=interp.state.get,
                    set_=lambda n, v: interp.state.set(n, v),
                )
            except arith.ArithError as err:
                raise ExpansionError(f"arithmetic: {err}") from None
            text = str(value)
            out.append(
                quote_literal(text)
                if in_dquotes
                else mark_splittable(text, interp.state.ifs)
            )
        else:
            raise ExpansionError(f"unknown word part {part!r}")
    return "".join(out)


def _expand_param(interp, proc, param: Param, in_dquotes: bool):
    state = interp.state
    name, op = param.name, param.op

    if name in ("@", "*") and op in ("", "length"):
        return (yield from _expand_at_star(interp, name, op, in_dquotes))

    value = state.get(name)

    if op == "length":
        return _mark(str(len(value or "")), in_dquotes)

    if op == "":
        if value is None:
            if state.options.get("nounset") and not _is_special(name):
                raise ExpansionError(f"{name}: unbound variable")
            return ""
        return _mark(value, in_dquotes)

    # test operators: ':' variants also treat empty as unset
    colon = op.startswith(":")
    base_op = op.lstrip(":") if colon else op
    use_word = base_op in ("-", "=", "?", "+")
    if use_word:
        unset_or_null = value is None or (colon and value == "")
        if base_op == "+":
            if unset_or_null:
                return ""
            operand = yield from _expand_operand(interp, proc, param.word, in_dquotes)
            return operand
        if not unset_or_null:
            return _mark(value, in_dquotes)
        operand = yield from _expand_operand(interp, proc, param.word, in_dquotes)
        if base_op == "-":
            return operand
        if base_op == "=":
            assigned = strip_quote_marks(operand).replace(EMPTY_QUOTE, "")
            state.set(name, assigned)
            return _mark(assigned, in_dquotes)
        if base_op == "?":
            message = strip_quote_marks(operand).replace(EMPTY_QUOTE, "") or "parameter null or not set"
            raise ExpansionError(f"{name}: {message}")

    if base_op in ("#", "##", "%", "%%"):
        if value is None:
            value = ""
        pattern_marked = ""
        if param.word is not None:
            pattern_marked = yield from _expand_parts(
                interp, proc, param.word.parts, False
            )
        from .patterns import remove_affix

        result = remove_affix(value, pattern_marked.replace(EMPTY_QUOTE, ""), base_op)
        return _mark(result, in_dquotes)

    raise ExpansionError(f"bad substitution ${{{name}{op}...}}")


def _expand_operand(interp, proc, word: Optional[Word], in_dquotes: bool):
    if word is None:
        return ""
    result = yield from _expand_parts(interp, proc, word.parts, in_dquotes)
    return result


def _expand_at_star(interp, name: str, op: str, in_dquotes: bool):
    state = interp.state
    positionals = state.positionals
    if op == "length":
        return _mark(str(len(positionals)), in_dquotes)
        yield  # pragma: no cover - make this a generator
    if in_dquotes:
        if name == "@":
            # empty positionals must survive as empty fields, so record
            # them as EMPTY_QUOTE rather than a zero-length piece
            pieces = [quote_literal(p) if p else EMPTY_QUOTE for p in positionals]
            return FIELD_BREAK.join(pieces) if pieces else ""
        sep = (state.ifs[:1]) if state.ifs else ""
        return quote_literal(sep.join(positionals)) if positionals else EMPTY_QUOTE
    # unquoted $@ / $*: each positional subject to field splitting
    return FIELD_BREAK.join(positionals)
    yield  # pragma: no cover - make this a generator


def _mark(text: str, in_dquotes: bool) -> str:
    return quote_literal(text) if in_dquotes else text


def _is_special(name: str) -> bool:
    return name in ("@", "*", "#", "?", "-", "$", "!") or name.isdigit()


# ---------------------------------------------------------------------------
# field splitting
# ---------------------------------------------------------------------------


def split_fields(marked: str, ifs: str) -> list[str]:
    """Split a marked string into fields (XCU 2.6.5).

    Only SPLIT_MARK-tagged characters (expansion output, see
    ``mark_splittable``) participate in splitting; literal and quoted
    text never does.  A run of adjacent tagged IFS characters containing
    ``h`` non-whitespace ("hard") delimiters separates ``h`` times —
    whitespace around a hard delimiter merges into it — while an
    all-whitespace run separates once without forcing an empty field.
    """
    fields: list[str] = []
    current: list[str] = []
    has_content = False  # current field contains quoted-or-real material

    def end_field(force: bool = False) -> None:
        nonlocal current, has_content
        if has_content or force:
            fields.append("".join(current))
        current = []
        has_content = False

    i = 0
    n = len(marked)
    while i < n:
        c = marked[i]
        if c == FIELD_BREAK:
            # "$@" positional boundary: zero-length unquoted positionals
            # vanish (empty quoted ones arrive as EMPTY_QUOTE pieces)
            end_field()
            i += 1
            continue
        if c == QUOTE_MARK:
            current.append(c)
            if i + 1 < n:
                current.append(marked[i + 1])
            has_content = True
            i += 2
            continue
        if c == EMPTY_QUOTE:
            has_content = True
            current.append(c)
            i += 1
            continue
        if c == SPLIT_MARK:
            tagged = marked[i + 1] if i + 1 < n else ""
            if ifs and tagged in ifs:
                hards = 0
                while i < n and marked[i] == SPLIT_MARK:
                    nxt = marked[i + 1] if i + 1 < n else ""
                    if nxt not in ifs:
                        break
                    if nxt not in " \t\n":
                        hards += 1
                    i += 2
                if hards == 0:
                    end_field()
                else:
                    for _ in range(hards):
                        end_field(force=True)
                continue
            # tagged char no longer in the active IFS: plain content
            current.append(tagged)
            has_content = True
            i += 2
            continue
        current.append(c)
        has_content = True
        i += 1
    end_field()
    return fields


# ---------------------------------------------------------------------------
# pathname expansion
# ---------------------------------------------------------------------------


def expand_pathnames(field_marked: str, fs, cwd: str) -> list[str]:
    """Glob one field against the virtual filesystem; no match -> the
    pattern itself (POSIX default)."""
    if not has_glob_chars(field_marked):
        return [_finalize(field_marked)]
    # split into components on '/' (quoted slashes still separate paths)
    comps: list[str] = []
    current: list[str] = []
    i = 0
    n = len(field_marked)
    while i < n:
        c = field_marked[i]
        if c == QUOTE_MARK and i + 1 < n:
            if field_marked[i + 1] == "/":
                comps.append("".join(current))
                current = []
            else:
                current.append(c)
                current.append(field_marked[i + 1])
            i += 2
            continue
        if c == "/":
            comps.append("".join(current))
            current = []
            i += 1
            continue
        current.append(c)
        i += 1
    comps.append("".join(current))

    is_abs = comps and comps[0] == ""
    if is_abs:
        comps = comps[1:]
        bases = [("/", "/")]
    else:
        bases = [("", cwd)]

    from ..vos.fs import normalize

    for comp in comps:
        if comp == "":
            continue
        new_bases = []
        if not has_glob_chars(comp):
            literal = _finalize(comp)
            for display, absdir in bases:
                child_abs = normalize(literal, absdir if absdir else cwd) \
                    if literal.startswith("/") else normalize(
                        (absdir.rstrip("/") + "/" + literal) if absdir != "/" else "/" + literal)
                child_display = (display.rstrip("/") + "/" + literal) if display else literal
                if display == "/":
                    child_display = "/" + literal
                if fs.exists(child_abs):
                    new_bases.append((child_display, child_abs))
        else:
            for display, absdir in bases:
                listdir_base = absdir if absdir else cwd
                if not fs.is_dir(listdir_base):
                    continue
                names = fs.listdir(listdir_base)
                for name in glob_match_names(comp, names):
                    child_abs = (listdir_base.rstrip("/") + "/" + name)
                    child_display = (
                        (display.rstrip("/") + "/" + name) if display and display != "/"
                        else ("/" + name if display == "/" else name)
                    )
                    new_bases.append((child_display, child_abs))
        bases = new_bases
        if not bases:
            return [_finalize(field_marked)]
    results = sorted(display for display, _abs in bases if display)
    return results if results else [_finalize(field_marked)]


def _finalize(marked: str) -> str:
    """Quote removal on a marked field."""
    return strip_quote_marks(marked).replace(EMPTY_QUOTE, "")


def _drop_split_marks(marked: str) -> str:
    """Remove SPLIT_MARK tags while preserving QUOTE_MARK pairs."""
    if SPLIT_MARK not in marked:
        return marked
    out: list[str] = []
    i = 0
    n = len(marked)
    while i < n:
        c = marked[i]
        if c == QUOTE_MARK:
            out.append(c)
            if i + 1 < n:
                out.append(marked[i + 1])
            i += 2
        elif c == SPLIT_MARK:
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# tilde expansion
# ---------------------------------------------------------------------------


def _tilde_expand(marked: str, state) -> str:
    if not marked.startswith("~"):
        return marked
    # up to the first unquoted '/'
    end = 0
    while end < len(marked) and marked[end] != "/":
        if marked[end] in (QUOTE_MARK, EMPTY_QUOTE, SPLIT_MARK):
            return marked  # quoted/expanded char in the prefix: no expansion
        end += 1
    user = marked[1:end]
    if user == "":
        home = state.get("HOME") or "/"
        return quote_literal(home) + marked[end:]
    # named users resolve to /home/<user> in the virtual OS
    return quote_literal("/home/" + user) + marked[end:]


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def expand_word(interp, proc, word: Word, split: bool = True, glob: bool = True):
    """Full expansion of one word into zero or more fields."""
    marked = yield from _expand_parts(interp, proc, word.parts, False)
    marked = _tilde_expand(marked, interp.state)
    if split:
        fields = split_fields(marked, interp.state.ifs)
    else:
        unsplit = _drop_split_marks(marked).replace(FIELD_BREAK, " ")
        fields = [unsplit] if unsplit else []
    if glob and not interp.state.options.get("noglob"):
        out: list[str] = []
        for field in fields:
            out.extend(expand_pathnames(field, proc.fs, interp.state.cwd))
        return out
    return [_finalize(f) for f in fields]


def expand_word_single(interp, proc, word: Word):
    """Expansion producing exactly one field (assignments, redirect
    targets, case subjects, here-docs): no splitting, no globbing."""
    marked = yield from _expand_parts(interp, proc, word.parts, False)
    marked = _tilde_expand(marked, interp.state)
    return _finalize(marked.replace(FIELD_BREAK, " "))


def expand_words(interp, proc, words):
    """Expand a word sequence into an argv field list."""
    fields: list[str] = []
    for word in words:
        result = yield from expand_word(interp, proc, word)
        fields.extend(result)
    return fields
