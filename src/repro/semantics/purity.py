"""Purity analysis for early word expansion.

Jash expands words *before* their command runs so the optimizer can see
concrete file names and sizes.  The paper (§3.2): "early expansions
shouldn't have side-effects; Smoosh's semantics is critical for this kind
of reasoning."  This module is that check: a conservative, syntactic
side-effect analysis over word ASTs.

An expansion is *pure* when evaluating it cannot change shell or system
state and cannot abort the shell:

* ``${x=w}`` / ``${x:=w}`` assign — impure.
* ``${x?w}`` / ``${x:?w}`` may exit the shell — impure.
* ``$((x=1))`` and friends assign — impure.
* ``$(cmd)`` runs arbitrary commands — impure unless every command in the
  substitution is a *known pure producer* (a read-only command from the
  annotation library, e.g. ``$(wc -l f)``); by default we do not even
  trust those, because they consume input (cat a pipe twice and the
  second read sees nothing).  The ``allow_pure_cmdsub`` flag relaxes this
  for substitutions whose commands are annotated read-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..parser.ast_nodes import (
    ArithSub,
    CmdSub,
    DoubleQuoted,
    Escaped,
    Lit,
    Param,
    SimpleCommand,
    SingleQuoted,
    Word,
    WordPart,
    walk,
)
from .arith import has_side_effects
from .patterns import strip_quote_marks


@dataclass
class PurityReport:
    pure: bool
    reasons: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.pure


def check_word(word: Word, allow_pure_cmdsub: bool = False,
               pure_commands: frozenset[str] = frozenset()) -> PurityReport:
    """Is expanding ``word`` side-effect free?"""
    reasons: list[str] = []
    _check_parts(word.parts, reasons, allow_pure_cmdsub, pure_commands)
    return PurityReport(not reasons, reasons)


def check_words(words, allow_pure_cmdsub: bool = False,
                pure_commands: frozenset[str] = frozenset()) -> PurityReport:
    reasons: list[str] = []
    for word in words:
        _check_parts(word.parts, reasons, allow_pure_cmdsub, pure_commands)
    return PurityReport(not reasons, reasons)


def _check_parts(parts, reasons: list[str], allow_pure_cmdsub: bool,
                 pure_commands: frozenset[str]) -> None:
    for part in parts:
        if isinstance(part, (Lit, SingleQuoted, Escaped)):
            continue
        if isinstance(part, DoubleQuoted):
            _check_parts(part.parts, reasons, allow_pure_cmdsub, pure_commands)
        elif isinstance(part, Param):
            base_op = part.op.lstrip(":")
            if base_op == "=":
                reasons.append(f"${{{part.name}{part.op}...}} assigns a variable")
            elif base_op == "?":
                reasons.append(f"${{{part.name}{part.op}...}} may abort the shell")
            if part.word is not None:
                _check_parts(part.word.parts, reasons, allow_pure_cmdsub,
                             pure_commands)
        elif isinstance(part, ArithSub):
            expr = _static_text(part.parts)
            if expr is None or has_side_effects(expr):
                reasons.append("arithmetic expansion may assign")
            else:
                _check_parts(part.parts, reasons, allow_pure_cmdsub, pure_commands)
        elif isinstance(part, CmdSub):
            if not allow_pure_cmdsub:
                reasons.append("command substitution runs commands")
            elif not _cmdsub_is_pure(part, pure_commands):
                reasons.append(
                    "command substitution contains non-read-only commands"
                )
        else:
            reasons.append(f"unknown word part {type(part).__name__}")


def _static_text(parts) -> str | None:
    """Concatenated text of literal-only parts; None when dynamic."""
    out: list[str] = []
    for part in parts:
        if isinstance(part, Lit):
            out.append(part.text)
        elif isinstance(part, SingleQuoted):
            out.append(part.text)
        elif isinstance(part, Escaped):
            out.append(part.char)
        elif isinstance(part, Param) and part.op in ("", "length"):
            out.append("0")  # a plain variable read: value is numeric-shaped
        else:
            return None
    return "".join(out)


def _cmdsub_is_pure(part: CmdSub, pure_commands: frozenset[str]) -> bool:
    """Every simple command inside is a registered read-only producer with
    purely-literal words, and there are no redirections."""
    for node in walk(part.command):
        if isinstance(node, SimpleCommand):
            if node.assigns or node.redirects:
                return False
            if not node.words or not node.words[0].is_literal():
                return False
            if node.words[0].literal_value() not in pure_commands:
                return False
    return True
