"""The shell interpreter — an executable POSIX semantics (Smoosh's role).

The interpreter runs *inside* the virtual OS as a process generator:
every potentially blocking operation (pipes, files, child processes) is a
``yield from`` into the kernel.  Compound commands, functions, built-ins,
and word expansion follow POSIX XCU 2; divergences are documented in
DESIGN.md.

An optional ``optimizer`` hook (duck-typed, see :mod:`repro.jit`) is
consulted before pipelines and simple commands execute — this is the
integration point the paper's Jash proposal describes: "the JIT tightly
couples with the shell, switching back and forth between interpretation
and optimization".
"""

from __future__ import annotations

from typing import Optional

from ..commands.base import PROC_STARTUP, lookup
from ..parser.ast_nodes import (
    AndOr,
    BraceGroup,
    Case,
    Command,
    CommandList,
    For,
    FuncDef,
    If,
    Lit,
    Pipeline,
    Redirect,
    SimpleCommand,
    SingleQuoted,
    Subshell,
    While,
    Word,
)
from ..vos.errors import VosError
from ..vos.handles import Collector, NullHandle, StringSource, make_pipe
from ..vos.process import Process
from .builtins import REGULAR_BUILTINS, SPECIAL_BUILTINS
from .control import FuncReturn, LoopBreak, LoopContinue, ShellExit
from .expansion import (
    ExpansionError,
    _expand_parts,
    _finalize,
    expand_word,
    expand_word_single,
    expand_words,
)
from .state import ShellError, ShellState


class Interpreter:
    """Evaluates a parsed script against a ShellState inside a vOS."""

    def __init__(self, state: ShellState, optimizer=None,
                 host_coord=None, stage_oracle=None):
        self.state = state
        self.optimizer = optimizer
        #: S21 host-pool coordinator (None when --jobs 1) and, in a
        #: pipeline-stage child, the stage's precomputed-stream oracle
        self.host_coord = host_coord
        self.stage_oracle = stage_oracle
        self.jobs: set[int] = set()
        self.traps: dict[str, str] = {}
        self._local_frames: list[dict] = []
        self._read_buffers: dict[int, bytearray] = {}
        self.condition_depth = 0
        self._last_cmdsub_status = 0

    # -- top level ---------------------------------------------------------------

    def main_body(self, program: Command):
        """A vOS process body executing ``program`` to completion."""

        def body(proc: Process):
            try:
                status = yield from self.exec(program, proc)
            except ShellExit as exit_:
                status = exit_.status
            except ShellError as err:
                yield from self.write_err(proc, f"jash: {err}")
                status = 2
            if "EXIT" in self.traps:
                from ..parser import parse

                try:
                    yield from self.exec(parse(self.traps.pop("EXIT")), proc)
                except (ShellExit, ShellError):
                    pass
            return status

        return body

    # -- helpers -------------------------------------------------------------------

    def write_err(self, proc: Process, message: str):
        if 2 in proc.fds:
            yield from proc.write(2, message.encode() + b"\n")

    def local_frame(self) -> Optional[dict]:
        return self._local_frames[-1] if self._local_frames else None

    def maybe_errexit(self, status: int) -> None:
        if (
            status != 0
            and self.state.options.get("errexit")
            and self.condition_depth == 0
        ):
            raise ShellExit(status)

    def read_line(self, proc: Process, fd: int):
        """Buffered line read for the ``read`` built-in; buffers are keyed
        by handle identity so ``while read x; do ...; done < file`` keeps
        its position across iterations."""
        handle = proc.fds.get(fd)
        key = id(handle)
        buf = self._read_buffers.setdefault(key, bytearray())
        while b"\n" not in buf:
            data = yield from proc.read(fd, 4096)
            if not data:
                if buf:
                    line = bytes(buf).decode("utf-8", "replace")
                    buf.clear()
                    return line
                return None
            buf.extend(data)
        idx = buf.index(b"\n")
        line = bytes(buf[: idx + 1]).decode("utf-8", "replace")
        del buf[: idx + 1]
        return line

    # -- dispatch ----------------------------------------------------------------------

    def exec(self, node: Command, proc: Process):
        if self.state.options.get("noexec"):
            return 0
        if self.optimizer is not None and isinstance(node, (Pipeline, SimpleCommand)):
            plan = yield from self.optimizer.try_execute(self, proc, node)
            if plan is not None:
                status = plan
                self.state.last_status = status
                self.maybe_errexit(status)
                return status
        if isinstance(node, CommandList):
            return (yield from self.exec_list(node, proc))
        if isinstance(node, SimpleCommand):
            return (yield from self.exec_simple(node, proc))
        if isinstance(node, Pipeline):
            return (yield from self.exec_pipeline(node, proc))
        if isinstance(node, AndOr):
            return (yield from self.exec_andor(node, proc))
        if isinstance(node, Subshell):
            return (yield from self.exec_subshell(node, proc))
        if isinstance(node, BraceGroup):
            return (yield from self.exec_brace_group(node, proc))
        if isinstance(node, If):
            return (yield from self.exec_if(node, proc))
        if isinstance(node, While):
            return (yield from self.exec_while(node, proc))
        if isinstance(node, For):
            return (yield from self.exec_for(node, proc))
        if isinstance(node, Case):
            return (yield from self.exec_case(node, proc))
        if isinstance(node, FuncDef):
            self.state.functions[node.name] = node.body
            self.state.last_status = 0
            return 0
        raise ShellError(f"cannot execute node {type(node).__name__}")

    # -- lists / and-or / pipelines ----------------------------------------------------

    def exec_list(self, node: CommandList, proc: Process):
        status = self.state.last_status
        for item in node.items:
            if item.is_async:
                body = self.subshell_body(item.command)
                pid = yield from proc.spawn(
                    body, name="async", fds=self._async_fds(proc)
                )
                self.jobs.add(pid)
                self.state.last_async_pid = pid
                status = 0
                self.state.last_status = 0
            else:
                status = yield from self.exec(item.command, proc)
        return status

    def _async_fds(self, proc: Process) -> dict:
        fds = dict(proc.fds)
        fds[0] = NullHandle()  # POSIX: async stdin is /dev/null
        return fds

    def exec_andor(self, node: AndOr, proc: Process):
        self.condition_depth += 1
        try:
            left = yield from self.exec(node.left, proc)
        finally:
            self.condition_depth -= 1
        run_right = (left == 0) if node.op == "&&" else (left != 0)
        if not run_right:
            self.state.last_status = left
            return left
        right = yield from self.exec(node.right, proc)
        return right

    def exec_pipeline(self, node: Pipeline, proc: Process):
        oracles = (self.host_coord.oracles_for(node)
                   if self.host_coord is not None else None)
        if node.negated:
            self.condition_depth += 1
        try:
            status = yield from self._run_pipeline(node.commands, proc,
                                                   oracles)
        finally:
            if node.negated:
                self.condition_depth -= 1
        if node.negated:
            status = 0 if status != 0 else 1
        self.state.last_status = status
        if not node.negated:
            self.maybe_errexit(status)
        return status

    def _run_pipeline(self, commands: tuple[Command, ...], proc: Process,
                      oracles=None):
        pids = []
        prev_reader = None
        for i, cmd in enumerate(commands):
            fds = dict(proc.fds)
            if prev_reader is not None:
                fds[0] = prev_reader
            if i < len(commands) - 1:
                reader, writer = make_pipe()
                fds[1] = writer
                next_reader = reader
            else:
                next_reader = None
            body = self.subshell_body(
                cmd, stage_oracle=oracles[i] if oracles else None)
            pid = yield from proc.spawn(body, name=f"pipe[{i}]", fds=fds)
            pids.append(pid)
            prev_reader = next_reader
        statuses = []
        for pid in pids:
            st = yield from proc.wait(pid)
            statuses.append(st)
        if self.state.options.get("pipefail"):
            failing = [s for s in statuses if s != 0]
            return failing[-1] if failing else 0
        return statuses[-1] if statuses else 0

    def subshell_body(self, cmd: Command, state: Optional[ShellState] = None,
                      stage_oracle=None):
        forked = (state or self.state).fork()

        def body(child_proc: Process):
            child = Interpreter(forked, self.optimizer,
                                host_coord=self.host_coord,
                                stage_oracle=stage_oracle)
            child_proc.cwd = forked.cwd
            try:
                status = yield from child.exec(cmd, child_proc)
            except ShellExit as exit_:
                status = exit_.status
            except ShellError as err:
                yield from child.write_err(child_proc, f"jash: {err}")
                status = 2
            return status

        return body

    # -- redirections ---------------------------------------------------------------------

    def build_redirect_fds(self, redirects: tuple[Redirect, ...], proc: Process,
                           base_fds: dict):
        """Apply redirections to a *copy* of an fd map (child semantics)."""
        fds = dict(base_fds)
        for redirect in redirects:
            yield from self._apply_one_redirect(redirect, proc, fds)
        return fds

    def _apply_one_redirect(self, redirect: Redirect, proc: Process, fds: dict):
        fd = redirect.default_fd()
        op = redirect.op
        if op in ("<<", "<<-"):
            body = redirect.heredoc
            if body is None:
                text = ""
            elif len(body.parts) == 1 and isinstance(body.parts[0], SingleQuoted):
                text = body.parts[0].text
            else:
                marked = yield from _expand_parts(self, proc, body.parts, False)
                text = _finalize(marked)
            fds[fd] = StringSource(text.encode())
            return
        target = yield from expand_word_single(self, proc, redirect.target)
        if op in ("<&", ">&"):
            if target == "-":
                fds.pop(fd, None)
            elif target.isdigit():
                src = fds.get(int(target))
                if src is None:
                    raise ShellError(f"{target}: bad file descriptor")
                fds[fd] = src
            else:
                raise ShellError(f"{op}{target}: bad file descriptor target")
            return
        mode = {"<": "r", ">": "w", ">>": "a", "<>": "rw", ">|": "w"}[op]
        try:
            handle = proc.kernel.open_handle(proc.node, target, mode, self.state.cwd)
        except VosError:
            raise ShellError(f"{target}: cannot open")
        fds[fd] = handle

    def apply_redirects_local(self, redirects: tuple[Redirect, ...], proc: Process):
        """Apply redirections to the current process, returning a token for
        :meth:`restore_fds` (built-ins run in the current shell)."""
        if not redirects:
            return None
        new_fds = yield from self.build_redirect_fds(redirects, proc, proc.fds)
        saved = proc.fds
        proc.fds = {fd: handle.dup() for fd, handle in new_fds.items()}
        return saved

    def restore_fds(self, proc: Process, saved) -> None:
        if saved is None:
            return
        current = proc.fds
        proc.fds = saved
        for handle in current.values():
            fully = handle.release()
            if fully:
                proc.kernel._handle_closed(handle)

    def commit_fds(self, proc: Process, saved) -> None:
        """Make redirections applied by apply_redirects_local permanent
        (the ``exec`` built-in): release displaced old handles."""
        if saved is None:
            return
        live = set(map(id, proc.fds.values()))
        for handle in saved.values():
            if id(handle) not in live:
                fully = handle.release()
                if fully:
                    proc.kernel._handle_closed(handle)

    # -- simple commands --------------------------------------------------------------------

    def exec_simple(self, node: SimpleCommand, proc: Process,
                    skip_functions: bool = False):
        self._last_cmdsub_status = self.state.last_status
        try:
            argv = yield from expand_words(self, proc, node.words)
        except ExpansionError as err:
            yield from self.write_err(proc, f"jash: {err}")
            self.state.last_status = 1
            self.maybe_errexit(1)
            return 1

        if self.state.options.get("xtrace") and (argv or node.assigns):
            ps4 = self.state.get("PS4") or "+ "
            shown = " ".join(argv) if argv else "(assignment)"
            yield from self.write_err(proc, f"{ps4}{shown}")

        if not argv:
            # assignments persist in the current environment
            for assign in node.assigns:
                value = yield from expand_word_single(self, proc, assign.word)
                self.state.set(assign.name, value)
            if node.redirects:
                saved = yield from self.apply_redirects_local(node.redirects, proc)
                self.restore_fds(proc, saved)
            status = self._last_cmdsub_status if node.assigns else 0
            self.state.last_status = status
            self.maybe_errexit(status)
            return status

        name = argv[0]

        # 1. functions
        if not skip_functions and name in self.state.functions:
            status = yield from self.call_function(name, argv[1:], node, proc)
            self.state.last_status = status
            self.maybe_errexit(status)
            return status

        # 2. built-ins (special first)
        builtin = SPECIAL_BUILTINS.get(name) or REGULAR_BUILTINS.get(name)
        if builtin is not None:
            status = yield from self._run_builtin(builtin, name, argv[1:], node, proc)
            self.state.last_status = status
            self.maybe_errexit(status)
            return status

        # 3. external utilities
        status = yield from self._run_external(name, argv[1:], node, proc)
        self.state.last_status = status
        self.maybe_errexit(status)
        return status

    def _apply_temp_assigns(self, node: SimpleCommand, proc: Process):
        """Expand and apply assignment prefixes; returns restore info."""
        saved: dict[str, Optional[tuple[str, bool]]] = {}
        for assign in node.assigns:
            value = yield from expand_word_single(self, proc, assign.word)
            if assign.name not in saved:
                var = self.state.vars.get(assign.name)
                saved[assign.name] = (var.value, var.exported) if var else None
            self.state.set(assign.name, value, export=True)
        return saved

    def _restore_assigns(self, saved: dict) -> None:
        for name, prior in saved.items():
            if prior is None:
                self.state.vars.pop(name, None)
            else:
                value, exported = prior
                self.state.set(name, value, export=exported)

    def _run_builtin(self, builtin, name: str, args: list[str],
                     node: SimpleCommand, proc: Process):
        special = name in SPECIAL_BUILTINS
        assigns_saved = yield from self._apply_temp_assigns(node, proc)
        fd_saved = None
        commit = name == "exec"  # exec's redirections persist
        try:
            fd_saved = yield from self.apply_redirects_local(node.redirects, proc)
            status = yield from builtin(self, proc, args)
        except ShellError as err:
            yield from self.write_err(proc, f"{name}: {err}")
            status = 2
            if special:
                raise ShellExit(2)
        finally:
            if commit:
                self.commit_fds(proc, fd_saved)
            else:
                self.restore_fds(proc, fd_saved)
            if not special:
                self._restore_assigns(assigns_saved)
        return status if status is not None else 0

    def _run_external(self, name: str, args: list[str],
                      node: SimpleCommand, proc: Process):
        fn = lookup(name)
        if fn is None:
            # the not-found message honours the command's redirections
            fd_saved = None
            try:
                fd_saved = yield from self.apply_redirects_local(
                    node.redirects, proc
                )
                yield from self.write_err(
                    proc, f"jash: {name}: command not found"
                )
            except ShellError:
                pass
            finally:
                self.restore_fds(proc, fd_saved)
            return 127
        assigns_saved = yield from self._apply_temp_assigns(node, proc)
        try:
            try:
                fds = yield from self.build_redirect_fds(node.redirects, proc, proc.fds)
            except ShellError as err:
                yield from self.write_err(proc, f"jash: {err}")
                return 1

            # S21: a pipeline-stage oracle travels via the stage child's
            # interpreter; a bare top-level region (e.g. ``sort FILE``)
            # resolves directly against the coordinator
            oracle = self.stage_oracle
            if oracle is None and self.host_coord is not None:
                oracle = self.host_coord.oracle_for_simple(node)

            def body(child: Process, fn=fn, args=args, oracle=oracle):
                if oracle is not None:
                    child.host_oracle = oracle
                yield from child.cpu(PROC_STARTUP)
                status = yield from fn(child, args)
                return status if status is not None else 0

            pid = yield from proc.spawn(body, name=name, fds=fds,
                                        cwd=self.state.cwd)
            status = yield from proc.wait(pid)
        finally:
            self._restore_assigns(assigns_saved)
        return status

    def call_function(self, name: str, args: list[str],
                      node: SimpleCommand, proc: Process):
        body = self.state.functions[name]
        saved_positionals = self.state.positionals
        self.state.positionals = list(args)
        self._local_frames.append({})
        fd_saved = None
        try:
            fd_saved = yield from self.apply_redirects_local(node.redirects, proc)
            try:
                status = yield from self.exec(body, proc)
            except FuncReturn as ret:
                status = ret.status
        finally:
            self.restore_fds(proc, fd_saved)
            frame = self._local_frames.pop()
            for var_name, prior in frame.items():
                if prior is None:
                    self.state.vars.pop(var_name, None)
                else:
                    value, exported = prior
                    self.state.set(var_name, value, export=exported)
            self.state.positionals = saved_positionals
        return status

    # -- compound commands ----------------------------------------------------------------------

    def exec_subshell(self, node: Subshell, proc: Process):
        fds = yield from self.build_redirect_fds(node.redirects, proc, proc.fds)
        body = self.subshell_body(node.body)
        pid = yield from proc.spawn(body, name="subshell", fds=fds,
                                    cwd=self.state.cwd)
        status = yield from proc.wait(pid)
        self.state.last_status = status
        self.maybe_errexit(status)
        return status

    def exec_brace_group(self, node: BraceGroup, proc: Process):
        fd_saved = yield from self.apply_redirects_local(node.redirects, proc)
        try:
            status = yield from self.exec(node.body, proc)
        finally:
            self.restore_fds(proc, fd_saved)
        return status

    def exec_if(self, node: If, proc: Process):
        fd_saved = yield from self.apply_redirects_local(node.redirects, proc)
        try:
            self.condition_depth += 1
            try:
                cond = yield from self.exec(node.cond, proc)
            finally:
                self.condition_depth -= 1
            if cond == 0:
                return (yield from self.exec(node.then_body, proc))
            for elif_cond, elif_body in node.elifs:
                self.condition_depth += 1
                try:
                    cond = yield from self.exec(elif_cond, proc)
                finally:
                    self.condition_depth -= 1
                if cond == 0:
                    return (yield from self.exec(elif_body, proc))
            if node.else_body is not None:
                return (yield from self.exec(node.else_body, proc))
            self.state.last_status = 0
            return 0
        finally:
            self.restore_fds(proc, fd_saved)

    def exec_while(self, node: While, proc: Process):
        fd_saved = yield from self.apply_redirects_local(node.redirects, proc)
        status = 0
        try:
            while True:
                self.condition_depth += 1
                try:
                    cond = yield from self.exec(node.cond, proc)
                finally:
                    self.condition_depth -= 1
                should_run = (cond != 0) if node.until else (cond == 0)
                if not should_run:
                    break
                try:
                    status = yield from self.exec(node.body, proc)
                except LoopBreak as brk:
                    if brk.levels > 1:
                        raise LoopBreak(brk.levels - 1)
                    break
                except LoopContinue as cont:
                    if cont.levels > 1:
                        raise LoopContinue(cont.levels - 1)
                    continue
        finally:
            self.restore_fds(proc, fd_saved)
        self.state.last_status = status
        return status

    def exec_for(self, node: For, proc: Process):
        fd_saved = yield from self.apply_redirects_local(node.redirects, proc)
        status = 0
        try:
            if node.words is None:
                values = list(self.state.positionals)
            else:
                values = yield from expand_words(self, proc, node.words)
            for value in values:
                self.state.set(node.var, value)
                try:
                    status = yield from self.exec(node.body, proc)
                except LoopBreak as brk:
                    if brk.levels > 1:
                        raise LoopBreak(brk.levels - 1)
                    break
                except LoopContinue as cont:
                    if cont.levels > 1:
                        raise LoopContinue(cont.levels - 1)
                    continue
        finally:
            self.restore_fds(proc, fd_saved)
        self.state.last_status = status
        return status

    def exec_case(self, node: Case, proc: Process):
        from .patterns import match

        fd_saved = yield from self.apply_redirects_local(node.redirects, proc)
        try:
            subject = yield from expand_word_single(self, proc, node.word)
            for item in node.items:
                for pattern_word in item.patterns:
                    marked = yield from _expand_parts(
                        self, proc, pattern_word.parts, False
                    )
                    if match(marked, subject):
                        if item.body is None:
                            self.state.last_status = 0
                            return 0
                        return (yield from self.exec(item.body, proc))
            self.state.last_status = 0
            return 0
        finally:
            self.restore_fds(proc, fd_saved)

    # -- command substitution -----------------------------------------------------------------------

    def command_substitution(self, proc: Process, command: Command):
        reader, writer = make_pipe()
        body = self.subshell_body(command)
        fds = dict(proc.fds)
        fds[1] = writer
        pid = yield from proc.spawn(body, name="cmdsub", fds=fds,
                                    cwd=self.state.cwd)
        # read in the parent while the child runs (bounded pipe!)
        reader.dup()
        chunks: list[bytes] = []
        try:
            while True:
                data = proc_read = yield from self._read_pipe(proc, reader)
                if not data:
                    break
                chunks.append(data)
        finally:
            fully = reader.release()
            if fully:
                proc.kernel._handle_closed(reader)
        status = yield from proc.wait(pid)
        self._last_cmdsub_status = status
        return b"".join(chunks).decode("utf-8", "replace")

    def _read_pipe(self, proc: Process, reader):
        """Read from a pipe handle not installed in our fd table."""
        fd = proc.next_fd()
        proc.fds[fd] = reader.dup()
        try:
            data = yield from proc.read(fd, 65536)
        finally:
            handle = proc.fds.pop(fd)
            fully = handle.release()
            if fully:
                proc.kernel._handle_closed(handle)
        return data
