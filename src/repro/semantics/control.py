"""Control-flow signals used inside the interpreter."""

from __future__ import annotations


class LoopBreak(Exception):
    def __init__(self, levels: int = 1):
        super().__init__(levels)
        self.levels = levels


class LoopContinue(Exception):
    def __init__(self, levels: int = 1):
        super().__init__(levels)
        self.levels = levels


class FuncReturn(Exception):
    def __init__(self, status: int):
        super().__init__(status)
        self.status = status


class ShellExit(Exception):
    def __init__(self, status: int):
        super().__init__(status)
        self.status = status
