"""Shell built-in utilities (POSIX special and regular built-ins).

Each built-in is a generator ``fn(interp, proc, argv) -> int`` executed in
the *current* shell process (that is the point of built-ins).
"""

from __future__ import annotations

from ..vos.fs import normalize
from .control import FuncReturn, LoopBreak, LoopContinue, ShellExit
from .state import ShellError

SPECIAL_BUILTINS = {}
REGULAR_BUILTINS = {}


def special(name):
    def wrap(fn):
        SPECIAL_BUILTINS[name] = fn
        return fn

    return wrap


def regular(name):
    def wrap(fn):
        REGULAR_BUILTINS[name] = fn
        return fn

    return wrap


def _err(interp, proc, message: str):
    yield from interp.write_err(proc, message)


# -- special built-ins ---------------------------------------------------------


@special(":")
def colon(interp, proc, argv):
    yield from proc.cpu(1e-7)
    return 0


@special("exit")
def exit_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    status = interp.state.last_status
    if argv:
        try:
            status = int(argv[0])
        except ValueError:
            status = 2
    raise ShellExit(status)


@special("return")
def return_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    status = interp.state.last_status
    if argv:
        try:
            status = int(argv[0])
        except ValueError:
            status = 2
    raise FuncReturn(status)


@special("break")
def break_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    raise LoopBreak(int(argv[0]) if argv else 1)


@special("continue")
def continue_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    raise LoopContinue(int(argv[0]) if argv else 1)


@special("export")
def export_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    for arg in argv:
        if "=" in arg:
            name, value = arg.split("=", 1)
            interp.state.set(name, value, export=True)
        else:
            interp.state.export(arg)
    return 0


@special("readonly")
def readonly_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    for arg in argv:
        if "=" in arg:
            name, value = arg.split("=", 1)
            interp.state.set(name, value)
            interp.state.mark_readonly(name)
        else:
            interp.state.mark_readonly(arg)
    return 0


@special("unset")
def unset_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    args = [a for a in argv if not a.startswith("-")]
    drop_funcs = "-f" in argv
    for name in args:
        if drop_funcs:
            interp.state.functions.pop(name, None)
        else:
            interp.state.unset(name)
    return 0


@special("set")
def set_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    state = interp.state
    flag_map = {"e": "errexit", "u": "nounset", "x": "xtrace", "f": "noglob",
                "n": "noexec"}
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--":
            state.positionals = list(argv[i + 1 :])
            return 0
        if arg == "-o" or arg == "+o":
            i += 1
            if i < len(argv):
                opt = argv[i]
                if opt in state.options:
                    state.options[opt] = arg == "-o"
            i += 1
            continue
        if arg.startswith("-") and len(arg) > 1:
            for ch in arg[1:]:
                if ch in flag_map:
                    state.options[flag_map[ch]] = True
            i += 1
        elif arg.startswith("+") and len(arg) > 1:
            for ch in arg[1:]:
                if ch in flag_map:
                    state.options[flag_map[ch]] = False
            i += 1
        else:
            state.positionals = list(argv[i:])
            return 0
    return 0


@special("shift")
def shift_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    n = int(argv[0]) if argv else 1
    if n > len(interp.state.positionals):
        return 1
    interp.state.positionals = interp.state.positionals[n:]
    return 0


@special("eval")
def eval_b(interp, proc, argv):
    from ..parser import parse

    yield from proc.cpu(1e-6)
    text = " ".join(argv)
    if not text.strip():
        return 0
    program = parse(text)
    status = yield from interp.exec(program, proc)
    return status


@special(".")
def dot_b(interp, proc, argv):
    from ..parser import parse

    yield from proc.cpu(1e-6)
    if not argv:
        yield from _err(interp, proc, ".: filename argument required")
        return 2
    path = normalize(argv[0], interp.state.cwd)
    if not proc.fs.is_file(path):
        yield from _err(interp, proc, f".: {argv[0]}: No such file")
        return 1
    text = proc.fs.read_bytes(path).decode("utf-8", "replace")
    program = parse(text)
    status = yield from interp.exec(program, proc)
    return status


@special("exec")
def exec_b(interp, proc, argv):
    # only the redirection-applying use of exec is supported; the
    # interpreter handles the redirects before calling us, so with no
    # arguments this is a no-op.  `exec cmd` runs cmd then exits.
    if argv:
        from ..parser.ast_nodes import Lit, SimpleCommand, Word

        cmd = SimpleCommand(
            words=tuple(Word((Lit(a),)) for a in argv)
        )
        status = yield from interp.exec(cmd, proc)
        raise ShellExit(status)
    yield from proc.cpu(1e-7)
    return 0


@special("times")
def times_b(interp, proc, argv):
    yield from proc.write(1, b"0m0.00s 0m0.00s\n0m0.00s 0m0.00s\n")
    return 0


@special("trap")
def trap_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    if len(argv) >= 2:
        action, conditions = argv[0], argv[1:]
        for cond in conditions:
            interp.traps[cond.upper()] = action
    return 0


# -- regular built-ins -----------------------------------------------------------


@regular("cd")
def cd_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    state = interp.state
    target = argv[0] if argv else (state.get("HOME") or "/")
    if target == "-":
        target = state.get("OLDPWD") or state.cwd
    path = normalize(target, state.cwd)
    if not proc.fs.is_dir(path):
        yield from _err(interp, proc, f"cd: {target}: No such file or directory")
        return 1
    state.set("OLDPWD", state.cwd)
    state.set("PWD", path, export=True)
    proc.cwd = path
    return 0


@regular("pwd")
def pwd_b(interp, proc, argv):
    yield from proc.write(1, interp.state.cwd.encode() + b"\n")
    return 0


@regular("read")
def read_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    raw_mode = False
    names = []
    for arg in argv:
        if arg == "-r":
            raw_mode = True
        else:
            names.append(arg)
    if not names:
        names = ["REPLY"]
    line = yield from interp.read_line(proc, 0)
    if line is None:
        return 1
    text = line.rstrip("\n")
    if not raw_mode:
        text = text.replace("\\\n", "").replace("\\", "")
    ifs = interp.state.ifs
    if len(names) == 1:
        interp.state.set(names[0], text.strip(ifs) if ifs else text)
        return 0
    parts = text.split(None, len(names) - 1) if ifs.strip() == "" else [
        p for p in text.split(ifs[0])
    ]
    for i, name in enumerate(names):
        if i < len(parts):
            value = parts[i]
            if i == len(names) - 1 and len(parts) > len(names):
                value = ifs[0].join(parts[i:])
            interp.state.set(name, value)
        else:
            interp.state.set(name, "")
    return 0


@regular("wait")
def wait_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    if not argv:
        # XCU: wait with no operands waits for all jobs and returns 0,
        # regardless of the children's statuses
        for pid in sorted(interp.jobs):
            yield from proc.wait(pid)
        interp.jobs.clear()
        return 0
    status = 0
    for arg in argv:
        try:
            pid = int(arg)
        except ValueError:
            status = 127
            continue
        if pid in interp.jobs:
            interp.jobs.discard(pid)
            status = yield from proc.wait(pid)
        else:
            # unknown (or already-reaped) pid: 127, like host shells
            status = 127
    return status


#: signal name -> number, the kill(1) subset that matters for scripts
_SIGNALS = {
    "HUP": 1, "INT": 2, "QUIT": 3, "ABRT": 6, "KILL": 9, "USR1": 10,
    "SEGV": 11, "USR2": 12, "PIPE": 13, "ALRM": 14, "TERM": 15,
}
_SIGNAL_NAMES = {num: name for name, num in _SIGNALS.items()}


def _parse_signal(text: str):
    text = text.upper()
    if text.startswith("SIG"):
        text = text[3:]
    if text in _SIGNALS:
        return _SIGNALS[text]
    try:
        num = int(text)
    except ValueError:
        return None
    return num if 0 <= num < 128 else None


@regular("kill")
def kill_b(interp, proc, argv):
    # let already-spawned jobs run first: on a host, fork/exec latency
    # means a fast-exiting `cmd & kill $!` child is already a zombie by
    # the time kill fires, while a blocking child (sleep) is still alive.
    # A short virtual sleep reproduces that race resolution determinately.
    yield from proc.sleep(1e-4)
    signum = 15  # SIGTERM
    pids = []
    i = 0
    if argv and argv[0] == "-l":
        names = " ".join(
            _SIGNAL_NAMES[n] for n in sorted(_SIGNAL_NAMES)
        )
        yield from proc.write(1, names.encode() + b"\n")
        return 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--":
            i += 1
            break
        if arg == "-s" and i + 1 < len(argv):
            sig = _parse_signal(argv[i + 1])
            if sig is None:
                yield from _err(interp, proc, f"kill: unknown signal {argv[i + 1]}")
                return 1
            signum = sig
            i += 2
            continue
        if arg.startswith("-") and len(arg) > 1:
            sig = _parse_signal(arg[1:])
            if sig is None:
                break  # negative pid / unknown flag: treat as operand
            signum = sig
            i += 1
            continue
        break
    pids = argv[i:]
    if not pids:
        yield from _err(interp, proc, "kill: usage: kill [-s signal] pid ...")
        return 2
    status = 0
    for spid in pids:
        try:
            pid = int(spid)
        except ValueError:
            yield from _err(interp, proc, f"kill: Illegal number: {spid}")
            status = 1
            continue
        fatal = None if signum == 0 else 128 + signum
        outcome = yield from proc.kill(pid, fatal)
        # outcome 2 = victim already exited: that is a successful no-op
        # while the job is an unreaped zombie (still in the job table),
        # but ESRCH once the shell has waited on it — host semantics
        reaped = outcome == 0 or (outcome == 2 and pid not in interp.jobs)
        if reaped:
            yield from _err(interp, proc, f"kill: {spid}: No such process")
            status = 1
    return status


@regular("getopts")
def getopts_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    state = interp.state
    if len(argv) < 2:
        yield from _err(interp, proc, "getopts: usage: getopts optstring name [arg...]")
        return 2
    optstring, name = argv[0], argv[1]
    silent = optstring.startswith(":")
    opts = optstring[1:] if silent else optstring
    args = list(argv[2:]) if len(argv) > 2 else list(state.positionals)

    try:
        optind = int(state.get("OPTIND") or "1")
    except ValueError:
        optind = 1
    cache = getattr(interp, "_getopts_cache", None)
    # a script assigning OPTIND (e.g. OPTIND=1) restarts the scan
    pos = cache[1] if cache is not None and cache[0] == optind else 0

    def finish(next_idx: int) -> int:
        """No more options: name='?', OPTIND points at the first operand."""
        interp._getopts_cache = None
        state.set("OPTIND", str(next_idx + 1))
        state.set(name, "?")
        state.unset("OPTARG")
        return 1

    idx = optind - 1  # 0-based token index
    if pos == 0:
        if (
            idx < 0
            or idx >= len(args)
            or not args[idx].startswith("-")
            or args[idx] == "-"
        ):
            return finish(max(idx, 0))
        if args[idx] == "--":
            return finish(idx + 1)
        pos = 1

    token = args[idx]
    ch = token[pos]
    spec = opts.find(ch)
    takes_arg = spec >= 0 and spec + 1 < len(opts) and opts[spec + 1] == ":"

    def advance_char() -> None:
        """Consume one clustered option character."""
        if pos + 1 < len(token):
            interp._getopts_cache = (optind, pos + 1)
        else:
            state.set("OPTIND", str(optind + 1))
            interp._getopts_cache = (optind + 1, 0)

    if spec < 0 or ch == ":":
        state.set(name, "?")
        if silent:
            state.set("OPTARG", ch)
        else:
            state.unset("OPTARG")
            yield from _err(interp, proc, f"getopts: illegal option -- {ch}")
        advance_char()
        return 0

    if not takes_arg:
        state.set(name, ch)
        state.unset("OPTARG")
        advance_char()
        return 0

    # option with a required argument: rest-of-token, else the next token
    if pos + 1 < len(token):
        state.set(name, ch)
        state.set("OPTARG", token[pos + 1 :])
        state.set("OPTIND", str(optind + 1))
        interp._getopts_cache = (optind + 1, 0)
        return 0
    if idx + 1 < len(args):
        state.set(name, ch)
        state.set("OPTARG", args[idx + 1])
        state.set("OPTIND", str(optind + 2))
        interp._getopts_cache = (optind + 2, 0)
        return 0
    # missing argument
    state.set("OPTIND", str(optind + 1))
    interp._getopts_cache = (optind + 1, 0)
    if silent:
        state.set(name, ":")
        state.set("OPTARG", ch)
    else:
        state.set(name, "?")
        state.unset("OPTARG")
        yield from _err(interp, proc, f"getopts: option requires an argument -- {ch}")
    return 0


@regular("umask")
def umask_b(interp, proc, argv):
    if not argv:
        yield from proc.write(1, b"0022\n")
    return 0


@regular("type")
def type_b(interp, proc, argv):
    from ..commands import lookup

    status = 0
    for name in argv:
        if name in interp.state.functions:
            kind = f"{name} is a function"
        elif name in SPECIAL_BUILTINS or name in REGULAR_BUILTINS:
            kind = f"{name} is a shell builtin"
        elif lookup(name) is not None:
            kind = f"{name} is /usr/bin/{name}"
        else:
            kind = f"{name}: not found"
            status = 1
        yield from proc.write(1, kind.encode() + b"\n")
    return status


@regular("local")
def local_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    frame = interp.local_frame()
    if frame is None:
        yield from _err(interp, proc, "local: can only be used in a function")
        return 1
    for arg in argv:
        if "=" in arg:
            name, value = arg.split("=", 1)
        else:
            name, value = arg, ""
        if name not in frame:
            var = interp.state.vars.get(name)
            frame[name] = (var.value, var.exported) if var is not None else None
        interp.state.set(name, value)
    return 0


@regular("alias")
def alias_b(interp, proc, argv):
    yield from proc.cpu(1e-7)
    return 0  # aliases intentionally unsupported (documented)


@regular("command")
def command_b(interp, proc, argv):
    argv = [a for a in argv if a != "-p"]
    if not argv:
        return 0
    from ..parser.ast_nodes import Lit, SimpleCommand, Word

    cmd = SimpleCommand(words=tuple(Word((Lit(a),)) for a in argv))
    status = yield from interp.exec_simple(cmd, proc, skip_functions=True)
    return status
