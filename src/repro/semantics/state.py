"""Shell interpreter state: variables, functions, options, positionals.

The paper's B2 ("too dynamic") is precisely about this object: execution
depends on the filesystem, the working directory, environment variables,
and unexpanded strings.  The JIT (S9) reads it; the AOT baseline (S7)
must work without it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Variable:
    value: str
    exported: bool = False
    readonly: bool = False


class ShellError(Exception):
    """Fatal shell errors (bad substitution, readonly assignment, ...)."""


class ShellState:
    def __init__(self, args: Optional[list[str]] = None, name: str = "jash"):
        self.vars: dict[str, Variable] = {}
        self.functions: dict = {}  # name -> Command AST
        self.positionals: list[str] = list(args or [])
        self.name = name  # $0
        self.last_status = 0
        self.last_async_pid = 0
        self.cwd = "/"
        self.options: dict[str, bool] = {
            "errexit": False,   # -e
            "nounset": False,   # -u
            "xtrace": False,    # -x
            "noglob": False,    # -f
            "noexec": False,    # -n
            "pipefail": False,  # (widely implemented extension)
        }
        self.ifs_default = " \t\n"
        # defaults present in any environment
        self.set("PWD", "/", export=True)
        self.set("HOME", "/root", export=True)
        self.set("PATH", "/usr/bin:/bin", export=True)
        self.set("PS1", "$ ")
        self.set("PS4", "+ ")

    # -- variables -------------------------------------------------------------

    def get(self, name: str) -> Optional[str]:
        """Variable or special-parameter value; None when unset."""
        if name.isdigit():
            idx = int(name)
            if idx == 0:
                return self.name
            if 1 <= idx <= len(self.positionals):
                return self.positionals[idx - 1]
            return None
        if name == "#":
            return str(len(self.positionals))
        if name == "?":
            return str(self.last_status)
        if name == "$":
            return "1"  # the shell's own (virtual) pid
        if name == "!":
            return str(self.last_async_pid)
        if name == "-":
            return "".join(
                flag for flag, opt in (("e", "errexit"), ("u", "nounset"),
                                       ("x", "xtrace"), ("f", "noglob"))
                if self.options[opt]
            )
        if name in ("@", "*"):
            return " ".join(self.positionals)
        var = self.vars.get(name)
        return var.value if var is not None else None

    def is_set(self, name: str) -> bool:
        return self.get(name) is not None

    def set(self, name: str, value: str, export: bool = False) -> None:
        var = self.vars.get(name)
        if var is not None:
            if var.readonly:
                raise ShellError(f"{name}: readonly variable")
            var.value = value
            if export:
                var.exported = True
        else:
            self.vars[name] = Variable(value, exported=export)
        if name == "PWD":
            self.cwd = value

    def unset(self, name: str) -> None:
        var = self.vars.get(name)
        if var is not None and var.readonly:
            raise ShellError(f"{name}: readonly variable")
        self.vars.pop(name, None)

    def export(self, name: str) -> None:
        var = self.vars.get(name)
        if var is None:
            self.vars[name] = Variable("", exported=True)
        else:
            var.exported = True

    def mark_readonly(self, name: str) -> None:
        var = self.vars.get(name)
        if var is None:
            self.vars[name] = Variable("", readonly=True)
        else:
            var.readonly = True

    def environment(self) -> dict[str, str]:
        return {n: v.value for n, v in self.vars.items() if v.exported}

    @property
    def ifs(self) -> str:
        value = self.get("IFS")
        return self.ifs_default if value is None else value

    # -- forks --------------------------------------------------------------------

    def fork(self) -> "ShellState":
        """State copy for a subshell: mutations do not propagate back."""
        child = ShellState.__new__(ShellState)
        child.vars = {n: Variable(v.value, v.exported, v.readonly)
                      for n, v in self.vars.items()}
        child.functions = dict(self.functions)
        child.positionals = list(self.positionals)
        child.name = self.name
        child.last_status = self.last_status
        child.last_async_pid = self.last_async_pid
        child.cwd = self.cwd
        child.options = dict(self.options)
        child.ifs_default = self.ifs_default
        return child
