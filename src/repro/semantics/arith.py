"""POSIX shell arithmetic ($((...))) — XCU 2.6.4.

Signed integer arithmetic with the C operator set, assignment, and the
ternary conditional.  Variables resolve through get/set callbacks so the
evaluator is shared by the interpreter and the symbolic analyses.
"""

from __future__ import annotations

import re
from typing import Callable, Optional


class ArithError(ValueError):
    pass


_TOKEN_RE = re.compile(
    r"""
    \s*(
        0[xX][0-9a-fA-F]+ | \d+              # numbers
      | [A-Za-z_][A-Za-z0-9_]*               # names
      | \<\<\= | \>\>\= | \<\< | \>\> | \<\= | \>\= | \=\= | \!\=
      | \&\& | \|\| | \+\= | \-\= | \*\= | /\= | %\= | \&\= | \^\= | \|\=
      | [-+*/%()!~<>=&^|?:,]
    )""",
    re.VERBOSE,
)


def tokenize(expr: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(expr):
        m = _TOKEN_RE.match(expr, pos)
        if m is None:
            rest = expr[pos:].strip()
            if not rest:
                break
            raise ArithError(f"bad arithmetic token at {rest[:10]!r}")
        tokens.append(m.group(1))
        pos = m.end()
    return tokens


_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "^=", "|="}

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class _Parser:
    """Precedence-climbing parser, evaluating as it goes."""

    def __init__(self, tokens: list[str], get: Callable[[str], str],
                 set_: Optional[Callable[[str, str], None]]):
        self.tokens = tokens
        self.pos = 0
        self.get = get
        self.set = set_

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        if self.peek() != tok:
            raise ArithError(f"expected {tok!r}, found {self.peek()!r}")
        self.take()

    # expression levels, lowest first
    def parse_comma(self) -> int:
        value = self.parse_assign()
        while self.peek() == ",":
            self.take()
            value = self.parse_assign()
        return value

    def parse_assign(self) -> int:
        # lookahead: NAME assign-op expr
        if (
            self.pos + 1 < len(self.tokens)
            and _NAME_RE.match(self.tokens[self.pos])
            and self.tokens[self.pos + 1] in _ASSIGN_OPS
        ):
            name = self.take()
            op = self.take()
            rhs = self.parse_assign()
            if op != "=":
                current = self._value_of(name)
                rhs = _apply_binop(op[:-1], current, rhs)
            if self.set is None:
                raise ArithError(f"assignment to {name} not allowed here")
            self.set(name, str(rhs))
            return rhs
        return self.parse_ternary()

    def parse_ternary(self) -> int:
        cond = self.parse_binary(0)
        if self.peek() == "?":
            self.take()
            # evaluate both branches (side effects in untaken branch are a
            # documented divergence; our corpus has none)
            then = self.parse_assign()
            self.expect(":")
            other = self.parse_ternary()
            return then if cond else other
        return cond

    _LEVELS = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary(self, level: int) -> int:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        ops = self._LEVELS[level]
        value = self.parse_binary(level + 1)
        while self.peek() in ops:
            op = self.take()
            rhs = self.parse_binary(level + 1)
            value = _apply_binop(op, value, rhs)
        return value

    def parse_unary(self) -> int:
        tok = self.peek()
        if tok == "-":
            self.take()
            return -self.parse_unary()
        if tok == "+":
            self.take()
            return self.parse_unary()
        if tok == "!":
            self.take()
            return 0 if self.parse_unary() else 1
        if tok == "~":
            self.take()
            return ~self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> int:
        tok = self.peek()
        if tok is None:
            raise ArithError("unexpected end of expression")
        if tok == "(":
            self.take()
            value = self.parse_comma()
            self.expect(")")
            return value
        self.take()
        if tok[0].isdigit():
            return _parse_int(tok)
        if _NAME_RE.match(tok):
            return self._value_of(tok)
        raise ArithError(f"unexpected token {tok!r}")

    def _value_of(self, name: str) -> int:
        raw = self.get(name)
        if raw is None or raw == "":
            return 0
        try:
            return _parse_int(raw.strip())
        except ArithError:
            # POSIX allows recursive evaluation; one level is plenty here
            raise ArithError(f"non-numeric value for {name}: {raw!r}")


def _parse_int(text: str) -> int:
    try:
        if text.lower().startswith("0x"):
            return int(text, 16)
        if text.startswith("0") and len(text) > 1 and text.isdigit():
            return int(text, 8)
        return int(text)
    except ValueError:
        raise ArithError(f"bad number {text!r}") from None


def _apply_binop(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise ArithError("division by zero")
        return int(a / b)  # C semantics: truncate toward zero
    if op == "%":
        if b == 0:
            raise ArithError("division by zero")
        return a - int(a / b) * b
    if op == "<<":
        return a << b
    if op == ">>":
        return a >> b
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "&":
        return a & b
    if op == "^":
        return a ^ b
    if op == "|":
        return a | b
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise ArithError(f"unknown operator {op!r}")


def evaluate(expr: str, get: Callable[[str], str],
             set_: Optional[Callable[[str, str], None]] = None) -> int:
    """Evaluate a shell arithmetic expression.

    ``get(name)`` returns a variable's string value ('' / None for unset);
    ``set_(name, value)`` performs assignments (None forbids them, which
    the purity analysis uses).
    """
    tokens = tokenize(expr)
    if not tokens:
        return 0
    parser = _Parser(tokens, get, set_)
    value = parser.parse_comma()
    if parser.peek() is not None:
        raise ArithError(f"trailing tokens at {parser.peek()!r}")
    return value


def has_side_effects(expr: str) -> bool:
    """Conservative syntactic check: does the expression assign?"""
    try:
        tokens = tokenize(expr)
    except ArithError:
        return True
    return any(tok in _ASSIGN_OPS for tok in tokens)
