"""S2 — executable POSIX shell semantics (the Smoosh role): expansion,
arithmetic, patterns, interpreter, and the purity analysis Jash needs for
sound early expansion."""

from .arith import ArithError, evaluate as arith_evaluate, has_side_effects
from .control import FuncReturn, LoopBreak, LoopContinue, ShellExit
from .expansion import (
    ExpansionError,
    expand_word,
    expand_word_single,
    expand_words,
    split_fields,
)
from .interp import Interpreter
from .patterns import match as pattern_match, remove_affix, translate
from .purity import PurityReport, check_word, check_words
from .state import ShellError, ShellState, Variable

__all__ = [
    "ArithError", "arith_evaluate", "has_side_effects",
    "FuncReturn", "LoopBreak", "LoopContinue", "ShellExit",
    "ExpansionError", "expand_word", "expand_word_single", "expand_words",
    "split_fields",
    "Interpreter",
    "pattern_match", "remove_affix", "translate",
    "PurityReport", "check_word", "check_words",
    "ShellError", "ShellState", "Variable",
]
