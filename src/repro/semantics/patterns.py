"""Shell pattern matching (XCU 2.13): case patterns, pathname expansion,
and the prefix/suffix removal of ``${x#pat}`` / ``${x%pat}``.

Patterns arrive as (text, quoted) fragment lists so that quoted
metacharacters stay literal: ``case $x in "*") ...`` matches only a
literal asterisk.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Iterable

_CLASS_NAMES = {
    "alpha": "a-zA-Z",
    "digit": "0-9",
    "alnum": "a-zA-Z0-9",
    "lower": "a-z",
    "upper": "A-Z",
    "space": r" \t\n\r\v\f",
    "blank": r" \t",
    "punct": re.escape(r"""!"#$%&'()*+,-./:;<=>?@[\]^_`{|}~"""),
    "xdigit": "0-9a-fA-F",
    "print": r"\x20-\x7e",
    "graph": r"\x21-\x7e",
    "cntrl": r"\x00-\x1f\x7f",
}

#: sentinel prefixing characters that must be treated literally
QUOTE_MARK = "\x00"
#: sentinel recording an empty quoted string ('' / ""): matches nothing
EMPTY_MARK = "\x02"
#: sentinel prefixing characters produced by an expansion: only these are
#: candidates for field splitting (XCU 2.6.5 splits expansion results,
#: never literal text)
SPLIT_MARK = "\x03"


def quote_literal(text: str) -> str:
    """Mark every character of ``text`` as literal (quoted)."""
    return "".join(QUOTE_MARK + c for c in text)


def translate(pattern: str) -> str:
    """Translate a shell pattern (possibly containing QUOTE_MARK-escaped
    literal characters and backslash escapes) into a Python regex."""
    out: list[str] = []
    i = 0
    n = len(pattern)
    while i < n:
        c = pattern[i]
        if c == EMPTY_MARK:
            i += 1  # '' contributes nothing to the pattern
            continue
        if c == SPLIT_MARK:
            i += 1  # the following char stays active (unquoted expansion)
            continue
        if c == QUOTE_MARK:
            i += 1
            if i < n:
                out.append(re.escape(pattern[i]))
                i += 1
            continue
        if c == "\\":
            i += 1
            if i < n:
                out.append(re.escape(pattern[i]))
                i += 1
            else:
                out.append(re.escape("\\"))
            continue
        if c == "*":
            out.append(".*")
            i += 1
        elif c == "?":
            out.append(".")
            i += 1
        elif c == "[":
            closing, expr = _translate_bracket(pattern, i)
            if closing < 0:
                out.append(re.escape("["))
                i += 1
            else:
                out.append(expr)
                i = closing + 1
        else:
            out.append(re.escape(c))
            i += 1
    return "".join(out)


def _translate_bracket(pattern: str, start: int) -> tuple[int, str]:
    """Translate a bracket expression starting at pattern[start] == '['.
    Returns (index of closing ']', regex) or (-1, '') when unterminated."""
    i = start + 1
    negate = False
    if i < len(pattern) and pattern[i] in "!^":
        negate = True
        i += 1
    items: list[str] = []
    first = True
    while i < len(pattern):
        c = pattern[i]
        if c == "]" and not first:
            inner = "".join(items)
            if not inner:
                return -1, ""
            return i, "[" + ("^" if negate else "") + inner + "]"
        first = False
        if pattern.startswith("[:", i):
            end = pattern.find(":]", i + 2)
            if end < 0:
                return -1, ""
            name = pattern[i + 2 : end]
            cls = _CLASS_NAMES.get(name)
            if cls is None:
                return -1, ""
            items.append(cls)
            i = end + 2
            continue
        if c == SPLIT_MARK:
            i += 1
            continue
        if c == QUOTE_MARK and i + 1 < len(pattern):
            items.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if c == "\\" and i + 1 < len(pattern):
            items.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if (
            i + 2 < len(pattern)
            and pattern[i + 1] == "-"
            and pattern[i + 2] not in "]"
        ):
            if ord(c) > ord(pattern[i + 2]):
                # reversed range (e.g. [o-n]): not a valid bracket
                # expression; shells treat the '[' literally
                return -1, ""
            items.append(re.escape(c) + "-" + re.escape(pattern[i + 2]))
            i += 3
            continue
        items.append(re.escape(c))
        i += 1
    return -1, ""


@lru_cache(maxsize=4096)
def _compiled(pattern: str) -> re.Pattern:
    try:
        return re.compile(translate(pattern), re.DOTALL)
    except re.error:
        # pathological bracket contents: degrade to a literal match,
        # which is what shells do with malformed patterns
        return re.compile(re.escape(strip_quote_marks(pattern)), re.DOTALL)


def match(pattern: str, value: str) -> bool:
    """Full-string shell pattern match."""
    return _compiled(pattern).fullmatch(value) is not None


def has_glob_chars(pattern: str) -> bool:
    """Does the (marked) pattern contain active metacharacters?"""
    i = 0
    while i < len(pattern):
        c = pattern[i]
        if c == QUOTE_MARK or c == "\\":
            i += 2
            continue
        if c in "*?[":
            return True
        i += 1
    return False


def remove_affix(value: str, pattern: str, op: str) -> str:
    """Implement ``${x#pat}`` (op '#'), ``##``, ``%``, ``%%``."""
    if op in ("#", "##"):
        indices: Iterable[int] = range(len(value) + 1)
        best = None
        for i in indices:
            if match(pattern, value[:i]):
                best = i
                if op == "#":
                    break
        if op == "##" and best is not None:
            # want the longest: keep scanning upward
            for i in range(len(value), -1, -1):
                if match(pattern, value[:i]):
                    best = i
                    break
        return value[best:] if best is not None else value
    if op in ("%", "%%"):
        best = None
        if op == "%":
            for i in range(len(value), -1, -1):
                if match(pattern, value[i:]):
                    best = i
                    break
        else:
            for i in range(len(value) + 1):
                if match(pattern, value[i:]):
                    best = i
                    break
        return value[:best] if best is not None else value
    raise ValueError(f"bad affix op {op!r}")


def strip_quote_marks(text: str) -> str:
    """Quote removal: drop QUOTE_MARK/SPLIT_MARK sentinels, keep the
    characters they tag."""
    out: list[str] = []
    i = 0
    while i < len(text):
        if text[i] == QUOTE_MARK:
            i += 1
            if i < len(text):
                out.append(text[i])
                i += 1
        elif text[i] == SPLIT_MARK:
            i += 1  # drop the mark; the tagged char is handled normally
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def glob_match_names(pattern: str, names: Iterable[str],
                     include_hidden: bool = False) -> list[str]:
    """Match one path component's pattern against candidate names."""
    regex = _compiled(pattern)
    out = []
    for name in names:
        if name.startswith(".") and not include_hidden:
            # leading dot must be matched explicitly
            if not (pattern.startswith(".") or pattern.startswith(QUOTE_MARK + ".")):
                continue
        if regex.fullmatch(name):
            out.append(name)
    return sorted(out)
