"""explainshell-style command explanation from the spec library (§4:
"The tutor could use the library of specifications as a database to
either answer queries about particular commands or to guide users").
"""

from __future__ import annotations

from typing import Optional

from ..annotations.library import DEFAULT_LIBRARY
from ..annotations.model import ParClass, SpecLibrary
from ..parser import parse_one
from ..parser.ast_nodes import Pipeline, SimpleCommand
from .checks import DIAGNOSTIC_CHECKS

#: long-form rationale for lint codes, keyed by code.  Codes without an
#: entry fall back to the check function's docstring.
CHECK_EXPLANATIONS = {
    "JS2250": (
        "JS2250 unchecked pipeline failure.  POSIX sets a pipeline's "
        "exit status to its *last* stage's status, so when a producer "
        "stage (a command that reads files, like `cat big | sort`) dies "
        "on an I/O error, the consumer simply sees early end-of-input "
        "and exits 0.  The failure is silent: the script continues with "
        "truncated data.  `set -o pipefail` makes the pipeline report "
        "the first failing stage; `set -e` then also stops the script. "
        "The fault-injection layer (repro.vos.faults) demonstrates the "
        "failure mode: inject a disk-error into the producer and the "
        "unguarded pipeline still reports success."
    ),
    "JS2260": (
        "JS2260 idle worker pool.  `--jobs N` enables the S21 host "
        "worker pool, but a region only ships to it when three gates "
        "clear: the statement matches a poolable shape (cat/tr/sort/"
        "uniq pipelines), the S16 analysis issued a safe_parallel "
        "certificate for it, and the estimated input volume clears the "
        "ship floor.  When no statement in the script can ever clear "
        "the certificate gate, the requested workers will sit idle for "
        "the whole run — this warning says the flag is not doing what "
        "its user probably expects.  Fix the script shape (or drop the "
        "flag); outputs are identical either way, because the pool "
        "never changes observable behavior."
    ),
    "JS3001": (
        "JS3001 use-before-def.  The static analyzer (repro.analysis) "
        "runs reaching definitions over the script's control flow: a "
        "variable read is flagged when *no* assignment can reach it, "
        "although the script does assign it somewhere.  The two common "
        "causes are reading a variable that is only assigned later, and "
        "the subshell gotcha — `echo x | read v; echo $v` assigns v in "
        "a pipeline stage, which POSIX runs in a subshell, so the "
        "assignment never escapes.  Variables the script never assigns "
        "are assumed to come from the environment and are not flagged."
    ),
    "JS3002": (
        "JS3002 concurrent write-write race.  A background job (`cmd &`) "
        "keeps running while the statements after it execute, until a "
        "`wait` seals it.  When the analyzer's effect summaries show the "
        "job and an overlapping statement may write the same file, the "
        "final contents depend on scheduling — bytes may interleave or "
        "one writer may silently lose.  The syntactic self-clobber check "
        "(JS2094) cannot see this: each statement is individually clean. "
        "Serialize the writers or give each its own output file."
    ),
    "JS3003": (
        "JS3003 unsealed region output.  A statement consumes (or "
        "rewrites) a file a still-running background job writes (or "
        "reads): the reader may observe a partial region output because "
        "nothing orders it after the job finishes.  Insert `wait` "
        "between the job and the dependent statement so the file is "
        "sealed before it is consumed."
    ),
    "JS4001": (
        "JS4001 unreachable statement.  The abstract interpreter "
        "(repro.analysis.absint) follows every control path: a "
        "statement after an unconditional `exit`/`return`/`break` — or "
        "after a provably infinite loop — can never execute.  Either "
        "the dead code is leftovers to delete, or the early exit above "
        "it is the bug.  The optimizers use the same fact to skip "
        "compiling the region at all."
    ),
    "JS4002": (
        "JS4002 constant guard.  The interpreter's exit-status domain "
        "proved this `if`/`while` condition always succeeds (or always "
        "fails): `true`, `false`, `:`, and `test`/`[ ]` over constant "
        "values all have statically-known statuses, and constant "
        "propagation through assignments and $((...)) extends the reach. "
        "One branch of the conditional is dead — usually a sign the "
        "guard tests the wrong variable or a stale constant."
    ),
    "JS4003": (
        "JS4003 infinite loop.  The loop guard is constant-true (e.g. "
        "`while :`) and the body provably contains no `break`, `exit`, "
        "or `return` on any path — including inlined function calls — "
        "while `set -e` is off, so nothing can ever leave the loop. "
        "Statements after it are unreachable (JS4001).  Add a `break` "
        "condition or a bounded guard.  Bodies containing `kill`, "
        "`exec`, `trap`, `eval`, or `.` are given the benefit of the "
        "doubt and not flagged."
    ),
    "JS4004": (
        "JS4004 provably-unset read under set -u.  With `set -u` "
        "(nounset) in effect, expanding an unset variable aborts the "
        "shell.  The interpreter tracks variable values along every "
        "path: this read sees a variable that is explicitly `unset`, or "
        "one the script defines only *after* this point on every path. "
        "Variables never assigned anywhere in the script are assumed "
        "to come from the environment and stay silent.  This is the "
        "must-analysis sibling of JS3001's may-analysis."
    ),
    "JS4005": (
        "JS4005 dead and-or arm.  The left side of this `&&`/`||` has "
        "a constant exit status that short-circuits the operator: "
        "`false && cmd` never runs cmd, `true || cmd` never runs cmd. "
        "The right-hand side is dead code — commonly a debugging "
        "leftover (`false && slow_check`) or a confusion of `&&` with "
        "`;`."
    ),
    "JS4006": (
        "JS4006 empty loop word list.  The cardinality domain computed "
        "this `for` loop's word list statically: a constant-empty "
        "expansion (e.g. `$(seq 5 1)`, an empty variable) means the "
        "body never runs, and a glob with no match means POSIX keeps "
        "the pattern *literally* — the body runs once with e.g. "
        "`*.txt` as the value, which is almost never intended.  Guard "
        "with `[ -e \"$f\" ] || continue` or fix the range."
    ),
}


def explain_check(code: str) -> str:
    """Explain a lint diagnostic code (the tutor's 'why' database)."""
    text = CHECK_EXPLANATIONS.get(code)
    if text is not None:
        return text
    for fn in DIAGNOSTIC_CHECKS:
        doc = (fn.__doc__ or "").strip()
        # match the code anywhere in the summary line: docstrings often
        # lead with prose ("Reaching definitions (JS3001): ...")
        first_line = doc.splitlines()[0] if doc else ""
        if code in first_line:
            return doc
    return f"{code}: no explanation available"

COMMAND_SUMMARIES = {
    "cat": "concatenate files to standard output",
    "tr": "translate, squeeze, or delete characters",
    "grep": "print lines matching a pattern",
    "cut": "select character or field columns from each line",
    "sed": "stream editor: substitute / delete / print by pattern",
    "sort": "sort lines (optionally numeric, reversed, unique)",
    "uniq": "collapse adjacent duplicate lines",
    "comm": "compare two sorted files line by line (3 columns)",
    "join": "relational join of two sorted files",
    "wc": "count lines, words, and bytes",
    "head": "first lines of input",
    "tail": "last lines of input",
    "tee": "copy input to output and to files",
    "xargs": "build and run commands from standard input",
    "seq": "print numeric sequences",
    "echo": "print arguments",
    "paste": "merge corresponding lines of files",
    "rev": "reverse each line",
    "tac": "reverse line order",
    "split": "split input into fixed-size chunk files",
    "shuf": "randomly permute lines",
    "awk": "pattern-directed record processing language",
}

FLAG_DESCRIPTIONS = {
    ("grep", "v"): "invert: print non-matching lines",
    ("grep", "i"): "case-insensitive matching",
    ("grep", "c"): "print only a count of matching lines",
    ("grep", "n"): "prefix matches with line numbers",
    ("grep", "F"): "fixed-string (not regex) matching",
    ("grep", "m"): "stop after NUM matches",
    ("grep", "q"): "quiet: exit status only",
    ("sort", "r"): "reverse the ordering",
    ("sort", "n"): "numeric comparison",
    ("sort", "u"): "unique: drop duplicate keys",
    ("sort", "m"): "merge already-sorted inputs",
    ("sort", "k"): "sort by field KEY",
    ("sort", "t"): "field delimiter",
    ("sort", "o"): "write result to FILE",
    ("tr", "c"): "complement the first set",
    ("tr", "s"): "squeeze repeated output characters",
    ("tr", "d"): "delete characters in the set",
    ("cut", "c"): "select character positions",
    ("cut", "f"): "select fields",
    ("cut", "d"): "field delimiter",
    ("uniq", "c"): "prefix lines with repetition counts",
    ("uniq", "d"): "print only duplicated lines",
    ("uniq", "u"): "print only unique lines",
    ("wc", "l"): "count lines",
    ("wc", "w"): "count words",
    ("wc", "c"): "count bytes",
    ("head", "n"): "number of lines",
    ("head", "c"): "number of bytes",
    ("tail", "n"): "number of lines",
    ("comm", "1"): "suppress lines unique to file1",
    ("comm", "2"): "suppress lines unique to file2",
    ("comm", "3"): "suppress lines common to both",
}

PAR_EXPLANATIONS = {
    ParClass.STATELESS: (
        "stateless: processes each line independently — the optimizer "
        "may split its input and concatenate partial outputs"
    ),
    ParClass.PARALLELIZABLE_PURE: (
        "parallelizable (pure): partial runs merge through its "
        "aggregator"
    ),
    ParClass.NON_PARALLELIZABLE: (
        "order/position dependent: must see its whole input in order"
    ),
    ParClass.SIDE_EFFECTFUL: (
        "side-effectful: writes outside its own stdout — excluded from "
        "dataflow optimization"
    ),
}


def explain_command(argv: list[str], library: Optional[SpecLibrary] = None) -> str:
    library = library or DEFAULT_LIBRARY
    name = argv[0]
    lines = [f"{name}: {COMMAND_SUMMARIES.get(name, 'no summary available')}"]
    for arg in argv[1:]:
        if arg.startswith("-") and arg != "-" and not arg.startswith("--"):
            for flag in arg[1:]:
                desc = FLAG_DESCRIPTIONS.get((name, flag))
                if desc:
                    lines.append(f"  -{flag}: {desc}")
                elif not flag.isdigit():
                    lines.append(f"  -{flag}: (undocumented flag)")
        elif arg == "-":
            lines.append("  -: read standard input")
    spec = library.classify(name, list(argv[1:]))
    if spec is not None:
        lines.append(f"  ⇒ {PAR_EXPLANATIONS[spec.par_class]}")
        if spec.aggregator is not None and spec.par_class is ParClass.PARALLELIZABLE_PURE:
            agg = spec.aggregator
            how = " ".join(agg.argv) if agg.argv else agg.kind.value
            lines.append(f"  ⇒ aggregator: {how}")
    return "\n".join(lines)


def explain(pipeline_text: str, library: Optional[SpecLibrary] = None) -> str:
    """Explain a full pipeline stage by stage, plus what the optimizer
    would see."""
    library = library or DEFAULT_LIBRARY
    node = parse_one(pipeline_text)
    if isinstance(node, SimpleCommand):
        commands = [node]
    elif isinstance(node, Pipeline):
        commands = list(node.commands)
    else:
        return "explain: only plain pipelines are supported"
    sections = []
    parallelizable = 0
    for cmd in commands:
        if not isinstance(cmd, SimpleCommand) or not cmd.words:
            sections.append("(compound stage)")
            continue
        if not all(w.is_literal() for w in cmd.words):
            sections.append("(stage with runtime expansions — the JIT will "
                            "analyze it once values are known)")
            continue
        argv = [w.literal_value() for w in cmd.words]
        sections.append(explain_command(argv, library))
        spec = library.classify(argv[0], argv[1:])
        if spec is not None and spec.parallelizable:
            parallelizable += 1
    footer = (f"\n{parallelizable}/{len(commands)} stages are "
              f"parallelizable by annotation.")
    return "\n\n".join(sections) + footer
