"""The shell tutor (§4 'Heuristic support').

"The tutor could use the library of specifications as a database to
either answer queries about particular commands or to guide users while
they develop a script."

:func:`tutor` reviews a whole script and produces structured guidance
per statement: what each stage does (from the spec library), whether
the optimizer could parallelize it (and what blocks it), lint findings,
and rewrite suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..annotations.library import DEFAULT_LIBRARY
from ..annotations.model import ParClass, SpecLibrary
from ..dfg.from_ast import extract_region
from ..parser import parse, unparse
from ..parser.ast_nodes import (
    Command,
    CommandList,
    Pipeline,
    SimpleCommand,
    walk,
)
from ..semantics.purity import check_words
from .checks import Diagnostic, lint
from .explain import COMMAND_SUMMARIES


@dataclass
class StatementAdvice:
    text: str
    summary: list[str] = field(default_factory=list)
    optimization: str = ""
    suggestions: list[str] = field(default_factory=list)


@dataclass
class TutorReport:
    statements: list[StatementAdvice]
    diagnostics: list[Diagnostic]

    def render(self) -> str:
        lines: list[str] = []
        for i, stmt in enumerate(self.statements, 1):
            lines.append(f"statement {i}: {stmt.text}")
            for item in stmt.summary:
                lines.append(f"    {item}")
            if stmt.optimization:
                lines.append(f"  ⚙ {stmt.optimization}")
            for suggestion in stmt.suggestions:
                lines.append(f"  → {suggestion}")
        if self.diagnostics:
            lines.append("")
            lines.append("lint findings:")
            for diag in self.diagnostics:
                lines.append(f"  {diag}")
        return "\n".join(lines)


def _statement_nodes(program: CommandList):
    for item in program.items:
        yield item.command


def _pipeline_commands(node: Command) -> Optional[list[SimpleCommand]]:
    if isinstance(node, SimpleCommand):
        return [node]
    if isinstance(node, Pipeline) and all(
        isinstance(c, SimpleCommand) for c in node.commands
    ):
        return list(node.commands)
    return None


def _advise_statement(node: Command, library: SpecLibrary) -> StatementAdvice:
    advice = StatementAdvice(unparse(node))
    commands = _pipeline_commands(node)
    if commands is None:
        advice.summary.append("(compound statement: analyzed per inner command)")
        return advice

    dynamic_stage = False
    parallel_stages = 0
    blockers: list[str] = []
    for cmd in commands:
        if not cmd.words:
            continue
        if not cmd.words[0].is_literal():
            advice.summary.append("· (dynamic command name — resolved at run time)")
            dynamic_stage = True
            continue
        name = cmd.words[0].literal_value()
        summary = COMMAND_SUMMARIES.get(name, "external command")
        literal = all(w.is_literal() for w in cmd.words)
        argv = ([w.literal_value() for w in cmd.words[1:]] if literal else [])
        spec = library.classify(name, argv) if literal else library.classify(name, [])
        if not literal:
            dynamic_stage = True
        line = f"· {name}: {summary}"
        if spec is not None:
            if spec.parallelizable:
                parallel_stages += 1
            elif spec.par_class is ParClass.SIDE_EFFECTFUL:
                blockers.append(f"{name} writes outside the pipeline")
            else:
                blockers.append(f"{name} must see its whole input in order")
        else:
            blockers.append(f"{name} has no specification (unknown behaviour)")
        advice.summary.append(line)

    region = extract_region(node, library)
    purity = check_words(
        [w for cmd in commands for w in cmd.words]
    )
    if region is not None and region.parallelizable:
        advice.optimization = (
            f"{parallel_stages}/{len(commands)} stages parallelizable: "
            "an optimizer (PaSh ahead-of-time, or Jash at run time) can "
            "data-parallelize this pipeline"
        )
    elif dynamic_stage and purity.pure:
        advice.optimization = (
            "contains run-time expansions: an ahead-of-time optimizer "
            "must skip it, but Jash can expand safely (the words are "
            "side-effect free) and optimize just-in-time"
        )
    elif dynamic_stage:
        advice.optimization = (
            "expansions here have side effects "
            f"({'; '.join(purity.reasons[:2])}): even a JIT must "
            "interpret this statement"
        )
    elif blockers:
        advice.optimization = "not parallelizable: " + "; ".join(blockers[:2])

    # rewrite suggestions
    if commands and commands[0].words and commands[0].words[0].is_literal():
        first = commands[0]
        if (first.words[0].literal_value() == "cat"
                and len(first.words) == 2 and len(commands) > 1):
            nxt = commands[1]
            if nxt.words and nxt.words[0].is_literal():
                advice.suggestions.append(
                    f"`cat X | {nxt.words[0].literal_value()}` can be "
                    f"`{nxt.words[0].literal_value()} < X` — one fewer "
                    "process, and the optimizer sees the input file"
                )
    for cmd in commands:
        if not cmd.words or not cmd.words[0].is_literal():
            continue
        name = cmd.words[0].literal_value()
        argv = [w.literal_value() for w in cmd.words[1:] if w.is_literal()]
        if name == "sort" and "-u" not in argv:
            idx = commands.index(cmd)
            if idx + 1 < len(commands):
                nxt = commands[idx + 1]
                if (nxt.words and nxt.words[0].is_literal()
                        and nxt.words[0].literal_value() == "uniq"
                        and len(nxt.words) == 1):
                    advice.suggestions.append(
                        "`sort | uniq` is `sort -u` — fewer processes and "
                        "a cheaper parallel merge"
                    )
        if name == "grep" and argv and commands.index(cmd) + 1 < len(commands):
            nxt = commands[commands.index(cmd) + 1]
            if (nxt.words and nxt.words[0].is_literal()
                    and nxt.words[0].literal_value() == "wc"
                    and [w.literal_value() for w in nxt.words[1:]
                         if w.is_literal()] == ["-l"]):
                advice.suggestions.append(
                    "`grep PAT | wc -l` is `grep -c PAT` — and -c "
                    "aggregates with a cheap sum when parallelized"
                )
    return advice


def tutor(source: str, library: Optional[SpecLibrary] = None) -> TutorReport:
    """Review a script: per-statement guidance plus lint diagnostics."""
    library = library or DEFAULT_LIBRARY
    program = parse(source)
    statements = []
    for node in _statement_nodes(program):
        statements.append(_advise_statement(node, library))
    return TutorReport(statements, lint(source))
