"""Static analyses over shell ASTs (ShellCheck's role, §4 'Heuristic
support': "extending the syntactic checks of ShellCheck").

Each check walks the AST and yields diagnostics.  Codes follow a JSxxx
scheme; severities: "error" > "warning" > "info".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..annotations.library import DEFAULT_LIBRARY
from ..parser import parse
from ..parser.ast_nodes import (
    AndOr,
    Assign,
    CmdSub,
    Command,
    CommandList,
    DoubleQuoted,
    For,
    If,
    Lit,
    Param,
    Pipeline,
    Redirect,
    SimpleCommand,
    While,
    Word,
    walk,
)
from ..parser.unparse import unparse_word


@dataclass
class Diagnostic:
    code: str
    severity: str  # "error" | "warning" | "info"
    message: str
    context: str = ""
    #: the AST node the diagnostic is anchored to (position sorting)
    node: object = None
    #: 1-based source position, resolved by lint(); 0 when unanchorable
    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        ctx = f" [{self.context}]" if self.context else ""
        where = f"{self.line}:{self.col}: " if self.line else ""
        return f"{where}{self.code} {self.severity}: {self.message}{ctx}"


def _word_has_unquoted_param(word: Word) -> Optional[str]:
    """Name of a parameter expanded unquoted in this word, if any."""
    for part in word.parts:
        if isinstance(part, Param):
            return part.name
        if isinstance(part, CmdSub):
            return "$(...)"
    return None


def _is_dangerous_command(argv0: str) -> bool:
    return argv0 in ("rm", "mv", "dd", "mkfs", "shred")


DIAGNOSTIC_CHECKS = []


def check(fn):
    DIAGNOSTIC_CHECKS.append(fn)
    return fn


@check
def check_unquoted_expansion(program: Command) -> Iterator[Diagnostic]:
    """JS2086: unquoted $var undergoes splitting and globbing."""
    for node in walk(program):
        if not isinstance(node, SimpleCommand):
            continue
        for word in node.words[1:]:
            name = _word_has_unquoted_param(word)
            if name is not None:
                yield Diagnostic(
                    "JS2086", "info",
                    f"unquoted expansion of {name!r} is subject to word "
                    f"splitting and globbing; double-quote it",
                    unparse_word(word), node=node,
                )


@check
def check_dangerous_unquoted(program: Command) -> Iterator[Diagnostic]:
    """JS2115: rm/mv with an unquoted variable can take out the wrong
    files entirely (U1: 'a single typo could erase entire hard drives')."""
    for node in walk(program):
        if not isinstance(node, SimpleCommand) or not node.words:
            continue
        argv0 = node.words[0].literal_value() if node.words[0].is_literal() else None
        if argv0 is None or not _is_dangerous_command(argv0):
            continue
        for word in node.words[1:]:
            name = _word_has_unquoted_param(word)
            if name is not None:
                yield Diagnostic(
                    "JS2115", "warning",
                    f"{argv0} with unquoted {name!r}: an empty or "
                    f"space-containing value changes which files are removed",
                    unparse_word(word), node=node,
                )


@check
def check_useless_cat(program: Command) -> Iterator[Diagnostic]:
    """JS2002: `cat f | cmd` spends a process to do `cmd < f`."""
    for node in walk(program):
        if not isinstance(node, Pipeline) or len(node.commands) < 2:
            continue
        first = node.commands[0]
        if not isinstance(first, SimpleCommand) or not first.words:
            continue
        if not first.words[0].is_literal():
            continue
        if (first.words[0].literal_value() == "cat" and len(first.words) == 2
                and first.words[1].is_literal()):
            # a dynamic operand ($FILES) may expand to several files, in
            # which case cat is doing real concatenation work
            yield Diagnostic(
                "JS2002", "info",
                "useless cat: consider `cmd < file` (saves one process; "
                "also lets the optimizer see the input file directly)",
                unparse_word(first.words[1]), node=node,
            )


@check
def check_read_without_r(program: Command) -> Iterator[Diagnostic]:
    """JS2162: read without -r mangles backslashes."""
    for node in walk(program):
        if not isinstance(node, SimpleCommand) or not node.words:
            continue
        if not node.words[0].is_literal():
            continue
        if node.words[0].literal_value() != "read":
            continue
        flags = [w.literal_value() for w in node.words[1:] if w.is_literal()]
        if "-r" not in flags:
            yield Diagnostic(
                "JS2162", "info",
                "read without -r will mangle backslashes",
                node=node,
            )


@check
def check_cd_no_guard(program: Command) -> Iterator[Diagnostic]:
    """JS2164: cd can fail; guard it or the script continues in the
    wrong directory."""
    def guarded(node: Command) -> Iterator[Diagnostic]:
        # AndOr left sides are guarded by definition
        if isinstance(node, AndOr):
            yield from ()  # both sides guarded enough for this heuristic
            return
        if isinstance(node, SimpleCommand) and node.words:
            if node.words[0].is_literal() and node.words[0].literal_value() == "cd":
                yield Diagnostic(
                    "JS2164", "info",
                    "cd without a guard: use `cd ... || exit` "
                    "(or set -e) so failures do not cascade",
                    node=node,
                )
            return
        if isinstance(node, CommandList):
            for item in node.items:
                yield from guarded(item.command)
        elif isinstance(node, Pipeline):
            for cmd in node.commands:
                yield from guarded(cmd)
        elif hasattr(node, "body"):
            yield from guarded(node.body)

    yield from guarded(program)


@check
def check_clobber_input(program: Command) -> Iterator[Diagnostic]:
    """JS2094 (the classic `sort f > f`): redirecting output onto a file
    read in the same pipeline truncates it before it is read."""
    for node in walk(program):
        if isinstance(node, Pipeline):
            commands = node.commands
        elif isinstance(node, SimpleCommand):
            commands = (node,)
        else:
            continue
        reads: set[str] = set()
        writes: set[str] = set()
        for cmd in commands:
            if not isinstance(cmd, SimpleCommand):
                continue
            for word in cmd.words[1:]:
                if word.is_literal():
                    reads.add(word.literal_value())
            for redirect in cmd.redirects:
                if not redirect.target.is_literal():
                    continue
                target = redirect.target.literal_value()
                if redirect.op == "<":
                    reads.add(target)
                elif redirect.op in (">", ">>", ">|"):
                    writes.add(target)
        for path in sorted(reads & writes):
            yield Diagnostic(
                "JS2094", "error",
                f"{path!r} is both read and truncated by this pipeline: "
                f"the input is destroyed before it is fully read",
                path, node=node,
            )


@check
def check_backticks(program: Command) -> Iterator[Diagnostic]:
    """JS2006: backticks nest badly; prefer $(...)."""
    for node in walk(program):
        if isinstance(node, CmdSub) and node.backtick:
            yield Diagnostic(
                "JS2006", "info",
                "backtick command substitution: prefer $(...) "
                "(nests and quotes sanely)",
                node=node,
            )


@check
def check_glob_in_for(program: Command) -> Iterator[Diagnostic]:
    """JS2045: iterating `for x in $(ls ...)` breaks on spaces; use
    globs directly."""
    for node in walk(program):
        if not isinstance(node, For) or node.words is None:
            continue
        for word in node.words:
            for part in word.parts:
                if isinstance(part, CmdSub):
                    inner = part.command
                    for sub in walk(inner):
                        if (isinstance(sub, SimpleCommand) and sub.words
                                and sub.words[0].is_literal()
                                and sub.words[0].literal_value() == "ls"):
                            yield Diagnostic(
                                "JS2045", "warning",
                                "for x in $(ls ...): filenames with spaces "
                                "break; iterate a glob instead",
                                node=node,
                            )


@check
def check_var_assigned_spaces(program: Command) -> Iterator[Diagnostic]:
    """JS1068: `x = 1` runs a command named x; assignments take no
    spaces."""
    for node in walk(program):
        if not isinstance(node, SimpleCommand) or len(node.words) < 3:
            continue
        w0, w1 = node.words[0], node.words[1]
        if (w0.is_literal() and w1.is_literal() and w1.literal_value() == "="
                and w0.literal_value().isidentifier()):
            yield Diagnostic(
                "JS1068", "error",
                f"`{w0.literal_value()} = ...` runs the command "
                f"{w0.literal_value()!r}; remove the spaces to assign",
                node=node,
            )


def _literal_argv(node: Command) -> Optional[list[str]]:
    if not isinstance(node, SimpleCommand) or not node.words:
        return None
    if not all(w.is_literal() for w in node.words):
        return None
    return [w.literal_value() for w in node.words]


def _sets_errexit_or_pipefail(program: Command) -> bool:
    """Does the script ever run ``set -e`` / ``set -o pipefail`` (in any
    combined-flag spelling)?"""
    for node in walk(program):
        argv = _literal_argv(node)
        if not argv or argv[0] != "set":
            continue
        for i, arg in enumerate(argv[1:], start=1):
            if arg.startswith("-") and arg != "-" and "e" in arg[1:]:
                return True
            if arg == "-o" and i + 1 < len(argv) and argv[i + 1] == "pipefail":
                return True
    return False


def _status_checked_pipelines(program: Command) -> set[int]:
    """ids of Pipeline nodes whose exit status the script observes:
    conditions of if/while/until, either side of && / ||, and ``!``."""
    checked: set[int] = set()

    def mark(sub: Command) -> None:
        for node in walk(sub):
            if isinstance(node, Pipeline):
                checked.add(id(node))

    for node in walk(program):
        if isinstance(node, If):
            mark(node.cond)
            for cond, _body in node.elifs:
                mark(cond)
        elif isinstance(node, While):
            mark(node.cond)
        elif isinstance(node, AndOr):
            mark(node.left)
        elif isinstance(node, Pipeline) and node.negated:
            checked.add(id(node))
    return checked


@check
def check_unchecked_failure(program: Command) -> Iterator[Diagnostic]:
    """JS2250: a producer stage's failure vanishes — the pipeline's
    status is the last stage's, and nothing observes the rest.  A cat
    hitting EIO mid-pipe then looks exactly like a short input (the
    silent-truncation failure mode the fault-injection layer exposes);
    ``set -o pipefail`` or ``set -e`` makes it loud."""
    if _sets_errexit_or_pipefail(program):
        return
    checked = _status_checked_pipelines(program)
    for node in walk(program):
        if not isinstance(node, Pipeline) or len(node.commands) < 2:
            continue
        if id(node) in checked:
            continue
        for cmd in node.commands[:-1]:
            argv = _literal_argv(cmd)
            if argv is None:
                continue
            spec = DEFAULT_LIBRARY.classify(argv[0], argv[1:])
            if spec is None or not spec.input_operands:
                continue  # stdin-fed stages fail with their feeder
            yield Diagnostic(
                "JS2250", "info",
                f"{argv[0]} reads files and can fail, but this pipeline "
                f"discards its exit status; set -o pipefail (or set -e) "
                f"so a producer failure is not mistaken for short input",
                " ".join(argv), node=node,
            )
            break  # one diagnostic per pipeline


def resolve_positions(program: Command,
                      positions: dict[int, tuple[int, int]]) -> dict:
    """Extend the parser's statement-level (line, col) table to every
    descendant: a node inherits its innermost recorded ancestor (walk
    order visits parents first, so inner entries overwrite outer)."""
    resolved: dict[int, tuple[int, int]] = {}
    for node in walk(program):
        where = positions.get(id(node))
        if where is None:
            continue
        for sub in walk(node):
            resolved[id(sub)] = where
        resolved[id(node)] = where
    return resolved


def lint(source: str) -> list[Diagnostic]:
    """Run every registered check over a script.

    The order is deterministic across runs and interpreter processes
    (hash randomization cannot reorder it): severity first, then the
    anchor node's source position (line, col — falling back to the AST
    walk index for unanchored nodes), then code and message.  Every
    diagnostic gets ``line``/``col`` filled in from the parser's
    position side-table."""
    from ..parser import parse_with_positions

    program, positions = parse_with_positions(source)
    resolved = resolve_positions(program, positions)
    diagnostics: list[Diagnostic] = []
    for fn in DIAGNOSTIC_CHECKS:
        diagnostics.extend(fn(program))
    for d in diagnostics:
        d.line, d.col = resolved.get(id(d.node), (0, 0))
    severity_rank = {"error": 0, "warning": 1, "info": 2}
    position = {id(node): i for i, node in enumerate(walk(program))}
    unanchored = len(position)
    diagnostics.sort(key=lambda d: (
        severity_rank[d.severity],
        position.get(id(d.node), unanchored),
        d.code, d.message, d.context,
    ))
    return diagnostics


def check_jobs_eligibility(program, analysis, jobs: int):
    """JS2260: ``--jobs N`` (N > 1) was requested but no statement both
    matches a poolable region shape and carries a ``safe_parallel`` (or
    stronger) certificate — the S21 worker pool would stay idle for the
    whole run.  Not a registered check: it needs the requested job
    count, so the CLI invokes it directly when ``--jobs`` is given."""
    if jobs <= 1:
        return None
    from ..parallel_host.regions import eligible_region_count

    matched, cleared = eligible_region_count(program, analysis)
    if cleared:
        return None
    detail = (f"{matched} shape-matched region(s) lack certificates"
              if matched else
              "no statement matches a poolable region shape")
    return Diagnostic(
        "JS2260", "warning",
        f"--jobs {jobs} requested but no region carries a safe_parallel "
        f"certificate; the worker pool will stay idle",
        detail,
    )
