"""Semantic lints backed by the whole-script analyzer (S16).

The syntactic checks in :mod:`repro.lint.checks` look at one node at a
time; these consume the interprocedural facts ``repro.analysis``
computes — reaching definitions over the CFG, per-statement effect
summaries, and conflicts between concurrently-executing statements:

* **JS3001** — a variable is read at a point no definition can reach,
  although the script does define it (later, or only inside a subshell:
  the ``echo x | read v; echo $v`` gotcha);
* **JS3002** — two concurrently-running statements may write the same
  file (corrupted or order-dependent output);
* **JS3003** — a statement reads a file a still-running background job
  writes (partial output observed before ``wait`` seals the region), or
  rewrites a file a running job still reads.

They register through the same ``@check`` hook as the syntactic
checks, so ``lint()`` reports everything in one pass.
"""

from __future__ import annotations

from typing import Iterator

from ..analysis.envflow import use_before_def
from ..analysis.races import detect_races
from ..parser.ast_nodes import Command
from ..parser.unparse import unparse
from .checks import Diagnostic, check


@check
def check_use_before_def(program: Command) -> Iterator[Diagnostic]:
    """Reaching definitions (JS3001): a variable the script defines is
    read at a point no definition can reach."""
    for use in use_before_def(program):
        yield Diagnostic(
            "JS3001", "warning",
            f"${use.name} is read before any definition can reach it: "
            f"the assignment happens later, or in a subshell "
            f"(pipeline stage, $(...), or background job) whose "
            f"variables do not escape",
            unparse(use.node), node=use.node,
        )


@check
def check_concurrent_conflicts(program: Command) -> Iterator[Diagnostic]:
    """Race detection (JS3002, JS3003): a background job's file effects
    overlap a statement that runs before ``wait`` seals the job."""
    for race in detect_races(program):
        if race.kind == "write-write":
            yield Diagnostic(
                "JS3002", "error",
                f"concurrent writers to {race.path}: `{race.job_text} &` "
                f"is still running while `{race.stmt_text}` writes the "
                f"same file; the result depends on scheduling",
                race.path, node=race.stmt_node,
            )
        elif race.kind == "read-before-seal":
            yield Diagnostic(
                "JS3003", "warning",
                f"{race.path} is read before the background job writing "
                f"it is sealed: `{race.stmt_text}` may observe partial "
                f"output of `{race.job_text} &`; insert `wait` first",
                race.path, node=race.stmt_node,
            )
        else:  # write-under-read
            yield Diagnostic(
                "JS3003", "warning",
                f"{race.path} is rewritten while the background job "
                f"`{race.job_text} &` may still be reading it; "
                f"insert `wait` before `{race.stmt_text}`",
                race.path, node=race.stmt_node,
            )
