"""Spec-driven command misuse detection (§4 'Heuristic support').

"Building on the JIT execution framework and the command specification
libraries, one could develop a sound JIT analysis that detects command
misuse at runtime (but still before it occurs)."

:class:`MisuseGuard` is an interpreter hook that *never executes
anything itself*: it inspects each expanded command just before it runs
(full runtime information, so no false alarms about unexpanded
variables) and records/report findings.  In ``enforce`` mode a finding
with severity "error" blocks the command (exit 125) instead of letting
it destroy data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..annotations.library import DEFAULT_LIBRARY
from ..annotations.model import SpecLibrary
from ..commands.base import REGISTRY
from ..jit.frontend import expand_region, pipeline_stages, purity_reason
from ..parser.ast_nodes import Command
from ..parser.unparse import unparse
from ..vos.fs import normalize

#: flags each command understands (operand-level misuse detection)
KNOWN_FLAGS: dict[str, set[str]] = {
    "cat": set("u"),
    "tr": set("cCsd"),
    "grep": set("vicnqFlxem"),
    "cut": set("scfd"),
    "sort": set("rnumckto"),
    "uniq": set("cdu"),
    "head": set("qnc"),
    "tail": set("qnc"),
    "wc": set("lwc"),
    "comm": set("123"),
    "rm": set("rf"),
    "mkdir": set("p"),
    "ls": set("la1"),
    "sed": set("ne"),
    "awk": set("Fv"),
}


@dataclass
class Finding:
    code: str
    severity: str
    message: str
    command: str


@dataclass
class MisuseConfig:
    library: SpecLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)
    #: block commands with error-severity findings
    enforce: bool = False


class MisuseGuard:
    """Interpreter optimizer-hook that checks, warns, and (optionally)
    blocks — then lets the interpreter run the command normally."""

    def __init__(self, config: Optional[MisuseConfig] = None):
        self.config = config or MisuseConfig()
        self.findings: list[Finding] = []

    def try_execute(self, interp, proc, node: Command):
        stages = pipeline_stages(node)
        if stages is None:
            return None
            yield  # pragma: no cover - generator shape
        if purity_reason(stages) is not None:
            return None  # cannot expand soundly; stay out of the way
        region = yield from expand_region(interp, proc, stages,
                                          self.config.library)
        argvs: list[list[str]]
        stdin_file = stdout_file = None
        if region is not None:
            argvs = [s.argv for s in region.stages]
            stdin_file = region.stages[0].stdin_file
            stdout_file = region.stages[-1].stdout_file
        else:
            # unknown/side-effectful commands have no region, but their
            # expanded argvs can still be checked
            from ..semantics.expansion import expand_words

            argvs = []
            for stage in stages:
                argv = yield from expand_words(interp, proc, stage.words)
                if argv:
                    argvs.append(argv)
        text = unparse(node)
        blocking = False
        for argv in argvs:
            blocking |= self._check_argv(argv, proc, interp, text)
        # pipeline-level: output clobbers an input that is still unread
        if stdout_file is not None:
            inputs = set()
            if stdin_file is not None:
                inputs.add(normalize(stdin_file, interp.state.cwd))
            for stage in region.stages:
                args = stage.argv[1:]
                for idx in stage.spec.input_operands:
                    if idx < len(args):
                        inputs.add(normalize(args[idx], interp.state.cwd))
            if normalize(stdout_file, interp.state.cwd) in inputs:
                self.findings.append(Finding(
                    "JM001", "error",
                    f"output redirection truncates input file "
                    f"{stdout_file!r} before it is read", text,
                ))
                blocking = True
        if blocking and self.config.enforce:
            yield from interp.write_err(
                proc, f"jash-guard: blocked: {self.findings[-1].message}"
            )
            return 125
        return None

    def _check_argv(self, argv: list[str], proc, interp, text: str) -> bool:
        """Record findings for one expanded argv; returns True when an
        error-severity finding should block."""
        name = argv[0]
        blocking = False
        if name not in REGISTRY and name not in ("cd", "read", "echo"):
            spec = self.config.library.get(name)
            if spec is None:
                self.findings.append(Finding(
                    "JM404", "warning",
                    f"{name!r}: unknown command (no spec, not installed)",
                    text,
                ))
                return False
        known = KNOWN_FLAGS.get(name)
        spec = self.config.library.classify(name, argv[1:])
        if known is not None:
            for arg in argv[1:]:
                if arg.startswith("--") or arg == "-":
                    continue
                if arg.startswith("-") and not arg[1:].isdigit():
                    bad = set(arg[1:]) - known - set("0123456789")
                    if bad:
                        self.findings.append(Finding(
                            "JM002", "warning",
                            f"{name}: unrecognized flag(s) "
                            f"{''.join(sorted(bad))!r}", text,
                        ))
        # missing input files: fail before spawning the pipeline
        if spec is not None and spec.input_operands:
            args = argv[1:]
            for idx in spec.input_operands:
                if idx >= len(args) or args[idx] == "-":
                    continue
                path = normalize(args[idx], interp.state.cwd)
                if not proc.fs.exists(path):
                    self.findings.append(Finding(
                        "JM003", "warning",
                        f"{name}: input file {args[idx]!r} does not exist "
                        f"(detected before execution)", text,
                    ))
        # rm with glob-expanded everything
        if name == "rm":
            targets = [a for a in argv[1:] if not a.startswith("-")]
            if any(t in ("/", "/*") for t in targets):
                self.findings.append(Finding(
                    "JM911", "error",
                    "rm of the filesystem root requested", text,
                ))
                blocking = True
        return blocking

    def report(self) -> str:
        return "\n".join(
            f"[{f.severity:>7}] {f.code}: {f.message}" for f in self.findings
        )
