"""S13 — heuristic support: static lint checks, JIT-time misuse
detection, spec-driven command explanation, and the shell tutor."""

from .checks import Diagnostic, lint
from .explain import explain, explain_command
from .misuse import Finding, MisuseConfig, MisuseGuard
from .tutor import StatementAdvice, TutorReport, tutor

__all__ = ["Diagnostic", "lint", "explain", "explain_command",
           "Finding", "MisuseConfig", "MisuseGuard",
           "StatementAdvice", "TutorReport", "tutor"]
