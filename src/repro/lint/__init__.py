"""S13 — heuristic support: static lint checks, JIT-time misuse
detection, spec-driven command explanation, and the shell tutor."""

from . import semantic  # noqa: F401  (registers the analysis-backed checks)
from . import valueflow  # noqa: F401  (registers the S20 absint checks)
from .checks import Diagnostic, check_jobs_eligibility, lint
from .explain import CHECK_EXPLANATIONS, explain, explain_check, explain_command
from .misuse import Finding, MisuseConfig, MisuseGuard
from .tutor import StatementAdvice, TutorReport, tutor

__all__ = ["Diagnostic", "lint", "CHECK_EXPLANATIONS", "explain",
           "explain_check", "explain_command", "check_jobs_eligibility",
           "Finding", "MisuseConfig", "MisuseGuard",
           "StatementAdvice", "TutorReport", "tutor"]
