"""Value-flow lints backed by the S20 abstract interpreter.

The S16-backed checks in :mod:`repro.lint.semantic` consume reaching
definitions and effect summaries; these consume the three-domain
value-flow facts :mod:`repro.analysis.absint` computes — constant
propagation, abstract exit statuses, and loop cardinalities:

* **JS4001** — unreachable statement (code after an unconditional
  ``exit``/``return``/``break``, or after a provably infinite loop);
* **JS4002** — a guard whose exit status is constant: the ``if``/
  ``while`` always takes the same branch;
* **JS4003** — ``while :`` (or ``until false``) whose body provably
  contains no ``break``/``exit``/``return``: the loop never ends;
* **JS4004** — reading a variable that is provably unset at that point
  while a constant ``set -u`` is in effect: the shell will abort;
* **JS4005** — a constant exit status short-circuits ``&&``/``||``:
  the right-hand side never runs;
* **JS4006** — a ``for`` loop over a provably-empty word list (e.g.
  ``$(seq 5 1)``), or over a glob with no match (the body then runs
  once over the literal pattern — almost never what was meant).

Severity: JS4004 is an error (the script provably aborts); the rest are
warnings.  They register through the same ``@check`` hook as every
other lint, so ``lint()`` reports them in one deterministic pass.
"""

from __future__ import annotations

from typing import Iterator

from ..analysis.absint import analyze_value_flow
from ..parser.ast_nodes import Command
from .checks import Diagnostic, check

#: finding code -> severity; everything the interpreter proves is at
#: least a warning, and a provable `set -u` abort is an error
_SEVERITY = {
    "JS4001": "warning",
    "JS4002": "warning",
    "JS4003": "warning",
    "JS4004": "error",
    "JS4005": "warning",
    "JS4006": "warning",
}


@check
def check_value_flow(program: Command) -> Iterator[Diagnostic]:
    """Abstract interpretation (JS4001-JS4006): constant values, exit
    statuses, and loop cardinalities prove dead or aborting code."""
    result = analyze_value_flow(program)
    for finding in result.findings:
        yield Diagnostic(
            finding.code, _SEVERITY.get(finding.code, "warning"),
            finding.message, finding.context, node=finding.node,
        )
