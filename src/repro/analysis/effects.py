"""Effect summaries: abstract read/write file sets and environment
def/use sets, per AST node (S16).

A summary answers two questions the certificate layer and the race
detector need:

* which files *may* this statement read or write (as
  :class:`~repro.analysis.paths.AbstractPath` sets)?
* which shell variables does it define and use?

File effects come from three sources: redirections, the annotation
library's per-invocation specs (``input_operands`` name the read files,
``output_files`` the written ones), and hard-wired rules for the
filesystem-mutating commands the library only marks SIDE_EFFECTFUL
(``rm``/``mv``/``cp``/``touch``/``mkdir``/``tee``).  Unknown commands
make a summary *opaque* — the analyzer then refuses to certify or to
report races involving it, rather than guessing.

Function definitions are summarized once and inlined at call sites
(the interprocedural half of the analysis), with a recursion guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..annotations.library import DEFAULT_LIBRARY
from ..annotations.model import SpecLibrary
from ..parser.ast_nodes import (
    AndOr,
    ArithSub,
    BraceGroup,
    Case,
    CmdSub,
    Command,
    CommandList,
    DoubleQuoted,
    For,
    FuncDef,
    If,
    Param,
    Pipeline,
    Redirect,
    SimpleCommand,
    Subshell,
    While,
    Word,
)
from ..semantics.builtins import REGULAR_BUILTINS, SPECIAL_BUILTINS
from .paths import AbstractPath, may_alias, word_to_path

#: commands whose filesystem effects the library does not itemize
#: (it only marks them SIDE_EFFECTFUL); modelled here by hand.
_WRITES_OPERANDS = ("rm", "touch", "mkdir", "shred", "mkfs")

READ_REDIRECTS = ("<", "<>")
WRITE_REDIRECTS = (">", ">>", ">|")


@dataclass
class EffectSummary:
    """Abstract effects of one AST subtree."""

    reads: set[AbstractPath] = field(default_factory=set)
    writes: set[AbstractPath] = field(default_factory=set)
    env_uses: set[str] = field(default_factory=set)
    env_defs: set[str] = field(default_factory=set)
    #: contains a command the library cannot classify: effects unknown
    opaque: bool = False
    #: contains a background job (``&``) somewhere inside
    spawns: bool = False

    def merge(self, other: "EffectSummary") -> None:
        self.reads |= other.reads
        self.writes |= other.writes
        self.env_uses |= other.env_uses
        self.env_defs |= other.env_defs
        self.opaque = self.opaque or other.opaque
        self.spawns = self.spawns or other.spawns

    def to_dict(self) -> dict:
        def paths(ps):
            return sorted(p.display() for p in ps)

        return {
            "reads": paths(self.reads),
            "writes": paths(self.writes),
            "env_uses": sorted(self.env_uses),
            "env_defs": sorted(self.env_defs),
            "opaque": self.opaque,
            "spawns": self.spawns,
        }


@dataclass(frozen=True)
class Conflict:
    """One pair of abstract paths that may name the same file with at
    least one write involved."""

    kind: str  # "write-write" | "write-read" | "read-write"
    path: AbstractPath
    other: AbstractPath

    def display(self) -> str:
        return f"{self.kind} on {self.path.display()} / {self.other.display()}"


def conflicts(a: EffectSummary, b: EffectSummary,
              include_top: bool = False) -> list[Conflict]:
    """Memory-model conflicts between two summaries executing
    concurrently: write-write, write-read (``a`` writes what ``b``
    reads) and read-write.  ⊤ paths are excluded unless
    ``include_top`` — they alias everything and would drown the report.
    """
    out: list[Conflict] = []

    def scan(kind, left, right):
        for p in sorted(left, key=lambda x: (x.kind, x.text)):
            if p.is_top and not include_top:
                continue
            for q in sorted(right, key=lambda x: (x.kind, x.text)):
                if q.is_top and not include_top:
                    continue
                if may_alias(p, q):
                    out.append(Conflict(kind, p, q))

    scan("write-write", a.writes, b.writes)
    scan("write-read", a.writes, b.reads)
    scan("read-write", a.reads, b.writes)
    return out


def self_conflicts(s: EffectSummary) -> list[Conflict]:
    """Paths a single region both writes and reads (the ``sort f > f``
    shape): its own parallelization hazard list."""
    out: list[Conflict] = []
    for w in sorted(s.writes, key=lambda x: (x.kind, x.text)):
        for r in sorted(s.reads, key=lambda x: (x.kind, x.text)):
            if not w.is_top and not r.is_top and may_alias(w, r):
                out.append(Conflict("write-read", w, r))
    return out


class EffectAnalyzer:
    """Computes :class:`EffectSummary` per node against a spec library
    and the program's function table."""

    def __init__(self, library: SpecLibrary | None = None):
        self.library = library or DEFAULT_LIBRARY
        self.functions: dict[str, Command] = {}
        self._stack: list[str] = []  # recursion guard for function inlining
        self._cache: dict[int, EffectSummary] = {}

    # -- functions ----------------------------------------------------------------

    def register_functions(self, program: Command) -> None:
        from ..parser.ast_nodes import walk

        for node in walk(program):
            if isinstance(node, FuncDef):
                self.functions[node.name] = node.body

    # -- entry point --------------------------------------------------------------

    def compute(self, node: Command) -> EffectSummary:
        cached = self._cache.get(id(node))
        if cached is not None:
            return cached
        summary = self._compute(node)
        self._cache[id(node)] = summary
        return summary

    def _compute(self, node: Command) -> EffectSummary:
        s = EffectSummary()
        if isinstance(node, SimpleCommand):
            self._simple(node, s)
        elif isinstance(node, Pipeline):
            for cmd in node.commands:
                s.merge(self.compute(cmd))
        elif isinstance(node, AndOr):
            s.merge(self.compute(node.left))
            s.merge(self.compute(node.right))
        elif isinstance(node, CommandList):
            for item in node.items:
                s.merge(self.compute(item.command))
                if item.is_async:
                    s.spawns = True
        elif isinstance(node, (Subshell, BraceGroup)):
            s.merge(self.compute(node.body))
            self._redirects(node.redirects, s)
        elif isinstance(node, If):
            s.merge(self.compute(node.cond))
            s.merge(self.compute(node.then_body))
            for cond, body in node.elifs:
                s.merge(self.compute(cond))
                s.merge(self.compute(body))
            if node.else_body is not None:
                s.merge(self.compute(node.else_body))
            self._redirects(node.redirects, s)
        elif isinstance(node, While):
            s.merge(self.compute(node.cond))
            s.merge(self.compute(node.body))
            self._redirects(node.redirects, s)
        elif isinstance(node, For):
            s.env_defs.add(node.var)
            for word in node.words or ():
                self._word_uses(word, s)
            s.merge(self.compute(node.body))
            self._redirects(node.redirects, s)
        elif isinstance(node, Case):
            self._word_uses(node.word, s)
            for item in node.items:
                for pat in item.patterns:
                    self._word_uses(pat, s)
                if item.body is not None:
                    s.merge(self.compute(item.body))
            self._redirects(node.redirects, s)
        elif isinstance(node, FuncDef):
            pass  # defining a function has no effect; calls inline the body
        return s

    # -- simple commands ----------------------------------------------------------

    def _simple(self, node: SimpleCommand, s: EffectSummary) -> None:
        for assign in node.assigns:
            self._word_uses(assign.word, s)
            s.env_defs.add(assign.name)
        for word in node.words:
            self._word_uses(word, s)
        self._redirects(node.redirects, s)
        if not node.words:
            return
        head = node.words[0]
        name = head.literal_value() if head.is_literal() else None
        if name is None:
            s.opaque = True  # dynamically-named command: anything goes
            return
        if name in self.functions:
            self._call(name, s)
            return
        operands = [w for w in node.words[1:]
                    if not (w.is_literal()
                            and w.literal_value().startswith("-")
                            and w.literal_value() != "-")]
        if name in _WRITES_OPERANDS:
            s.writes.update(word_to_path(w) for w in operands)
            return
        if name == "mv":
            for w in operands:
                s.writes.add(word_to_path(w))
            for w in operands[:-1]:
                s.reads.add(word_to_path(w))
            return
        if name == "cp":
            if operands:
                s.writes.add(word_to_path(operands[-1]))
                s.reads.update(word_to_path(w) for w in operands[:-1])
            return
        if name == "tee":
            s.writes.update(word_to_path(w) for w in operands)
            return
        if name in ("read", "export", "readonly", "unset", "local"):
            for w in operands:
                if w.is_literal():
                    s.env_defs.add(w.literal_value().partition("=")[0])
            return
        if name in SPECIAL_BUILTINS or name in REGULAR_BUILTINS:
            return  # no file effects beyond redirects
        spec = self.library.classify(name, self._placeholder_argv(node))
        if spec is None:
            s.opaque = True
            return
        for idx in spec.input_operands:
            if idx < len(node.words) - 1:
                s.reads.add(word_to_path(node.words[idx + 1]))
        for out in spec.output_files:
            # output_files come back as argv strings; re-abstract them
            # through the matching word when one exists
            for w in node.words[1:]:
                if w.is_literal() and w.literal_value() == out:
                    s.writes.add(word_to_path(w))
                    break

    def _call(self, name: str, s: EffectSummary) -> None:
        if name in self._stack:
            s.opaque = True  # recursive function: give up on precision
            return
        self._stack.append(name)
        try:
            s.merge(self.compute(self.functions[name]))
        finally:
            self._stack.pop()

    @staticmethod
    def _placeholder_argv(node: SimpleCommand) -> list[str]:
        """argv for classification: literal words verbatim, dynamic words
        as a non-flag placeholder (so operand positions line up)."""
        return [w.literal_value() if w.is_literal() else "\x00dyn"
                for w in node.words[1:]]

    # -- shared helpers -----------------------------------------------------------

    def _redirects(self, redirects: tuple[Redirect, ...], s: EffectSummary) -> None:
        for redirect in redirects:
            if redirect.op in ("<<", "<<-", "<&", ">&"):
                continue  # heredocs and fd-dups touch no named file
            self._word_uses(redirect.target, s)
            path = word_to_path(redirect.target)
            if redirect.op in READ_REDIRECTS:
                s.reads.add(path)
            elif redirect.op in WRITE_REDIRECTS:
                s.writes.add(path)

    def _word_uses(self, word: Word, s: EffectSummary) -> None:
        """Variable uses inside a word (including nested expansions); a
        command substitution contributes its command's reads and uses
        (its writes happen in a subshell but still touch the fs)."""
        for part in word.parts:
            self._part_uses(part, s)

    def _part_uses(self, part, s: EffectSummary) -> None:
        if isinstance(part, Param):
            s.env_uses.add(part.name)
            if part.op.lstrip(":") in ("=",):
                s.env_defs.add(part.name)
            if part.word is not None:
                self._word_uses(part.word, s)
        elif isinstance(part, DoubleQuoted):
            for sub in part.parts:
                self._part_uses(sub, s)
        elif isinstance(part, ArithSub):
            for sub in part.parts:
                self._part_uses(sub, s)
        elif isinstance(part, CmdSub):
            s.merge(self.compute(part.command))
