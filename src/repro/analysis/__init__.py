"""S16 — whole-script static effect analysis.

The compile-once pass over the shell AST that the JIT (S9) and the AOT
compiler (S7) consult instead of re-deriving safety per run:

* :mod:`repro.analysis.paths`        — the abstract-path lattice
  (literal / glob-prefix / expansion-prefix / ⊤);
* :mod:`repro.analysis.effects`      — per-node effect summaries
  (abstract file read/write sets, variable def/use sets);
* :mod:`repro.analysis.envflow`      — reaching definitions over the
  structured CFG; use-before-def detection;
* :mod:`repro.analysis.races`        — write-write / read-before-seal /
  write-under-read conflicts between concurrent statements;
* :mod:`repro.analysis.certificates` — signed SafetyCertificates
  (``safe_parallel`` / ``safe_reorder`` / ``unsafe``) keyed by AST node;
* :mod:`repro.analysis.absint`       — the S20 abstract interpreter
  (value / exit-status / cardinality domains) producing dead-branch
  facts, JS4xxx findings, and quantitative CostCertificates.

Entry point: :func:`analyze_program`; CLI: ``jash check``.
"""

from .absint import (
    ABSINT_VERSION,
    AbsintResult,
    AbsStatus,
    AbsValue,
    CostCertificate,
    Finding,
    analyze_value_flow,
    make_cost_certificate,
)
from .candidates import pipeline_stages, purity_reason
from .certificates import (
    ANALYZER_VERSION,
    SAFE_PARALLEL,
    SAFE_REORDER,
    UNKNOWN,
    UNSAFE,
    AnalysisResult,
    SafetyCertificate,
    analyze_program,
    make_certificate,
)
from .effects import Conflict, EffectAnalyzer, EffectSummary, conflicts
from .envflow import VarUse, use_before_def
from .paths import AbstractPath, TOP, may_alias, word_to_path
from .races import RaceFinding, detect_races

__all__ = [
    "ANALYZER_VERSION", "SAFE_PARALLEL", "SAFE_REORDER", "UNKNOWN", "UNSAFE",
    "AnalysisResult", "SafetyCertificate", "analyze_program",
    "make_certificate",
    "Conflict", "EffectAnalyzer", "EffectSummary", "conflicts",
    "VarUse", "use_before_def",
    "AbstractPath", "TOP", "may_alias", "word_to_path",
    "RaceFinding", "detect_races",
    "pipeline_stages", "purity_reason",
    "ABSINT_VERSION", "AbsintResult", "AbsStatus", "AbsValue",
    "CostCertificate", "Finding", "analyze_value_flow",
    "make_cost_certificate",
]
