"""Candidate-region shape and expansion-purity checks.

This is the *shared* front half of both the static analyzer and the JIT
front-end (:mod:`repro.jit.frontend` re-exports these): a node is a
dataflow-region candidate when it is a flat pipeline of simple commands,
and its words may be expanded early only when expansion is side-effect
free.  Keeping one implementation here guarantees the analyzer's static
verdicts and the JIT's runtime pre-screen can never disagree.
"""

from __future__ import annotations

from typing import Optional

from ..parser.ast_nodes import Command, Pipeline, SimpleCommand
from ..semantics.purity import check_word, check_words


def pipeline_stages(node: Command) -> Optional[list[SimpleCommand]]:
    """The simple-command stages of a flat pipeline; None when the node
    has shapes the dataflow fragment does not cover."""
    if isinstance(node, SimpleCommand):
        stages = [node]
    elif isinstance(node, Pipeline) and not node.negated:
        if not all(isinstance(c, SimpleCommand) for c in node.commands):
            return None
        stages = list(node.commands)
    else:
        return None
    for stage in stages:
        if stage.assigns:
            return None
        for redirect in stage.redirects:
            if redirect.op in ("<<", "<<-", "<&", ">&"):
                return None
    return stages


def purity_reason(stages: list[SimpleCommand], allow_pure_cmdsub: bool = False,
                  pure_commands: frozenset = frozenset()) -> Optional[str]:
    """Why early expansion would be unsound, or None when it is safe."""
    for stage in stages:
        report = check_words(stage.words, allow_pure_cmdsub, pure_commands)
        if not report.pure:
            return "; ".join(report.reasons)
        for redirect in stage.redirects:
            report = check_word(redirect.target, allow_pure_cmdsub,
                                pure_commands)
            if not report.pure:
                return "; ".join(report.reasons)
    return None
