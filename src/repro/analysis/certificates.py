"""Signed safety certificates and the whole-script analyzer (S16).

``analyze_program`` is the compile-once pass the engines consult instead
of re-deriving safety on the hot path.  For every candidate dataflow
region (a flat pipeline of simple commands — the same shape test the JIT
uses, see :mod:`repro.analysis.candidates`) it issues a
:class:`SafetyCertificate`:

* ``unsafe(reason)``   — early expansion has side effects; the exact
  verdict the runtime purity walk would reach, precomputed.  The JIT
  skips the node without walking it again.
* ``safe_parallel``    — expansion is provably side-effect free: the JIT
  may expand early and hand the region to the optimizer.  Hazards
  (e.g. the region writes a file it also reads) are attached for the
  lint layer but do not veto the certificate — the runtime engine's
  decision must stay bit-identical with and without the analyzer.
* ``safe_reorder``     — additionally the region writes nothing (files
  or variables): it commutes with any effect-disjoint statement.
* ``unknown``          — never stored; a missing certificate *is* the
  unknown verdict, and the engine falls back to the runtime check.

Certificates are signed: the digest covers the analyzer version, the
unparsed region text, and the verdict, so a consumer can detect a
certificate applied to a node it was not computed for.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..annotations.library import DEFAULT_LIBRARY
from ..annotations.model import SpecLibrary
from ..parser.ast_nodes import Command, CommandList, walk
from ..parser.unparse import unparse
from .candidates import pipeline_stages, purity_reason
from .effects import EffectAnalyzer, EffectSummary, self_conflicts
from .envflow import VarUse, use_before_def
from .races import RaceFinding, detect_races

ANALYZER_VERSION = "s16.1"

SAFE_PARALLEL = "safe_parallel"
SAFE_REORDER = "safe_reorder"
UNSAFE = "unsafe"
UNKNOWN = "unknown"


def _sign(node_text: str, verdict: str, reason: str) -> str:
    payload = "\x00".join((ANALYZER_VERSION, node_text, verdict, reason))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class SafetyCertificate:
    verdict: str          # SAFE_PARALLEL | SAFE_REORDER | UNSAFE
    reason: str           # why (impurity reason, or the safety argument)
    node_text: str        # unparsed region the verdict covers
    digest: str           # signature over (version, text, verdict, reason)
    hazards: tuple[str, ...] = ()  # advisory conflicts (lint layer)

    @property
    def safe(self) -> bool:
        return self.verdict in (SAFE_PARALLEL, SAFE_REORDER)

    def verify(self) -> bool:
        """Re-derive the signature; False means tampered/mismatched."""
        return self.digest == _sign(self.node_text, self.verdict, self.reason)

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "reason": self.reason,
            "node": self.node_text,
            "digest": self.digest,
            "hazards": list(self.hazards),
        }


def make_certificate(verdict: str, reason: str, node_text: str,
                     hazards: tuple[str, ...] = ()) -> SafetyCertificate:
    return SafetyCertificate(verdict, reason, node_text,
                             _sign(node_text, verdict, reason), hazards)


@dataclass
class StatementReport:
    """One statement-level entry of the whole-script report."""

    text: str
    summary: EffectSummary
    is_async: bool = False

    def to_dict(self) -> dict:
        d = {"statement": self.text, "effects": self.summary.to_dict()}
        if self.is_async:
            d["async"] = True
        return d


@dataclass
class AnalysisResult:
    """Everything one ``analyze_program`` pass learned."""

    #: id(node) -> certificate, for every candidate region
    certificates: dict[int, SafetyCertificate] = field(default_factory=dict)
    #: the same certificates in walk order (stable for reports)
    cert_list: list[SafetyCertificate] = field(default_factory=list)
    statements: list[StatementReport] = field(default_factory=list)
    races: list[RaceFinding] = field(default_factory=list)
    use_before_def: list[VarUse] = field(default_factory=list)
    #: the S20 value-flow result (AbsintResult), when the pass ran
    absint: object = None
    #: the analyzed program (kept so id()-keyed certificates stay valid)
    program: object = None

    def stats(self) -> dict:
        by_verdict: dict[str, int] = {}
        for cert in self.cert_list:
            by_verdict[cert.verdict] = by_verdict.get(cert.verdict, 0) + 1
        out = {
            "statements": len(self.statements),
            "certificates": len(self.cert_list),
            "safe_parallel": by_verdict.get(SAFE_PARALLEL, 0),
            "safe_reorder": by_verdict.get(SAFE_REORDER, 0),
            "unsafe": by_verdict.get(UNSAFE, 0),
            "races": len(self.races),
            "use_before_def": len(self.use_before_def),
        }
        if self.absint is not None:
            out.update(self.absint.stats())
        return out

    def dead_nodes(self) -> frozenset:
        """ids of provably-dead nodes (empty when value flow was off)."""
        if self.absint is None:
            return frozenset()
        return frozenset(self.absint.dead)

    def cost_certificate(self, node) -> object:
        """The CostCertificate covering ``node``, or None."""
        if self.absint is None:
            return None
        return self.absint.cost_certificates.get(id(node))

    def to_dict(self) -> dict:
        out = {
            "analyzer": ANALYZER_VERSION,
            "summary": self.stats(),
            "statements": [s.to_dict() for s in self.statements],
            "certificates": [c.to_dict() for c in self.cert_list],
            "races": [r.to_dict() for r in self.races],
            "use_before_def": [
                {"name": u.name, "statement": unparse(u.node)}
                for u in self.use_before_def
            ],
        }
        if self.absint is not None:
            out["value_flow"] = self.absint.to_dict()
        return out


def analyze_program(program: Command,
                    library: SpecLibrary | None = None,
                    allow_pure_cmdsub: bool = False,
                    pure_commands: frozenset = frozenset(),
                    value_flow: bool = True,
                    fs=None, cwd: str = "/") -> AnalysisResult:
    """The interprocedural whole-script pass.

    ``allow_pure_cmdsub``/``pure_commands`` must match the consuming
    engine's configuration — the purity verdicts are only transferable
    when both sides ask the same question.

    ``value_flow`` additionally runs the S20 abstract interpreter
    (:mod:`repro.analysis.absint`): provably-dead regions then get no
    safety certificate (they can never be executed, and a wrong dead
    fact only costs a cert miss — the runtime purity walk reaches the
    identical decision), and loops/regions gain CostCertificates.
    ``fs``/``cwd`` optionally ground the volume domain in a virtual
    filesystem snapshot."""
    library = library or DEFAULT_LIBRARY
    effects = EffectAnalyzer(library)
    effects.register_functions(program)
    result = AnalysisResult(program=program)
    dead: frozenset = frozenset()
    if value_flow:
        from .absint import analyze_value_flow

        result.absint = analyze_value_flow(program, fs=fs, cwd=cwd,
                                           library=library)
        dead = frozenset(result.absint.dead)

    inside_pipeline: set[int] = set()
    for node in walk(program):
        from ..parser.ast_nodes import Pipeline

        if isinstance(node, Pipeline):
            for stage in node.commands:
                inside_pipeline.add(id(stage))

    for node in walk(program):
        if isinstance(node, CommandList):
            for item in node.items:
                result.statements.append(StatementReport(
                    unparse(item.command), effects.compute(item.command),
                    item.is_async))
        stages = pipeline_stages(node)
        if stages is None:
            continue
        if id(node) in dead:
            continue  # provably never executes: nothing to certify
        text = unparse(node)
        impure = purity_reason(stages, allow_pure_cmdsub, pure_commands)
        if impure is not None:
            cert = make_certificate(UNSAFE, impure, text)
        else:
            summary = effects.compute(node)
            hazards = tuple(c.display() for c in self_conflicts(summary))
            if summary.opaque:
                hazards += ("contains a command with unknown effects",)
            if not summary.writes and not summary.env_defs and not summary.opaque:
                cert = make_certificate(
                    SAFE_REORDER,
                    "expansion is pure and the region writes nothing",
                    text, hazards)
            else:
                cert = make_certificate(
                    SAFE_PARALLEL, "expansion is side-effect free",
                    text, hazards)
        result.certificates[id(node)] = cert
        result.cert_list.append(cert)

    result.races = detect_races(program, effects)
    result.use_before_def = use_before_def(program)
    return result
