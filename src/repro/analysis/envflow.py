"""Reaching definitions for shell variables over the structured CFG.

Walks the AST in execution order maintaining the *may-defined* variable
set, with the control-flow joins the shell's constructs induce:

* ``if``/``case`` — defs from any branch may reach the join (union);
* ``while``/``for``/``until`` — the loop body is visited twice so defs
  flowing around the back edge reach uses at the loop head (a two-pass
  fixpoint: the may-defined union is monotone and one extra pass
  saturates it);
* ``&&``/``||`` — left always runs; right's defs may reach onward;
* **pipelines** with ≥2 stages and ``$(...)``/``(...)``/``&`` bodies run
  in subshells: their defs are collected (for the defined-*somewhere*
  filter) but do not escape — which is exactly how the classic
  ``echo x | read v; echo $v`` gotcha becomes statically detectable;
* function bodies are inlined at call sites (defs escape, POSIX
  variables are global) with a recursion guard.

A *use-before-def* is reported for a variable that is read at a point
where no definition may reach it **and** is defined somewhere in the
script — variables never defined anywhere are assumed to come from the
parent environment and stay silent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parser.ast_nodes import (
    AndOr,
    ArithSub,
    BraceGroup,
    Case,
    CmdSub,
    Command,
    CommandList,
    DoubleQuoted,
    For,
    FuncDef,
    If,
    Param,
    Pipeline,
    Redirect,
    SimpleCommand,
    Subshell,
    While,
    Word,
)

#: parameters that are never script-defined variables ($1, $?, $@, ...)
_SPECIAL = frozenset("0123456789*@#?-$!")


@dataclass(frozen=True)
class VarUse:
    """One variable read with no reaching definition."""

    name: str
    #: the innermost statement node containing the use (for positions)
    node: object
    context: str = ""


class EnvFlow:
    """One-shot analysis: ``EnvFlow().run(program)``."""

    def __init__(self) -> None:
        self.functions: dict[str, Command] = {}
        self._stack: list[str] = []
        self._pending: list[tuple[str, object]] = []  # unreached uses
        self.all_defs: set[str] = set()

    def run(self, program: Command) -> list[VarUse]:
        defined: set[str] = set()
        self._visit(program, defined, emit=True)
        seen: set[tuple[str, int]] = set()
        out: list[VarUse] = []
        for name, node in self._pending:
            if name not in self.all_defs:
                continue  # environment-provided: not our business
            key = (name, id(node))
            if key in seen:
                continue
            seen.add(key)
            out.append(VarUse(name, node))
        return out

    # -- definitions --------------------------------------------------------------

    def _define(self, name: str, defined: set[str]) -> None:
        defined.add(name)
        self.all_defs.add(name)

    # -- the walk -----------------------------------------------------------------

    def _visit(self, node: Command, defined: set[str], emit: bool) -> None:
        if isinstance(node, SimpleCommand):
            self._simple(node, defined, emit)
        elif isinstance(node, Pipeline):
            if len(node.commands) == 1:
                self._visit(node.commands[0], defined, emit)
            else:
                for cmd in node.commands:  # each stage: its own subshell
                    self._visit(cmd, set(defined), emit)
        elif isinstance(node, AndOr):
            self._visit(node.left, defined, emit)
            self._visit(node.right, defined, emit)
        elif isinstance(node, CommandList):
            for item in node.items:
                if item.is_async:  # background job: subshell
                    self._visit(item.command, set(defined), emit)
                else:
                    self._visit(item.command, defined, emit)
        elif isinstance(node, Subshell):
            self._redirect_uses(node.redirects, node, defined, emit)
            self._visit(node.body, set(defined), emit)
        elif isinstance(node, BraceGroup):
            self._redirect_uses(node.redirects, node, defined, emit)
            self._visit(node.body, defined, emit)
        elif isinstance(node, If):
            self._redirect_uses(node.redirects, node, defined, emit)
            self._visit(node.cond, defined, emit)
            branches = [node.then_body] + [b for _, b in node.elifs]
            merged = set(defined)
            for cond, _body in node.elifs:
                self._visit(cond, defined, emit)
            if node.else_body is not None:
                branches.append(node.else_body)
            for body in branches:
                branch_defs = set(defined)
                self._visit(body, branch_defs, emit)
                merged |= branch_defs
            defined |= merged
        elif isinstance(node, While):
            self._redirect_uses(node.redirects, node, defined, emit)
            # pass 1 (silent): saturate may-defs around the back edge
            self._visit(node.cond, defined, emit=False)
            self._visit(node.body, defined, emit=False)
            # pass 2: report with the saturated set
            self._visit(node.cond, defined, emit)
            self._visit(node.body, defined, emit)
        elif isinstance(node, For):
            self._redirect_uses(node.redirects, node, defined, emit)
            for word in node.words or ():
                self._word(word, node, defined, emit)
            self._define(node.var, defined)
            self._visit(node.body, defined, emit=False)
            self._visit(node.body, defined, emit)
        elif isinstance(node, Case):
            self._redirect_uses(node.redirects, node, defined, emit)
            self._word(node.word, node, defined, emit)
            merged = set(defined)
            for item in node.items:
                for pat in item.patterns:
                    self._word(pat, node, defined, emit)
                if item.body is not None:
                    branch_defs = set(defined)
                    self._visit(item.body, branch_defs, emit)
                    merged |= branch_defs
            defined |= merged
        elif isinstance(node, FuncDef):
            self.functions[node.name] = node.body

    def _simple(self, node: SimpleCommand, defined: set[str], emit: bool) -> None:
        for assign in node.assigns:
            self._word(assign.word, node, defined, emit)
            self._define(assign.name, defined)
        for word in node.words:
            self._word(word, node, defined, emit)
        self._redirect_uses(node.redirects, node, defined, emit)
        if not node.words or not node.words[0].is_literal():
            return
        name = node.words[0].literal_value()
        operands = [w.literal_value() for w in node.words[1:]
                    if w.is_literal() and not w.literal_value().startswith("-")]
        if name in ("read", "export", "readonly", "unset", "local", "getopts"):
            for op in operands:
                var = op.partition("=")[0]
                if var.isidentifier():
                    self._define(var, defined)
        elif name in self.functions and name not in self._stack:
            self._stack.append(name)
            try:
                self._visit(self.functions[name], defined, emit)
            finally:
                self._stack.pop()

    def _redirect_uses(self, redirects: tuple[Redirect, ...], stmt,
                       defined: set[str], emit: bool) -> None:
        for redirect in redirects:
            self._word(redirect.target, stmt, defined, emit)
            if redirect.heredoc is not None:
                self._word(redirect.heredoc, stmt, defined, emit)

    # -- words --------------------------------------------------------------------

    def _word(self, word: Word, stmt, defined: set[str], emit: bool) -> None:
        for part in word.parts:
            self._part(part, stmt, defined, emit)

    def _part(self, part, stmt, defined: set[str], emit: bool) -> None:
        if isinstance(part, Param):
            # ${x-d} / ${x:=d} / ${x+d} / ${x:?msg} explicitly handle the
            # unset case — that is the POSIX idiom for maybe-unset
            # variables, not a use-before-def bug
            if part.op.lstrip(":") not in ("-", "=", "+", "?"):
                self._use(part.name, stmt, defined, emit)
            if part.word is not None:
                self._word(part.word, stmt, defined, emit)
            if part.op.lstrip(":") == "=":
                self._define(part.name, defined)
        elif isinstance(part, DoubleQuoted):
            for sub in part.parts:
                self._part(sub, stmt, defined, emit)
        elif isinstance(part, ArithSub):
            for sub in part.parts:
                self._part(sub, stmt, defined, emit)
        elif isinstance(part, CmdSub):
            self._visit(part.command, set(defined), emit)  # subshell

    def _use(self, name: str, stmt, defined: set[str], emit: bool) -> None:
        if name in _SPECIAL or not name.isidentifier():
            return
        if emit and name not in defined:
            self._pending.append((name, stmt))


def use_before_def(program: Command) -> list[VarUse]:
    """All variable uses no definition may reach (see module docstring)."""
    return EnvFlow().run(program)
