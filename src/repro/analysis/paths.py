"""The abstract-path lattice (S16).

The static analyzer cannot know which concrete files a word names — the
word may contain globs or runtime expansions.  It abstracts every
file-naming word into one of three shapes, ordered by precision:

* ``literal(p)``    — the word statically expands to exactly ``p``;
* ``glob(q)``       — the word is a glob whose matches all start with the
  literal prefix ``q`` (``/logs/*.gz`` → ``glob("/logs/")``);
* ``prefix(q)``     — the word contains runtime expansions after the
  literal prefix ``q`` (``/data/$f`` → ``prefix("/data/")``); ``prefix("")``
  is ⊤, the unresolvable word.

``literal ⊑ glob ⊑ prefix`` in the sense that each shape denotes a
superset of concrete paths.  :func:`may_alias` is the conservative
overlap test the race detector and the certificate hazard check use:
it answers "could these two abstract paths denote the same file?" and
errs toward *yes* (soundness for conflict detection).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parser.ast_nodes import (
    DoubleQuoted,
    Escaped,
    Lit,
    SingleQuoted,
    Word,
)

LITERAL = "literal"
GLOB = "glob"
PREFIX = "prefix"

GLOB_CHARS = "*?["


@dataclass(frozen=True)
class AbstractPath:
    """One point in the abstract-path lattice."""

    kind: str  # LITERAL | GLOB | PREFIX
    text: str  # the exact path (literal) or the known literal prefix

    @property
    def is_top(self) -> bool:
        """⊤: a word with no statically-known prefix at all."""
        return self.kind != LITERAL and not self.text

    def display(self) -> str:
        if self.kind == LITERAL:
            return self.text
        if self.is_top:
            return "<unresolvable>"
        return f"{self.text}*" if self.kind == GLOB else f"{self.text}…"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "text": self.text}


def literal(path: str) -> AbstractPath:
    return AbstractPath(LITERAL, _norm(path))


def glob_prefix(prefix: str) -> AbstractPath:
    return AbstractPath(GLOB, _norm(prefix))


def prefix(prefix_: str) -> AbstractPath:
    return AbstractPath(PREFIX, _norm(prefix_))


TOP = AbstractPath(PREFIX, "")


def _norm(path: str) -> str:
    """Light, purely-syntactic normalization (no filesystem, no cwd)."""
    while path.startswith("./"):
        path = path[2:]
    return path


def may_alias(a: AbstractPath, b: AbstractPath) -> bool:
    """Could ``a`` and ``b`` denote the same concrete file?

    literal×literal compares exactly; a literal overlaps an abstract
    path when it extends the abstract prefix; two abstract paths overlap
    when either prefix extends the other (⊤ overlaps everything).
    """
    if a.kind == LITERAL and b.kind == LITERAL:
        return a.text == b.text
    if a.kind == LITERAL:
        return a.text.startswith(b.text)
    if b.kind == LITERAL:
        return b.text.startswith(a.text)
    return a.text.startswith(b.text) or b.text.startswith(a.text)


def word_to_path(word: Word) -> AbstractPath:
    """Abstract the file path a word denotes.

    Walks the word's parts left to right accumulating the literal
    prefix; the first glob metacharacter demotes the result to ``glob``
    and the first runtime expansion (parameter, command substitution,
    arithmetic) demotes it to ``prefix``.
    """
    out: list[str] = []
    for part in word.parts:
        if isinstance(part, Lit):
            # unquoted literal text: glob metacharacters are live
            for i, ch in enumerate(part.text):
                if ch in GLOB_CHARS:
                    out.append(part.text[:i])
                    return glob_prefix("".join(out))
            out.append(part.text)
        elif isinstance(part, SingleQuoted):
            out.append(part.text)
        elif isinstance(part, Escaped):
            out.append(part.char)
        elif isinstance(part, DoubleQuoted):
            for sub in part.parts:
                if isinstance(sub, Lit):
                    out.append(sub.text)
                elif isinstance(sub, Escaped):
                    out.append(sub.char)
                else:
                    return prefix("".join(out))
        else:  # Param / CmdSub / ArithSub: runtime-dependent suffix
            return prefix("".join(out))
    return literal("".join(out))
