"""Static race detection between concurrently-executing statements.

The shell's concurrency construct is the background job: ``cmd &`` keeps
running while the statements after it execute, until a ``wait`` seals
it.  For every command list the detector tracks the set of *active*
background jobs and reports abstract-path conflicts between a job's
effects and each statement that may overlap it:

* **write-write** — both write a file that may be the same (corrupted
  or order-dependent output; the classic ``sort a > out & sort b > out``);
* **read-before-seal** — a statement reads a file a still-running job
  writes: it may observe a partial region output (the job's output is
  consumed before the region is sealed by ``wait``);
* **write-under-read** — a statement rewrites a file a running job is
  still reading.

Overlaps through ⊤ (a path with no known prefix) are *not* reported —
the detector prefers silence to guessing.  An opaque command (one the
library cannot classify) may have effects the analyzer cannot see, so
races through them can be *missed*; its redirections are still precise,
so races through its ``> file`` targets are still caught.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parser.ast_nodes import Command, CommandList, SimpleCommand, walk
from ..parser.unparse import unparse
from .effects import Conflict, EffectAnalyzer, conflicts

#: conflict kind -> race kind
_KINDS = {
    "write-write": "write-write",
    "write-read": "read-before-seal",
    "read-write": "write-under-read",
}


@dataclass(frozen=True)
class RaceFinding:
    kind: str        # "write-write" | "read-before-seal" | "write-under-read"
    path: str        # display form of the conflicting abstract path
    job_text: str    # the background job
    stmt_text: str   # the overlapping statement
    job_node: object
    stmt_node: object

    def display(self) -> str:
        return (f"{self.kind} on {self.path}: `{self.job_text} &` "
                f"overlaps `{self.stmt_text}`")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "path": self.path,
                "job": self.job_text, "statement": self.stmt_text}


def _is_wait(node: Command) -> bool:
    return (isinstance(node, SimpleCommand) and node.words
            and node.words[0].is_literal()
            and node.words[0].literal_value() == "wait")


def detect_races(program: Command,
                 effects: EffectAnalyzer | None = None) -> list[RaceFinding]:
    """All races between background jobs and overlapping statements, in
    every command list of the program (walk order)."""
    effects = effects or EffectAnalyzer()
    effects.register_functions(program)
    findings: list[RaceFinding] = []
    for node in walk(program):
        if isinstance(node, CommandList):
            _scan_list(node, effects, findings)
    return findings


def _scan_list(node: CommandList, effects: EffectAnalyzer,
               findings: list[RaceFinding]) -> None:
    # active background jobs: (node, summary); a `wait` seals them all
    # (pid operands cannot be resolved statically, so any wait seals)
    active: list[tuple[object, object]] = []
    for item in node.items:
        cmd = item.command
        if _is_wait(cmd):
            active.clear()
            continue
        summary = effects.compute(cmd)
        for job_node, job_summary in active:
            for c in conflicts(job_summary, summary):
                findings.append(_finding(c, job_node, cmd))
        if item.is_async:
            active.append((cmd, summary))


def _finding(conflict: Conflict, job_node, stmt_node) -> RaceFinding:
    return RaceFinding(
        _KINDS[conflict.kind],
        conflict.path.display(),
        unparse(job_node),
        unparse(stmt_node),
        job_node,
        stmt_node,
    )
