"""Abstract-interpretation value-flow analyzer (S20).

An interprocedural abstract interpreter over the shell AST, running on
the same structured CFG discipline as :mod:`repro.analysis.envflow`
(branch unions, two-pass loop fixpoints, function inlining with a
recursion guard).  Three cooperating domains:

* a **value domain** for variables — ``unset`` / constant string /
  string prefix / integer interval / ⊤ — flowing through assignments,
  parameter expansions (``${x:-d}``, ``${x#p}``, quoting) and
  ``$((...))`` arithmetic;
* an **exit-status domain** — an integer interval over 0..255 — flowing
  through pipelines, ``&&``/``||``, ``!``, ``if``/``while`` guards and
  ``set -e`` implications;
* a **cardinality/volume domain** — loop trip counts from constant
  ranges and ``seq``/glob cardinality, plus per-stage byte-volume hints
  for candidate dataflow regions when a virtual filesystem is supplied.

Outputs (see :class:`AbsintResult`):

* **dead facts** — AST nodes that provably never execute.  The dead set
  is restricted to *runtime-state-independent* facts: constant guards,
  statements following an unconditional ``exit``/``return``/``break``,
  ``set -e`` after a provably non-zero constant status, and loops over
  constant-empty word lists.  Filesystem-dependent facts (glob
  emptiness, file tests) yield diagnostics and cost certificates only —
  the filesystem at analysis time need not match the filesystem at run
  time, and an unmatched POSIX glob stays literal (the loop still runs
  once).  The engines' correctness never *depends* on the dead set: a
  wrongly-dead node that does execute simply misses its certificate and
  takes the runtime purity walk, reaching the identical decision.
* **cost certificates** — signed quantitative bounds (loop trip counts,
  region byte volumes) extending the S16 safety certificates; the
  static complement of the S19 ``ObservedCosts`` profile feedback.
* **findings** — the JS4xxx ``jash check`` diagnostics (unreachable
  code, constant guards, infinite loops, provably-unset reads under
  ``set -u``, dead ``&&``/``||`` arms, empty loop word lists).

Caveats (documented unsoundness, acceptable because consumers only use
the dead set to *skip optimization*, never to skip execution): plain
assignments are treated as status 0 (a ``readonly`` violation would
abort), and external commands that signal the shell (``kill $$``) are
only screened syntactically for the infinite-loop fact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..parser.ast_nodes import (
    AndOr,
    ArithSub,
    BraceGroup,
    Case,
    CmdSub,
    Command,
    CommandList,
    DoubleQuoted,
    Escaped,
    For,
    FuncDef,
    If,
    Lit,
    Param,
    Pipeline,
    Redirect,
    SimpleCommand,
    SingleQuoted,
    Subshell,
    While,
    Word,
    walk,
)
from ..parser.unparse import unparse
from ..semantics import arith
from .envflow import _SPECIAL, EnvFlow

ABSINT_VERSION = "s20.1"

# control-flow outcomes a construct may have (sets of these flow upward)
NORMAL = "normal"
BREAK = "break"
CONTINUE = "continue"
EXIT = "exit"
RETURN = "return"

_ONLY_NORMAL = frozenset((NORMAL,))


# ---------------------------------------------------------------------------
# Value domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbsValue:
    """unset | const(text) | prefix(text) | int[lo,hi] | top."""

    kind: str
    text: str = ""
    lo: Optional[int] = None  # "int" bounds; None = unbounded
    hi: Optional[int] = None

    def __repr__(self) -> str:  # compact, for reports/tests
        if self.kind == "const":
            return f"const({self.text!r})"
        if self.kind == "prefix":
            return f"prefix({self.text!r})"
        if self.kind == "int":
            lo = "-inf" if self.lo is None else self.lo
            hi = "+inf" if self.hi is None else self.hi
            return f"int[{lo},{hi}]"
        return self.kind


UNSET = AbsValue("unset")
TOP = AbsValue("top")


def vconst(text: str) -> AbsValue:
    return AbsValue("const", text)


def vint(lo: Optional[int], hi: Optional[int]) -> AbsValue:
    return AbsValue("int", "", lo, hi)


def as_interval(v: AbsValue) -> Optional[tuple[Optional[int], Optional[int]]]:
    """The integer interval a value denotes, or None when not integral."""
    if v.kind == "int":
        return (v.lo, v.hi)
    if v.kind == "const":
        try:
            n = int(v.text.strip() or "0") if v.text.strip() else None
        except ValueError:
            return None
        if n is None:
            return None
        return (n, n)
    return None


def _hull(a: Optional[int], b: Optional[int], pick) -> Optional[int]:
    if a is None or b is None:
        return None
    return pick(a, b)


def join_value(a: AbsValue, b: AbsValue) -> AbsValue:
    if a == b:
        return a
    if a.kind == "top" or b.kind == "top":
        return TOP
    if a.kind == "unset" or b.kind == "unset":
        # maybe-unset is indistinguishable from unknown for our consumers
        return TOP
    ia, ib = as_interval(a), as_interval(b)
    if ia is not None and ib is not None:
        return vint(_hull(ia[0], ib[0], min), _hull(ia[1], ib[1], max))
    pa = a.text if a.kind in ("const", "prefix") else None
    pb = b.text if b.kind in ("const", "prefix") else None
    if pa is not None and pb is not None:
        n = 0
        for ca, cb in zip(pa, pb):
            if ca != cb:
                break
            n += 1
        if n:
            return AbsValue("prefix", pa[:n])
    return TOP


def widen_value(old: AbsValue, new: AbsValue) -> AbsValue:
    """Widening for loop back-edges: unstable bounds go to infinity."""
    if old == new:
        return new
    io, in_ = as_interval(old), as_interval(new)
    if io is not None and in_ is not None:
        lo = io[0] if (io[0] is not None and in_[0] is not None
                       and in_[0] >= io[0]) else None
        hi = io[1] if (io[1] is not None and in_[1] is not None
                       and in_[1] <= io[1]) else None
        return vint(lo, hi)
    return TOP


# ---------------------------------------------------------------------------
# Exit-status domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbsStatus:
    """Interval over exit statuses 0..255."""

    lo: int
    hi: int

    @property
    def is_zero(self) -> bool:
        return self.lo == 0 and self.hi == 0

    @property
    def is_nonzero(self) -> bool:
        return self.lo >= 1

    def __repr__(self) -> str:
        return f"status[{self.lo},{self.hi}]"


S_ZERO = AbsStatus(0, 0)
S_ONE = AbsStatus(1, 1)
S_TOP = AbsStatus(0, 255)
S_NONZERO = AbsStatus(1, 255)


def sjoin(a: AbsStatus, b: AbsStatus) -> AbsStatus:
    return AbsStatus(min(a.lo, b.lo), max(a.hi, b.hi))


def snot(a: AbsStatus) -> AbsStatus:
    if a.is_zero:
        return S_ONE
    if a.is_nonzero:
        return S_ZERO
    return S_TOP


# ---------------------------------------------------------------------------
# Cost certificates (the quantitative extension of SafetyCertificate)
# ---------------------------------------------------------------------------


def _sign_cost(node_text: str, kind: str, trip_lo: int,
               trip_hi: Optional[int], bytes_lo: int,
               bytes_hi: Optional[int]) -> str:
    payload = "\x00".join((
        ABSINT_VERSION, node_text, kind,
        repr((trip_lo, trip_hi, bytes_lo, bytes_hi)),
    ))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class CostCertificate:
    """Signed quantitative bounds for one AST node.

    ``kind`` is ``"loop"`` (trip-count bounds for a ``for``/``while``)
    or ``"region"`` (byte-volume bounds for a candidate dataflow
    region).  ``None`` bounds mean unbounded/unknown above.
    """

    node_text: str
    kind: str  # "loop" | "region"
    trip_lo: int = 0
    trip_hi: Optional[int] = None
    bytes_lo: int = 0
    bytes_hi: Optional[int] = None
    #: per-stage (command, estimated input bytes) hints for regions
    stage_bytes: tuple = ()
    digest: str = ""

    def verify(self) -> bool:
        return self.digest == _sign_cost(
            self.node_text, self.kind, self.trip_lo, self.trip_hi,
            self.bytes_lo, self.bytes_hi)

    def to_dict(self) -> dict:
        return {
            "analyzer": ABSINT_VERSION,
            "node": self.node_text,
            "kind": self.kind,
            "trips": [self.trip_lo, self.trip_hi],
            "bytes": [self.bytes_lo, self.bytes_hi],
            "stage_bytes": [list(s) for s in self.stage_bytes],
            "digest": self.digest,
        }


def make_cost_certificate(node_text: str, kind: str, trip_lo: int = 0,
                          trip_hi: Optional[int] = None, bytes_lo: int = 0,
                          bytes_hi: Optional[int] = None,
                          stage_bytes: tuple = ()) -> CostCertificate:
    return CostCertificate(
        node_text, kind, trip_lo, trip_hi, bytes_lo, bytes_hi, stage_bytes,
        _sign_cost(node_text, kind, trip_lo, trip_hi, bytes_lo, bytes_hi))


# ---------------------------------------------------------------------------
# Findings and dead facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One JS4xxx-grade fact, anchored at an AST node."""

    code: str
    message: str
    node: object
    context: str = ""


@dataclass(frozen=True)
class DeadFact:
    """The root of one provably-dead region."""

    node: object
    reason: str


@dataclass
class AbsintResult:
    """Everything one value-flow pass learned."""

    #: id() of every provably-dead node, descendants included
    dead: set[int] = field(default_factory=set)
    #: dead-region roots in visit order (stable for reports)
    dead_list: list[DeadFact] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    #: id(node) -> certificate for loops and candidate regions
    cost_certificates: dict[int, CostCertificate] = field(default_factory=dict)
    cost_list: list[CostCertificate] = field(default_factory=list)
    nodes: int = 0
    widenings: int = 0
    #: the analyzed program (keeps id()-keyed maps valid)
    program: object = None

    def stats(self) -> dict:
        return {
            "absint_nodes": self.nodes,
            "absint_widenings": self.widenings,
            "dead_branches": len(self.dead_list),
            "cost_certs": len(self.cost_list),
        }

    def to_dict(self) -> dict:
        return {
            "analyzer": ABSINT_VERSION,
            "summary": self.stats(),
            "dead": [{"node": unparse(d.node), "reason": d.reason}
                     for d in self.dead_list],
            "findings": [{"code": f.code, "message": f.message,
                          "node": unparse(f.node)} for f in self.findings],
            "cost_certificates": [c.to_dict() for c in self.cost_list],
        }


# ---------------------------------------------------------------------------
# Abstract state
# ---------------------------------------------------------------------------


class _State:
    """Variable values + tracked shell options on one control path."""

    __slots__ = ("vars", "options")

    def __init__(self, vars=None, options=None):
        self.vars: dict[str, AbsValue] = vars if vars is not None else {}
        self.options: dict[str, Optional[bool]] = (
            options if options is not None
            else {"errexit": False, "nounset": False})

    def copy(self) -> "_State":
        return _State(dict(self.vars), dict(self.options))

    def join(self, other: "_State") -> None:
        """In-place join: a variable known on only one side becomes ⊤."""
        for name in list(self.vars):
            if name in other.vars:
                self.vars[name] = join_value(self.vars[name],
                                             other.vars[name])
            else:
                self.vars[name] = TOP
        for name, val in other.vars.items():
            if name not in self.vars:
                self.vars[name] = TOP
        for opt in self.options:
            if self.options[opt] != other.options.get(opt):
                self.options[opt] = None


class _Unknown(Exception):
    """A variable the static arithmetic evaluator cannot resolve."""


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------

#: commands that could terminate or re-enter the shell from a loop body in
#: ways the flow analysis does not model — veto the infinite-loop fact
_LOOP_ESCAPES = frozenset(("kill", "exec", "trap", "eval", "."))


class ValueFlow:
    """One-shot analysis: ``ValueFlow(fs=...).run(program)``."""

    def __init__(self, fs=None, cwd: str = "/", library=None):
        self.fs = fs
        self.cwd = cwd
        self.library = library
        self.functions: dict[str, Command] = {}
        self._stack: list[str] = []
        self.findings: list[Finding] = []
        self.dead: set[int] = set()
        self.dead_list: list[DeadFact] = []
        self._dead_roots: set[int] = set()
        self._finding_keys: set[tuple[str, int]] = set()
        self.cost_certificates: dict[int, CostCertificate] = {}
        self.cost_list: list[CostCertificate] = []
        self.nodes = 0
        self.widenings = 0
        self.all_defs: set[str] = set()

    # -- entry point ---------------------------------------------------------------

    def run(self, program: Command) -> AbsintResult:
        # prepass: which names are script-defined (env filter for JS4004)
        flow = EnvFlow()
        flow.run(program)
        self.all_defs = flow.all_defs
        st = _State()
        self._visit(program, st, emit=True, guard=False)
        self._region_costs(program)
        return AbsintResult(
            dead=self.dead, dead_list=self.dead_list,
            findings=self.findings,
            cost_certificates=self.cost_certificates,
            cost_list=self.cost_list, nodes=self.nodes,
            widenings=self.widenings, program=program)

    # -- bookkeeping ---------------------------------------------------------------

    def _finding(self, code: str, message: str, node, emit: bool,
                 context: str = "") -> None:
        if not emit:
            return
        key = (code, id(node))
        if key in self._finding_keys:
            return
        self._finding_keys.add(key)
        self.findings.append(Finding(code, message, node, context))

    def _mark_dead(self, node, reason: str, emit: bool) -> None:
        if not emit or node is None:
            return
        if id(node) in self._dead_roots:
            return
        self._dead_roots.add(id(node))
        self.dead_list.append(DeadFact(node, reason))
        for sub in walk(node):
            self.dead.add(id(sub))

    # -- the walk ------------------------------------------------------------------

    def _visit(self, node: Command, st: _State, emit: bool,
               guard: bool) -> tuple[AbsStatus, frozenset]:
        """Returns (abstract exit status, set of possible control flows)."""
        self.nodes += 1
        if isinstance(node, SimpleCommand):
            return self._simple(node, st, emit, guard)
        if isinstance(node, Pipeline):
            return self._pipeline(node, st, emit, guard)
        if isinstance(node, AndOr):
            return self._andor(node, st, emit, guard)
        if isinstance(node, CommandList):
            return self._list(node, st, emit, guard)
        if isinstance(node, Subshell):
            self._redirects(node.redirects, node, st, emit)
            status, flows = self._visit(node.body, st.copy(), emit, True)
            if flows & {EXIT, RETURN}:
                status = S_TOP  # exit N inside the subshell is its status
            return status, _ONLY_NORMAL
        if isinstance(node, BraceGroup):
            self._redirects(node.redirects, node, st, emit)
            return self._visit(node.body, st, emit, guard)
        if isinstance(node, If):
            return self._if(node, st, emit, guard)
        if isinstance(node, While):
            return self._while(node, st, emit, guard)
        if isinstance(node, For):
            return self._for(node, st, emit, guard)
        if isinstance(node, Case):
            return self._case(node, st, emit, guard)
        if isinstance(node, FuncDef):
            self.functions[node.name] = node.body
            return S_ZERO, _ONLY_NORMAL
        return S_TOP, _ONLY_NORMAL  # pragma: no cover - exhaustive above

    # -- statement sequences -------------------------------------------------------

    def _list(self, node: CommandList, st: _State, emit: bool,
              guard: bool) -> tuple[AbsStatus, frozenset]:
        status = S_ZERO
        escaped: set[str] = set()
        dead_reason: Optional[str] = None
        first_dead = True
        for item in node.items:
            if dead_reason is not None:
                if first_dead:
                    self._finding(
                        "JS4001",
                        f"unreachable: {dead_reason}", item.command, emit)
                    first_dead = False
                self._mark_dead(item.command, dead_reason, emit)
                continue
            if item.is_async:
                self._visit(item.command, st.copy(), emit, True)
                status = S_ZERO  # launching a background job succeeds
                continue
            status, flows = self._visit(item.command, st, emit, guard)
            escaped |= set(flows) - {NORMAL}
            if NORMAL not in flows:
                if not flows:
                    dead_reason = "the preceding loop never terminates"
                elif EXIT in flows and len(flows) == 1:
                    dead_reason = "the preceding statement always exits"
                elif flows <= {BREAK, CONTINUE}:
                    dead_reason = ("the preceding statement always leaves "
                                   "the loop iteration")
                else:
                    dead_reason = "the preceding statement never falls through"
        if dead_reason is not None:
            return status, frozenset(escaped) or frozenset((EXIT,))
        return status, frozenset(escaped | {NORMAL})

    # -- pipelines / and-or --------------------------------------------------------

    def _pipeline(self, node: Pipeline, st: _State, emit: bool,
                  guard: bool) -> tuple[AbsStatus, frozenset]:
        if len(node.commands) == 1:
            status, flows = self._visit(node.commands[0], st, emit,
                                        guard or node.negated)
        else:
            status = S_TOP
            for cmd in node.commands:
                # each stage runs in a subshell; nothing escapes
                stage_status, _ = self._visit(cmd, st.copy(), emit, True)
                status = stage_status  # POSIX: pipeline status = last stage
            flows = _ONLY_NORMAL
        if node.negated:
            status = snot(status)
        return status, flows

    def _andor(self, node: AndOr, st: _State, emit: bool,
               guard: bool) -> tuple[AbsStatus, frozenset]:
        left_status, left_flows = self._visit(node.left, st, emit, True)
        if NORMAL not in left_flows:
            self._finding("JS4001",
                          "unreachable: the left side never falls through",
                          node.right, emit)
            self._mark_dead(node.right, "left side never falls through", emit)
            return left_status, left_flows
        right_dead = (left_status.is_nonzero if node.op == "&&"
                      else left_status.is_zero)
        right_certain = (left_status.is_zero if node.op == "&&"
                         else left_status.is_nonzero)
        if right_dead:
            what = ("a constant non-zero status short-circuits `&&`"
                    if node.op == "&&"
                    else "a constant zero status short-circuits `||`")
            self._finding("JS4005", f"{what}; the right side never runs",
                          node, emit, context=unparse(node.left))
            self._mark_dead(node.right, what, emit)
            return left_status, left_flows
        if right_certain:
            right_status, right_flows = self._visit(node.right, st, emit,
                                                    guard)
            return right_status, frozenset(
                (set(left_flows) - {NORMAL}) | set(right_flows))
        branch = st.copy()
        right_status, right_flows = self._visit(node.right, branch, emit,
                                                guard)
        st.join(branch)
        return (sjoin(left_status, right_status),
                frozenset(set(left_flows) | set(right_flows)))

    # -- conditionals --------------------------------------------------------------

    def _if(self, node: If, st: _State, emit: bool,
            guard: bool) -> tuple[AbsStatus, frozenset]:
        self._redirects(node.redirects, node, st, emit)
        arms = [(node.cond, node.then_body)] + list(node.elifs)
        taken_states: list[_State] = []
        statuses: list[AbsStatus] = []
        flow_acc: set[str] = set()
        decided = False
        fell_through = True
        for cond, body in arms:
            if decided:
                self._mark_dead(cond, "an earlier guard is always true", emit)
                self._mark_dead(body, "an earlier guard is always true", emit)
                continue
            cond_status, cond_flows = self._visit(cond, st, emit, True)
            if NORMAL not in cond_flows:
                self._mark_dead(body, "the guard never falls through", emit)
                flow_acc |= set(cond_flows) - {NORMAL}
                decided = True
                fell_through = False
                continue
            flow_acc |= set(cond_flows) - {NORMAL}
            if cond_status.is_zero:
                self._finding("JS4002", "guard is always true", cond, emit,
                              context=unparse(cond))
                body_status, body_flows = self._visit(body, st, emit, guard)
                taken_states.append(st)
                statuses.append(body_status)
                flow_acc |= set(body_flows)
                decided = True
                fell_through = False
            elif cond_status.is_nonzero:
                self._finding("JS4002", "guard is always false", cond, emit,
                              context=unparse(cond))
                self._mark_dead(body, "guard is always false", emit)
            else:
                branch = st.copy()
                body_status, body_flows = self._visit(body, branch, emit,
                                                      guard)
                taken_states.append(branch)
                statuses.append(body_status)
                flow_acc |= set(body_flows)
        if decided:
            for_else_dead = node.else_body
            if for_else_dead is not None:
                self._mark_dead(for_else_dead,
                                "an earlier guard decides this `if`", emit)
        elif node.else_body is not None:
            else_state = st.copy()
            else_status, else_flows = self._visit(node.else_body, else_state,
                                                  emit, guard)
            taken_states.append(else_state)
            statuses.append(else_status)
            flow_acc |= set(else_flows)
            fell_through = False
        if fell_through and not decided:
            statuses.append(S_ZERO)  # no branch taken: status 0
            taken_states.append(st.copy())
            flow_acc.add(NORMAL)
        if not taken_states:
            return S_TOP, frozenset(flow_acc) or frozenset((EXIT,))
        merged = taken_states[0]
        for other in taken_states[1:]:
            merged.join(other)
        st.vars = merged.vars
        st.options = merged.options
        status = statuses[0]
        for s in statuses[1:]:
            status = sjoin(status, s)
        return status, frozenset(flow_acc) or frozenset((EXIT,))

    # -- loops ---------------------------------------------------------------------

    def _widen(self, st: _State, snap: _State) -> None:
        for name in list(st.vars):
            old = snap.vars.get(name)
            new = st.vars[name]
            if old is None:
                st.vars[name] = TOP
                self.widenings += 1
            elif old != new:
                st.vars[name] = widen_value(old, new)
                self.widenings += 1
        for opt in st.options:
            if st.options[opt] != snap.options.get(opt):
                st.options[opt] = None

    def _body_can_escape(self, body: Command) -> bool:
        """Could the loop body leave the loop in a way flow analysis does
        not model (external signals, exec, sourced scripts)?"""
        names: set[str] = set()
        for sub in walk(body):
            if isinstance(sub, SimpleCommand) and sub.words and \
                    sub.words[0].is_literal():
                names.add(sub.words[0].literal_value())
        if names & _LOOP_ESCAPES:
            return True
        for name in names & set(self.functions):
            if self._body_can_escape(self.functions[name]):
                return True
        return False

    def _while(self, node: While, st: _State, emit: bool,
               guard: bool) -> tuple[AbsStatus, frozenset]:
        self._redirects(node.redirects, node, st, emit)
        probe = st.copy()
        cond_status, cond_flows = self._visit(node.cond, probe, False, True)
        # sound on the *entry* state: the guard is evaluated exactly once
        # before the body could change anything
        never_runs = (cond_status.is_zero if node.until
                      else cond_status.is_nonzero)
        if never_runs and NORMAL in cond_flows:
            self._visit(node.cond, st, emit, True)  # cond still executes once
            self._finding("JS4002",
                          "guard is always "
                          + ("true; `until` body never runs" if node.until
                             else "false; `while` body never runs"),
                          node.cond, emit, context=unparse(node.cond))
            self._mark_dead(node.body, "loop guard is constant", emit)
            self._loop_cert(node, 0, 0, emit)
            return S_ZERO, _ONLY_NORMAL
        snap = st.copy()
        # pass 1 (silent): saturate values around the back edge, then widen
        self._visit(node.cond, st, False, True)
        _, body_flows1 = self._visit(node.body, st, False, guard)
        self._widen(st, snap)
        # pass 2: report with the widened (stable) state.  The guard is
        # only "always true" when it stays true at the *fixpoint* — the
        # entry state alone would call every counted loop infinite.
        cond_status2, _ = self._visit(node.cond, st, emit, True)
        always_runs = (cond_status2.is_nonzero if node.until
                       else cond_status2.is_zero)
        body_status, body_flows = self._visit(node.body, st, emit, guard)
        st.join(snap)  # the body may have run zero times
        escapes = (set(body_flows) | set(body_flows1)) & {BREAK, EXIT, RETURN}
        if always_runs and not escapes and \
                st.options.get("errexit") is False and \
                not self._body_can_escape(node.body):
            self._finding(
                "JS4003",
                "infinite loop: guard is always "
                + ("false" if node.until else "true")
                + " and the body has no break/exit/return",
                node, emit, context=unparse(node.cond))
            self._loop_cert(node, 0, None, emit)
            # the loop never completes: everything after is unreachable
            return S_TOP, frozenset(escapes & {EXIT, RETURN})
        self._loop_cert(node, 0, None, emit)
        return S_TOP, frozenset({NORMAL} | (escapes & {EXIT, RETURN}))

    def _for(self, node: For, st: _State, emit: bool,
             guard: bool) -> tuple[AbsStatus, frozenset]:
        self._redirects(node.redirects, node, st, emit)
        trip_lo, trip_hi, values, glob_nomatch = self._for_fields(node, st,
                                                                  emit)
        if trip_hi == 0:
            self._finding(
                "JS4006",
                "loop over a provably-empty word list: the body never runs",
                node, emit)
            self._mark_dead(node.body, "loop word list is provably empty",
                            emit)
            self._loop_cert(node, 0, 0, emit)
            st.vars.setdefault(node.var, st.vars.get(node.var, TOP))
            return S_ZERO, _ONLY_NORMAL
        if glob_nomatch:
            self._finding(
                "JS4006",
                "glob matches nothing here: the loop runs once over the "
                "literal pattern", node, emit)
        self._loop_cert(node, trip_lo, trip_hi, emit)
        var_value = TOP
        if values is not None and values:
            var_value = values[0]
            for v in values[1:]:
                var_value = join_value(var_value, v)
        st.vars[node.var] = var_value
        if trip_lo == trip_hi == 1:
            body_status, body_flows = self._visit(node.body, st, emit, guard)
        else:
            snap = st.copy()
            _, body_flows1 = self._visit(node.body, st, False, guard)
            self._widen(st, snap)
            st.vars[node.var] = var_value  # the loop variable re-enters known
            body_status, body_flows = self._visit(node.body, st, emit, guard)
            if trip_lo == 0:
                st.join(snap)
            body_flows = frozenset(set(body_flows) | set(body_flows1))
        escapes = set(body_flows) & {EXIT, RETURN}
        return S_TOP, frozenset({NORMAL} | escapes)

    def _loop_cert(self, node, trip_lo: int, trip_hi: Optional[int],
                   emit: bool) -> None:
        if not emit or id(node) in self.cost_certificates:
            return
        cert = make_cost_certificate(unparse(node), "loop", trip_lo, trip_hi)
        self.cost_certificates[id(node)] = cert
        self.cost_list.append(cert)

    # -- for-loop word-list cardinality ---------------------------------------------

    def _for_fields(self, node: For, st: _State, emit: bool):
        """(trip_lo, trip_hi, per-field values or None, glob_nomatch)."""
        if node.words is None:  # implicit `in "$@"`
            return 0, None, None, False
        lo = 0
        hi: Optional[int] = 0
        values: Optional[list[AbsValue]] = []
        glob_nomatch = False
        for word in node.words:
            n_lo, n_hi, vals, nomatch = self._word_fields(word, st, emit,
                                                          node)
            lo += n_lo
            hi = None if hi is None or n_hi is None else hi + n_hi
            glob_nomatch = glob_nomatch or nomatch
            if values is not None and vals is not None:
                values.extend(vals)
            else:
                values = None
        return lo, hi, values, glob_nomatch

    def _word_fields(self, word: Word, st: _State, emit: bool, stmt):
        """Field cardinality of one word: (lo, hi, values|None, nomatch)."""
        from ..semantics.expansion import has_glob_chars

        if not word.parts:
            return 1, 1, [vconst("")], False  # explicit null word
        if word.is_literal():
            text = word.literal_value()
            unquoted = "".join(p.text for p in word.parts
                               if isinstance(p, Lit))
            if has_glob_chars(unquoted):
                if self.fs is not None:
                    matches = self._glob(text)
                    if matches is not None:
                        if not matches:
                            return 1, 1, [vconst(text)], True
                        return (len(matches), len(matches),
                                [vconst(m) for m in matches], False)
                return 1, None, None, False  # ≥1: no match stays literal
            return 1, 1, [vconst(text)], False
        if len(word.parts) == 1:
            part = word.parts[0]
            if isinstance(part, Param) and part.op == "":
                value = self._param_value(part, st, emit, stmt)
                if value.kind == "const":
                    fields = value.text.split()
                    return (len(fields), len(fields),
                            [vconst(f) for f in fields], False)
                if value.kind == "unset":
                    return 0, 0, [], False
                return 0, None, None, False
            if isinstance(part, CmdSub):
                return self._cmdsub_fields(part, st, emit, stmt)
            if isinstance(part, DoubleQuoted):
                value = self._abs_word(word, st, emit, stmt)
                if value.kind == "const":
                    return 1, 1, [value], False
                return 1, 1, None, False  # quoted: exactly one field
        # general case: evaluate for uses/effects, cardinality unknown
        value = self._abs_word(word, st, emit, stmt)
        if value.kind == "const":
            fields = value.text.split()
            return len(fields), len(fields), [vconst(f) for f in fields], False
        return 0, None, None, False

    def _cmdsub_fields(self, part: CmdSub, st: _State, emit: bool, stmt):
        """Static cardinality for ``$(seq ...)`` / ``$(echo ...)``."""
        argv = self._cmdsub_literal_argv(part.command)
        self._visit(part.command, st.copy(), emit, True)
        if argv is None:
            return 0, None, None, False
        name, args = argv[0], argv[1:]
        if name == "seq":
            bounds = self._seq_bounds(args)
            if bounds is None:
                return 0, None, None, False
            first, incr, count = bounds
            if count == 0:
                return 0, 0, [], False
            last = first + (count - 1) * incr
            iv = vint(min(first, last), max(first, last))
            return count, count, [iv] * count, False
        if name == "echo":
            operands = [a for a in args if not (a.startswith("-")
                                                and set(a[1:]) <= set("neE")
                                                and len(a) > 1)]
            return (len(operands), len(operands),
                    [vconst(op) for op in operands], False)
        return 0, None, None, False

    @staticmethod
    def _cmdsub_literal_argv(command: Command) -> Optional[list[str]]:
        """argv of a single literal simple command inside ``$(...)``."""
        node = command
        while True:
            if isinstance(node, CommandList) and len(node.items) == 1 and \
                    not node.items[0].is_async:
                node = node.items[0].command
            elif isinstance(node, Pipeline) and len(node.commands) == 1 and \
                    not node.negated:
                node = node.commands[0]
            else:
                break
        if not isinstance(node, SimpleCommand) or node.assigns or \
                node.redirects or not node.words:
            return None
        if not all(w.is_literal() for w in node.words):
            return None
        return [w.literal_value() for w in node.words]

    @staticmethod
    def _seq_bounds(args: list[str]) -> Optional[tuple[int, int, int]]:
        """(first, incr, count) for constant ``seq`` arguments."""
        try:
            nums = [int(a) for a in args]
        except ValueError:
            return None
        if len(nums) == 1:
            first, incr, last = 1, 1, nums[0]
        elif len(nums) == 2:
            first, incr, last = nums[0], 1, nums[1]
        elif len(nums) == 3:
            first, incr, last = nums[0], nums[1], nums[2]
        else:
            return None
        if incr == 0:
            return None
        count = max(0, (last - first) // incr + 1)
        return first, incr, count

    def _glob(self, pattern: str) -> Optional[list[str]]:
        """Filesystem matches for a literal glob; None when unevaluable."""
        from ..semantics.expansion import expand_pathnames
        try:
            out = expand_pathnames(pattern, self.fs, self.cwd)
        except Exception:
            return None
        if out == [pattern] and not self._fs_exists(pattern):
            return []
        return out

    def _fs_exists(self, path: str) -> bool:
        try:
            full = path if path.startswith("/") else \
                self.cwd.rstrip("/") + "/" + path
            return self.fs.exists(full)
        except Exception:
            return False

    # -- case ----------------------------------------------------------------------

    def _case(self, node: Case, st: _State, emit: bool,
              guard: bool) -> tuple[AbsStatus, frozenset]:
        self._redirects(node.redirects, node, st, emit)
        subject = self._abs_word(node.word, st, emit, node)
        literal_patterns = all(
            all(p.is_literal() for p in item.patterns)
            for item in node.items)
        if subject.kind == "const" and literal_patterns:
            from ..semantics.expansion import has_glob_chars
            plain = all(
                pat == "*" or not has_glob_chars(pat)
                for item in node.items
                for pat in (p.literal_value() for p in item.patterns))
            if plain:
                return self._case_const(node, subject.text, st, emit, guard)
        statuses = [S_ZERO]  # no pattern may match: status 0
        flow_acc: set[str] = {NORMAL}
        states = [st.copy()]
        for item in node.items:
            for pat in item.patterns:
                self._word_uses(pat, st, emit, node)
            if item.body is None:
                continue
            branch = st.copy()
            s, fl = self._visit(item.body, branch, emit, guard)
            statuses.append(s)
            flow_acc |= set(fl)
            states.append(branch)
        merged = states[0]
        for other in states[1:]:
            merged.join(other)
        st.vars, st.options = merged.vars, merged.options
        status = statuses[0]
        for s in statuses[1:]:
            status = sjoin(status, s)
        return status, frozenset(flow_acc)

    def _case_const(self, node: Case, subject: str, st: _State, emit: bool,
                    guard: bool) -> tuple[AbsStatus, frozenset]:
        chosen = None
        for item in node.items:
            pats = [p.literal_value() for p in item.patterns]
            if chosen is None and (subject in pats or "*" in pats):
                chosen = item
            elif item.body is not None:
                self._mark_dead(item.body,
                                "case subject is constant and selects "
                                "another arm", emit)
        if chosen is None or chosen.body is None:
            return S_ZERO, _ONLY_NORMAL
        return self._visit(chosen.body, st, emit, guard)

    # -- simple commands -----------------------------------------------------------

    def _simple(self, node: SimpleCommand, st: _State, emit: bool,
                guard: bool) -> tuple[AbsStatus, frozenset]:
        assign_values = []
        has_cmdsub = False
        for assign in node.assigns:
            if any(isinstance(p, CmdSub) for p in walk(assign.word)):
                has_cmdsub = True
            assign_values.append(
                (assign.name, self._abs_word(assign.word, st, emit, node)))
        self._redirects(node.redirects, node, st, emit)
        if not node.words:
            for name, value in assign_values:
                st.vars[name] = value
            # `x=$(cmd)` takes the substitution's status; plain assigns are 0
            status = S_TOP if has_cmdsub else S_ZERO
            return status, _ONLY_NORMAL
        # assignment prefixes on a command are temporary env: not persisted
        argv: list[Optional[str]] = []
        for word in node.words:
            value = self._abs_word(word, st, emit, node)
            argv.append(value.text if value.kind == "const" else None)
        name = argv[0]
        status, flows = self._command_status(name, argv[1:], node, st, emit,
                                             guard)
        # `set -e`: an unguarded, provably-failing command exits the shell
        if NORMAL in flows and not guard and status.is_nonzero and \
                st.options.get("errexit") is True:
            return status, frozenset((EXIT,))
        return status, flows

    def _command_status(self, name: Optional[str],
                        args: list[Optional[str]], node, st: _State,
                        emit: bool, guard: bool) -> tuple[AbsStatus, frozenset]:
        if name is None:
            return S_TOP, _ONLY_NORMAL
        if name in ("true", ":"):
            return S_ZERO, _ONLY_NORMAL
        if name == "false":
            return S_ONE, _ONLY_NORMAL
        if name in ("exit", "return"):
            status = S_TOP
            if args and args[0] is not None:
                try:
                    n = int(args[0]) & 255
                    status = AbsStatus(n, n)
                except ValueError:
                    pass
            elif not args:
                status = S_TOP  # $? of the previous command
            return status, frozenset((EXIT if name == "exit" else RETURN,))
        if name == "break":
            return S_ZERO, frozenset((BREAK,))
        if name == "continue":
            return S_ZERO, frozenset((CONTINUE,))
        if name in ("test", "["):
            return self._eval_test(name, args), _ONLY_NORMAL
        if name == "set":
            self._apply_set(args, st)
            return S_ZERO, _ONLY_NORMAL
        if name == "unset":
            for arg in args:
                if arg and arg.isidentifier():
                    st.vars[arg] = UNSET
            return S_ZERO, _ONLY_NORMAL
        if name in ("export", "readonly", "local"):
            for arg in args:
                if arg and "=" in arg:
                    var, _, val = arg.partition("=")
                    if var.isidentifier():
                        st.vars[var] = vconst(val)
            return S_ZERO, _ONLY_NORMAL
        if name in ("read", "getopts"):
            for arg in args:
                if arg and arg.isidentifier():
                    st.vars[arg] = TOP
            return S_TOP, _ONLY_NORMAL  # read fails at EOF
        if name == "shift":
            return S_TOP, _ONLY_NORMAL
        if name in self.functions and name not in self._stack:
            self._stack.append(name)
            try:
                status, flows = self._visit(self.functions[name], st, emit,
                                            guard)
            finally:
                self._stack.pop()
            # `return` ends the call normally; `exit` still ends the script
            out = set(flows) & {NORMAL, EXIT}
            if set(flows) - {NORMAL, EXIT}:
                out.add(NORMAL)
            return (status if flows == _ONLY_NORMAL else S_TOP,
                    frozenset(out))
        return S_TOP, _ONLY_NORMAL

    def _apply_set(self, args: list[Optional[str]], st: _State) -> None:
        tracked = {"e": "errexit", "u": "nounset"}
        for arg in args:
            if arg is None:  # dynamic: anything may have been toggled
                st.options["errexit"] = None
                st.options["nounset"] = None
                return
            if arg == "--":
                return
            if arg in ("-o", "+o"):
                continue  # the option name follows; handled below
            if arg in ("errexit", "nounset"):
                # follows -o/+o; sign unknown without lookbehind — handle
                # via index pass below instead
                continue
            if arg.startswith("-") or arg.startswith("+"):
                value = arg.startswith("-")
                for ch in arg[1:]:
                    if ch in tracked:
                        st.options[tracked[ch]] = value
            else:
                return  # positional parameters begin: no more flags
        # second pass for `-o errexit` style pairs
        concrete = [a for a in args if a is not None]
        for i, arg in enumerate(concrete[:-1]):
            if arg in ("-o", "+o"):
                opt = concrete[i + 1]
                if opt in ("errexit", "nounset"):
                    st.options[opt] = arg == "-o"

    def _eval_test(self, name: str, args: list[Optional[str]]) -> AbsStatus:
        if name == "[":
            if not args or args[-1] != "]":
                return S_TOP
            args = args[:-1]
        if any(a is None for a in args):
            return S_TOP
        return self._test_value(args)

    def _test_value(self, args: list[str]) -> AbsStatus:
        if not args:
            return S_ONE
        if args[0] == "!" and len(args) > 1:
            return snot(self._test_value(args[1:]))
        if len(args) == 1:
            return S_ONE if args[0] == "" else S_ZERO
        if len(args) == 2:
            op, operand = args
            if op == "-z":
                return S_ZERO if operand == "" else S_ONE
            if op == "-n":
                return S_ONE if operand == "" else S_ZERO
            return S_TOP  # file tests etc: runtime state
        if len(args) == 3:
            a, op, b = args
            if op == "=":
                return S_ZERO if a == b else S_ONE
            if op == "!=":
                return S_ZERO if a != b else S_ONE
            int_ops = {"-eq": "==", "-ne": "!=", "-gt": ">", "-ge": ">=",
                       "-lt": "<", "-le": "<="}
            if op in int_ops:
                try:
                    x, y = int(a), int(b)
                except ValueError:
                    return S_TOP  # test would error (status 2)
                result = {
                    "-eq": x == y, "-ne": x != y, "-gt": x > y,
                    "-ge": x >= y, "-lt": x < y, "-le": x <= y,
                }[op]
                return S_ZERO if result else S_ONE
        return S_TOP

    # -- words and expansions ------------------------------------------------------

    def _redirects(self, redirects: tuple[Redirect, ...], stmt, st: _State,
                   emit: bool) -> None:
        for redirect in redirects:
            self._word_uses(redirect.target, st, emit, stmt)
            if redirect.heredoc is not None:
                self._word_uses(redirect.heredoc, st, emit, stmt)

    def _word_uses(self, word: Word, st: _State, emit: bool, stmt) -> None:
        self._abs_word(word, st, emit, stmt)

    def _abs_word(self, word: Word, st: _State, emit: bool,
                  stmt) -> AbsValue:
        result = vconst("")
        for part in word.parts:
            piece = self._part_value(part, st, emit, stmt)
            result = self._concat(result, piece)
        return result

    @staticmethod
    def _concat(left: AbsValue, right: AbsValue) -> AbsValue:
        if left.kind == "const" and left.text == "":
            return right
        lt = left.text if left.kind == "const" else None
        rt = right.text if right.kind == "const" else None
        ri = as_interval(right)
        if lt is not None and rt is not None:
            return vconst(lt + rt)
        if lt is not None and ri is not None and right.kind == "int":
            return AbsValue("prefix", lt) if lt else TOP
        if lt is not None:
            return AbsValue("prefix", lt)
        if left.kind == "prefix":
            return left
        if left.kind == "int" and rt is not None:
            return TOP
        return TOP

    def _part_value(self, part, st: _State, emit: bool, stmt) -> AbsValue:
        if isinstance(part, Lit):
            return vconst(part.text)
        if isinstance(part, SingleQuoted):
            return vconst(part.text)
        if isinstance(part, Escaped):
            return vconst(part.char)
        if isinstance(part, DoubleQuoted):
            result = vconst("")
            for sub in part.parts:
                result = self._concat(result,
                                      self._part_value(sub, st, emit, stmt))
            return result
        if isinstance(part, Param):
            return self._param_value(part, st, emit, stmt)
        if isinstance(part, ArithSub):
            return self._arith_value(part, st, emit, stmt)
        if isinstance(part, CmdSub):
            self._visit(part.command, st.copy(), emit, True)  # subshell
            return TOP
        return TOP  # pragma: no cover

    def _use(self, name: str, st: _State, emit: bool, stmt) -> None:
        """Record a variable read; flag JS4004 under a constant `set -u`."""
        if name in _SPECIAL or not name.isidentifier():
            return
        if st.options.get("nounset") is not True:
            return
        value = st.vars.get(name)
        provably_unset = value is UNSET or (
            value is None and name in self.all_defs)
        if provably_unset:
            self._finding(
                "JS4004",
                f"`{name}` is provably unset here: under `set -u` the "
                "shell aborts", stmt, emit, context=name)

    def _param_value(self, part: Param, st: _State, emit: bool,
                     stmt) -> AbsValue:
        name = part.name
        if name in _SPECIAL or not name.isidentifier():
            return TOP
        base = st.vars.get(name)
        op = part.op
        opn = op.lstrip(":")
        colon = op.startswith(":")
        if op == "":
            self._use(name, st, emit, stmt)
            if base is None:
                return TOP
            if base is UNSET:
                return vconst("")  # without nounset, unset expands empty
            return base
        if op == "length":
            self._use(name, st, emit, stmt)
            if base is not None and base.kind == "const":
                return vconst(str(len(base.text)))
            return vint(0, None)
        default = (self._abs_word(part.word, st, emit, stmt)
                   if part.word is not None else vconst(""))
        if opn == "-":
            if base is UNSET:
                return default
            if base is not None and base.kind == "const":
                if colon and base.text == "":
                    return default
                return base
            return TOP
        if opn == "=":
            if base is UNSET or (colon and base is not None
                                 and base.kind == "const"
                                 and base.text == ""):
                st.vars[name] = default
                return default
            if base is None:
                st.vars[name] = TOP
                return TOP
            return base if base.kind == "const" else TOP
        if opn == "+":
            if base is UNSET:
                return vconst("")
            if base is not None and base.kind == "const":
                if colon and base.text == "":
                    return vconst("")
                return default
            return TOP
        if opn == "?":
            self._use(name, st, emit, stmt)
            if base is not None and base.kind == "const":
                return base
            return TOP
        if opn in ("#", "##", "%", "%%"):
            self._use(name, st, emit, stmt)
            from ..semantics.expansion import has_glob_chars
            if base is not None and base.kind == "const" and \
                    part.word is not None:
                pat = self._abs_word(part.word, st, emit, stmt)
                if pat.kind == "const" and not has_glob_chars(pat.text):
                    text = base.text
                    if opn in ("#", "##"):
                        return vconst(text[len(pat.text):]
                                      if text.startswith(pat.text) else text)
                    return vconst(text[:-len(pat.text)]
                                  if pat.text and text.endswith(pat.text)
                                  else text)
            if base is not None and base.kind == "const" and \
                    part.word is None:
                return base
            return TOP
        return TOP  # pragma: no cover - PARAM_OPS is exhaustive

    def _arith_value(self, part: ArithSub, st: _State, emit: bool,
                     stmt) -> AbsValue:
        pieces: list[str] = []
        resolvable = True
        for sub in part.parts:
            if isinstance(sub, Lit):
                pieces.append(sub.text)
            elif isinstance(sub, (SingleQuoted,)):
                pieces.append(sub.text)
            elif isinstance(sub, Escaped):
                pieces.append(sub.char)
            elif isinstance(sub, Param) and sub.op == "":
                self._use(sub.name, st, emit, stmt)
                value = st.vars.get(sub.name)
                if value is not None and value.kind == "const":
                    pieces.append(value.text)
                elif value is UNSET:
                    pieces.append("")
                else:
                    resolvable = False
            else:
                if isinstance(sub, CmdSub):
                    self._visit(sub.command, st.copy(), emit, True)
                resolvable = False
        expr = "".join(pieces)
        if not resolvable:
            self._invalidate_arith_names(expr, st)
            return vint(None, None)

        def get(name: str) -> str:
            value = st.vars.get(name)
            if value is UNSET or (value is None
                                  and name not in self.all_defs):
                return ""  # unset/environmentally-absent reads as 0
            if value is not None and value.kind == "const":
                return value.text
            raise _Unknown(name)

        def set_(name: str, value: str) -> None:
            st.vars[name] = vconst(value)

        try:
            n = arith.evaluate(expr, get, set_)
        except (_Unknown, arith.ArithError):
            self._invalidate_arith_names(expr, st)
            return vint(None, None)
        return vconst(str(n))

    def _invalidate_arith_names(self, expr: str, st: _State) -> None:
        """A failed/partial evaluation may still have assigned: drop every
        name the expression mentions to ⊤ when it could assign."""
        try:
            if not arith.has_side_effects(expr):
                return
            tokens = arith.tokenize(expr)
        except arith.ArithError:
            return
        for tok in tokens:
            if tok and (tok[0].isalpha() or tok[0] == "_") and \
                    tok.isidentifier():
                st.vars[tok] = TOP

    # -- region byte-volume certificates --------------------------------------------

    def _region_costs(self, program: Command) -> None:
        """Post-pass: byte-volume bounds for candidate dataflow regions
        (flat pipelines over literal files), when a filesystem is given."""
        if self.fs is None:
            return
        from .candidates import pipeline_stages
        library = self.library
        if library is None:
            from ..annotations.library import DEFAULT_LIBRARY
            library = DEFAULT_LIBRARY
        for node in walk(program):
            if id(node) in self.dead or id(node) in self.cost_certificates:
                continue
            stages = pipeline_stages(node)
            if stages is None:
                continue
            volume = self._region_input_bytes(stages[0])
            if volume is None:
                continue
            stage_bytes = []
            current = float(volume)
            for stage in stages:
                if not stage.words or not stage.words[0].is_literal():
                    stage_bytes = []
                    break
                cmd = stage.words[0].literal_value()
                stage_bytes.append((cmd, int(current)))
                argv = [w.literal_value() for w in stage.words
                        if w.is_literal()]
                spec = library.classify(argv[0], argv[1:]) if argv else None
                if spec is not None:
                    current *= spec.selectivity
            cert = make_cost_certificate(
                unparse(node), "region", 1, 1, volume, volume,
                tuple(stage_bytes))
            self.cost_certificates[id(node)] = cert
            self.cost_list.append(cert)

    def _region_input_bytes(self, first_stage: SimpleCommand) -> Optional[int]:
        """Total bytes the first stage reads, from literal redirects or
        literal file operands that exist in the supplied filesystem."""
        paths: list[str] = []
        for redirect in first_stage.redirects:
            if redirect.op == "<" and redirect.default_fd() == 0 and \
                    redirect.target.is_literal():
                paths.append(redirect.target.literal_value())
        if not paths:
            for word in first_stage.words[1:]:
                if word.is_literal():
                    text = word.literal_value()
                    if not text.startswith("-") and self._fs_exists(text):
                        paths.append(text)
        if not paths:
            return None
        total = 0
        for path in paths:
            try:
                full = path if path.startswith("/") else \
                    self.cwd.rstrip("/") + "/" + path
                total += self.fs.size(full)
            except Exception:
                return None
        return total


def analyze_value_flow(program: Command, fs=None, cwd: str = "/",
                       library=None) -> AbsintResult:
    """Run the S20 abstract interpreter over a parsed program."""
    return ValueFlow(fs=fs, cwd=cwd, library=library).run(program)
