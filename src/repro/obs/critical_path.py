"""Critical-path analysis over a trace's accounting graph.

The dependency graph is reconstructed from what the tracer observed:
a process depends on the writers of every pipe it read from and on the
children it waited on.  The critical path is walked backwards from the
last process to finish, hopping at each step to the dependency that
finished last — the chain whose members each other process was (possibly
transitively) waiting for.  Each hop is attributed to the resource that
bounded it (CPU vs disk vs backpressure vs waiting), which is what turns
a Figure-1 timing into an explanation ("disk-IOPS-bound after burst
credits drain").
"""

from __future__ import annotations

from dataclasses import dataclass

from .accounting import ProcStats, ResourceAccounting
from .tracer import Tracer


@dataclass
class Hop:
    """One process on the critical path plus its bounding resource."""

    stats: ProcStats
    bound: str
    breakdown: dict


def critical_path(acct: ResourceAccounting) -> list[Hop]:
    """The longest dependency chain, earliest hop first."""
    procs = acct.per_process
    if not procs:
        return []
    writers_of = {key: ps.writers for key, ps in acct.pipes.items()}

    def preds(st: ProcStats) -> set[int]:
        out: set[int] = set()
        for key in st.pipes_read:
            out |= writers_of.get(key, set())
        out |= st.waited_on
        out.discard(st.pid)
        return out

    def endtime(st: ProcStats) -> float:
        return st.end if st.end is not None else 0.0

    current = max(procs.values(), key=lambda s: (endtime(s), s.pid))
    chain = [current]
    seen = {current.pid}
    while True:
        candidates = [procs[p] for p in preds(current)
                      if p in procs and p not in seen]
        if not candidates:
            break
        current = max(candidates, key=lambda s: (endtime(s), s.pid))
        chain.append(current)
        seen.add(current.pid)
    chain.reverse()
    return [Hop(st, st.bound(), st.breakdown()) for st in chain]


def render_report(tracer: Tracer, top: int = 8) -> str:
    """The plain-text critical-path report ``jash profile`` prints."""
    from ..bench.report import format_table

    acct = tracer.accounting
    chain = critical_path(acct)
    lines: list[str] = []
    ends = [st.end for st in acct.per_process.values() if st.end is not None]
    starts = [st.start for st in acct.per_process.values()]
    total = (max(ends) - min(starts)) if ends and starts else 0.0
    lines.append("== critical path (longest dependency chain) ==")
    if not chain:
        lines.append("(no processes traced)")
        return "\n".join(lines)
    lines.append(f"total traced wall clock: {total:.4f} virtual seconds; "
                 f"{len(chain)} hop(s) on the critical path")
    rows = []
    for i, hop in enumerate(chain, 1):
        st = hop.stats
        name = st.name + (" [splice]" if st.splice_bytes else "")
        rows.append([
            i, st.pid, name, st.node, st.wall_s, hop.bound,
            hop.breakdown["cpu"], hop.breakdown["disk"],
            hop.breakdown["backpressure"], hop.breakdown["input-wait"],
            hop.breakdown["child-wait"],
        ])
    lines.append(format_table(
        ["hop", "pid", "process", "node", "wall_s", "bound", "cpu_s",
         "disk_s", "backpr_s", "inwait_s", "childwait_s"], rows))
    # which hop dominates, in words
    worker_hops = [h for h in chain if h.bound != "child-wait"] or chain
    slow = max(worker_hops, key=lambda h: h.stats.wall_s)
    lines.append(
        f"slowest hop: pid {slow.stats.pid} ({slow.stats.name}) — "
        f"{slow.bound}-bound for {slow.breakdown[slow.bound]:.4f}s of "
        f"{slow.stats.wall_s:.4f}s wall")

    splices = [r for r in tracer.records if r.cat == "splice"]
    if splices:
        lines.append(f"== splice fast path ({len(splices)} pump(s)) ==")
        for r in splices[:top]:
            dsts = ",".join(r.args.get("dst", []))
            err = f" error={r.args['error']}" if "error" in r.args else ""
            lines.append(
                f"pid {r.pid}: {r.args.get('src')} -> {dsts}  "
                f"{r.args.get('bytes', 0)} bytes in "
                f"{r.args.get('chunks', 0)} chunk(s), "
                f"{r.dur:.4f}s{err}")
        if len(splices) > top:
            lines.append(f"... {len(splices) - top} more")
    rounds = [r for r in tracer.records
              if r.cat == "supervise" and r.name == "supervise.round"]
    if rounds:
        events = [r for r in tracer.records
                  if r.cat == "supervise" and r.name != "supervise.round"]
        lines.append(f"== supervision ({len(rounds)} round(s)) ==")
        for r in rounds[:top]:
            lines.append(
                f"round {r.args.get('round', '?')}: engine="
                f"{r.args.get('engine', '?')} attempts="
                f"{r.args.get('attempts', '?')} {r.dur:.4f}s")
        if len(rounds) > top:
            lines.append(f"... {len(rounds) - top} more")
        if events:
            counts: dict[str, int] = {}
            for r in events:
                counts[r.name] = counts.get(r.name, 0) + 1
            lines.append("events: " + " ".join(
                f"{name}={n}" for name, n in sorted(counts.items())))
    notes = [r for r in tracer.records
             if r.cat == "disk" and r.name.startswith("disk.credits_exhausted")]
    if notes:
        lines.append("== resource notes ==")
        for r in notes:
            node = r.name.split(":", 1)[1] if ":" in r.name else r.node
            lines.append(f"disk on node {node!r}: burst credits exhausted at "
                         f"t={r.ts:.4f}s — IOPS-bound (base rate) afterwards")
    faults = [r for r in tracer.records if r.cat == "fault"]
    if faults:
        lines.append(f"== injected faults ({len(faults)}) ==")
        for r in faults[:top]:
            lines.append(f"t={r.ts:.6f} {r.name} target={r.args.get('target')} "
                         f"op={r.args.get('op')} [{r.args.get('source')}]")
        if len(faults) > top:
            lines.append(f"... {len(faults) - top} more")
    lines.append("== top processes by wall clock ==")
    lines.append(acct.table(top=top))
    return "\n".join(lines)
