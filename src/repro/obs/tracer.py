"""The structured tracer: typed span/event records on the virtual clock.

A :class:`Tracer` is installed on a kernel
(``Shell(tracer=Tracer())`` or ``kernel.install_tracer(tracer)``) and
receives callbacks from every layer of the stack:

* the kernel — syscall dispatch, process spawn/exit/wait, CPU bursts,
  disk I/O (with queue wait, IOPS mode and burst-credit balance), pipe
  reads/writes (with queue depth) and backpressure stalls, scheduler
  ticks, and network sends;
* :mod:`repro.vos.faults` — every injected fault, inline, with the
  plan's op counter;
* the engines — Jash JIT compile/decide/degrade, PaSh-AOT regions,
  transactional attempts/rollbacks/commits, and distributed dispatch.

Tracing is **zero-cost when disabled**: no tracer installed means every
call site is a single ``is not None`` guard and no record object is ever
constructed (:attr:`Tracer.total_records` is the witness the tests use).

Records are deterministic for a fixed workload + seed: they carry only
virtual timestamps, kernel pids, and canonicalized names — pipe ids and
``/tmp`` scratch paths (which embed process-global counters) are
renumbered in first-seen order so two identical runs export
byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .accounting import ResourceAccounting

#: Record phases, mirroring the Chrome trace_event vocabulary.
SPAN = "X"
INSTANT = "i"
COUNTER = "C"


@dataclass
class TraceRecord:
    """One typed trace record (span, instant, or counter)."""

    name: str
    cat: str      # "process" | "cpu" | "disk" | "pipe" | "splice" | "wait"
                  # | "sched" | "net" | "fault" | "syscall" | "jit" | "aot"
                  # | "tx" | "analysis" | "dshell" | "supervise"
    ph: str       # SPAN | INSTANT | COUNTER
    ts: float     # virtual seconds (span start)
    dur: float = 0.0
    pid: int = 0  # vOS pid (0 = kernel-level record)
    node: str = ""
    args: dict = field(default_factory=dict)


class Tracer:
    """Collects typed records and folds them into ResourceAccounting.

    ``record_events=False`` keeps the accounting but drops the event
    list (cheap metrics-only mode for benchmarks); ``syscall_events``
    additionally emits one instant per syscall dispatch (verbose).
    """

    #: class-wide count of records ever emitted — the "zero events when
    #: tracing is disabled" invariant is asserted against this.
    total_records = 0

    def __init__(self, record_events: bool = True,
                 syscall_events: bool = False):
        self.record_events = record_events
        self.syscall_events = syscall_events
        self.records: list[TraceRecord] = []
        self.accounting = ResourceAccounting()
        self.subscribers: list = []
        # open-span state, keyed by pid
        self._cpu: dict[int, tuple[float, float]] = {}    # start, work
        self._stall: dict[int, tuple[float, str, int]] = {}  # start, kind, pipe
        self._wait: dict[int, tuple[float, int]] = {}     # start, child pid
        self._splice: dict[int, tuple[float, str, list]] = {}  # start, src, dsts
        # canonical renumbering for determinism
        self._pipe_keys: dict[int, int] = {}
        self._tmp_names: dict[str, str] = {}
        self._credits_exhausted: set[str] = set()

    # -- emission ------------------------------------------------------------------

    def _emit(self, record: TraceRecord) -> None:
        Tracer.total_records += 1
        if self.record_events:
            self.records.append(record)
        for fn in self.subscribers:
            fn(record)

    def subscribe(self, fn) -> None:
        """Call ``fn(record)`` for every record as it is emitted."""
        self.subscribers.append(fn)

    def attach(self, kernel) -> None:
        """Bind to the kernel being traced (called by install_tracer) so
        accounting can surface kernel-level counters like dispatches."""
        self.accounting.attach(kernel)

    # -- canonical names -----------------------------------------------------------

    def pipe_key(self, pipe) -> int:
        key = self._pipe_keys.get(pipe.id)
        if key is None:
            key = len(self._pipe_keys) + 1
            self._pipe_keys[pipe.id] = key
        return key

    def canon_path(self, path: str) -> str:
        """Stable names for /tmp scratch files (their real names embed
        process-global counters and would break trace determinism)."""
        if not path.startswith("/tmp/"):
            return path
        canon = self._tmp_names.get(path)
        if canon is None:
            canon = f"/tmp/scratch.{len(self._tmp_names) + 1}"
            self._tmp_names[path] = canon
        return canon

    # -- generic hooks for engine layers ---------------------------------------------

    def span(self, cat: str, name: str, start: float, end: float,
             proc=None, **args) -> None:
        self._emit(TraceRecord(
            name, cat, SPAN, start, max(0.0, end - start),
            pid=proc.pid if proc is not None else 0,
            node=proc.node.name if proc is not None else "", args=args,
        ))

    def instant(self, cat: str, name: str, now: float, proc=None, **args) -> None:
        self._emit(TraceRecord(
            name, cat, INSTANT, now,
            pid=proc.pid if proc is not None else 0,
            node=proc.node.name if proc is not None else "", args=args,
        ))

    def counter(self, cat: str, name: str, now: float, node: str = "",
                **values) -> None:
        self._emit(TraceRecord(name, cat, COUNTER, now, node=node, args=values))

    # -- per-region accounting (engines) ----------------------------------------------

    def region_begin(self) -> dict[str, float]:
        """Snapshot the accounting totals; pass to :meth:`region_end`."""
        return self.accounting.totals()

    def region_end(self, cat: str, name: str, start: float, end: float,
                   snapshot: dict[str, float], proc=None, **args) -> None:
        """Close a region: emit a span whose args carry the resource
        delta consumed while the region ran."""
        from .accounting import RegionStats

        totals = self.accounting.totals()
        delta = {k: totals[k] - snapshot.get(k, 0.0) for k in totals}
        self.accounting.regions.append(
            RegionStats(cat, name, start, end, args=dict(args), delta=delta))
        shown = {k: round(v, 9) for k, v in delta.items()
                 if k != "processes" and v}
        self.span(cat, name, start, end, proc=proc, **args, delta=shown)

    # -- kernel hooks: processes ---------------------------------------------------------

    def on_spawn(self, now: float, proc, parent=None) -> None:
        st = self.accounting.proc(proc)
        if parent is not None:
            st.parent = parent.pid
        self._emit(TraceRecord(
            f"spawn:{proc.name}", "process", INSTANT, now, pid=proc.pid,
            node=proc.node.name,
            args={"parent": parent.pid if parent is not None else 0},
        ))

    def on_exit(self, now: float, proc) -> None:
        # close any span left open by a kill while blocked
        if proc.pid in self._cpu:
            start, work = self._cpu.pop(proc.pid)
            self.span("cpu", "cpu", start, now, proc, killed=True)
        if proc.pid in self._stall:
            self.on_pipe_stall_end(now, proc, 0, killed=True)
        if proc.pid in self._splice:  # pragma: no cover - kernel closes first
            self.on_splice_end(now, proc, 0, 0, error="killed")
        if proc.pid in self._wait:
            start, child = self._wait.pop(proc.pid)
            st = self.accounting.proc(proc)
            st.wait_s += now - start
            self.span("wait", "wait", start, now, proc, child=child,
                      killed=True)
        st = self.accounting.proc(proc)
        st.end = now
        st.exit_status = proc.exit_status
        args = {"status": proc.exit_status}
        if proc.error:
            args["error"] = proc.error
        self._emit(TraceRecord(
            f"{proc.name}", "process", SPAN, proc.start_time,
            max(0.0, now - proc.start_time), pid=proc.pid,
            node=proc.node.name, args=args,
        ))

    def on_syscall(self, now: float, proc, request) -> None:
        self._emit(TraceRecord(
            type(request).__name__, "syscall", INSTANT, now, pid=proc.pid,
            node=proc.node.name,
        ))

    # -- kernel hooks: CPU ---------------------------------------------------------------

    def on_cpu_begin(self, now: float, proc, work: float) -> None:
        self._cpu[proc.pid] = (now, work)

    def on_cpu_end(self, now: float, proc) -> None:
        entry = self._cpu.pop(proc.pid, None)
        if entry is None:
            return
        start, work = entry
        self.accounting.proc(proc).cpu_s += work
        self.span("cpu", "cpu", start, now, proc,
                  core_s=round(work, 9))

    def on_cpu_killed(self, now: float, proc, remaining: float) -> None:
        entry = self._cpu.pop(proc.pid, None)
        if entry is None:
            return
        start, work = entry
        consumed = max(0.0, work - max(0.0, remaining))
        self.accounting.proc(proc).cpu_s += consumed
        self.span("cpu", "cpu", start, now, proc,
                  core_s=round(consumed, 9), killed=True)

    # -- kernel hooks: disk ---------------------------------------------------------------

    def on_disk_submit(self, now: float, disk, request) -> None:
        proc = request.process
        self.counter("disk", f"disk.queue:{proc.node.name}", now,
                     node=proc.node.name,
                     depth=len(disk.queue) + (1 if disk.current else 0))

    def on_disk_complete(self, now: float, disk, request) -> None:
        proc = request.process
        node = proc.node.name
        service = max(0.0, now - request.service_start)
        queued = max(0.0, request.service_start - request.start)
        st = self.accounting.proc(proc)
        st.disk_bytes += request.bytes
        st.disk_ops += request.ops
        st.disk_time_s += service
        st.disk_wait_s += queued
        mode = "burst" if disk.credits > 0 else "base"
        args = {
            "bytes": request.bytes,
            "ops": round(request.ops, 3),
            "queue_wait_s": round(queued, 9),
            "service_s": round(service, 9),
            "credits": round(disk.credits, 3),
            "iops_mode": mode,
        }
        if request.slow > 1.0:
            args["slow_factor"] = request.slow
        self.span("disk", f"disk.io:{disk.spec.name}", request.start, now,
                  proc, **args)
        self.counter("disk", f"disk.credits:{node}", now, node=node,
                     credits=round(disk.credits, 3))
        if disk.credits <= 0 and disk.spec.burst_credit_ops > 0 \
                and node not in self._credits_exhausted:
            self._credits_exhausted.add(node)
            self.instant("disk", f"disk.credits_exhausted:{node}", now, proc)

    # -- kernel hooks: pipes ---------------------------------------------------------------

    def on_pipe_read(self, now: float, proc, pipe, nbytes: int) -> None:
        key = self.pipe_key(pipe)
        ps = self.accounting.pipe(key)
        ps.readers.add(proc.pid)
        ps.bytes_read += nbytes
        self.accounting.proc(proc).pipes_read.add(key)
        self.counter("pipe", f"pipe.depth:{key}", now, node=proc.node.name,
                     depth=pipe.size)

    def on_pipe_write(self, now: float, proc, pipe, nbytes: int) -> None:
        key = self.pipe_key(pipe)
        ps = self.accounting.pipe(key)
        ps.writers.add(proc.pid)
        ps.bytes_written += nbytes
        depth = pipe.size
        if depth > ps.peak_depth:
            ps.peak_depth = depth
        self.accounting.proc(proc).pipes_written.add(key)
        self.counter("pipe", f"pipe.depth:{key}", now, node=proc.node.name,
                     depth=depth)

    def on_pipe_stall_begin(self, now: float, proc, pipe, kind: str) -> None:
        self._stall[proc.pid] = (now, kind, self.pipe_key(pipe))

    def on_pipe_stall_end(self, now: float, proc, nbytes: int = 0,
                          broken: bool = False, killed: bool = False) -> None:
        entry = self._stall.pop(proc.pid, None)
        if entry is None:
            return
        start, kind, key = entry
        st = self.accounting.proc(proc)
        if kind == "read":
            st.stall_read_s += now - start
        else:
            st.stall_write_s += now - start
        args = {"pipe": key, "bytes": nbytes}
        if broken:
            args["broken"] = True
        if killed:
            args["killed"] = True
        self.span("pipe", f"stall.{kind}", start, now, proc, **args)

    # -- kernel hooks: splice fast path ------------------------------------------------------

    def _endpoint(self, handle) -> str:
        """Canonical name for a splice endpoint (pipe or file handle)."""
        pipe = getattr(handle, "pipe", None)
        if pipe is not None:
            return f"pipe:{self.pipe_key(pipe)}"
        path = getattr(handle, "path", None)
        if path is not None:
            return self.canon_path(path)
        return type(handle).__name__

    def on_splice_begin(self, now: float, proc, src, dsts) -> None:
        self._splice[proc.pid] = (
            now, self._endpoint(src), [self._endpoint(d) for d in dsts])

    def on_splice_end(self, now: float, proc, nbytes: int, chunks: int,
                      error: str = "") -> None:
        entry = self._splice.pop(proc.pid, None)
        if entry is None:
            return
        start, src, dsts = entry
        st = self.accounting.proc(proc)
        st.splice_bytes += nbytes
        st.splice_chunks += chunks
        args = {"bytes": nbytes, "chunks": chunks, "src": src, "dst": dsts}
        if error:
            args["error"] = error
        self.span("splice", "splice", start, now, proc, **args)

    # -- kernel hooks: wait / net / scheduler ------------------------------------------------

    def on_wait_edge(self, proc, child) -> None:
        self.accounting.proc(proc).waited_on.add(child.pid)

    def on_wait_begin(self, now: float, proc, child) -> None:
        self._wait[proc.pid] = (now, child.pid)

    def on_wait_end(self, now: float, proc, child) -> None:
        entry = self._wait.pop(proc.pid, None)
        if entry is None:
            return
        start, child_pid = entry
        self.accounting.proc(proc).wait_s += now - start
        self.span("wait", "wait", start, now, proc, child=child_pid)

    def on_net(self, now: float, proc, dst: str, nbytes: int) -> None:
        self.accounting.proc(proc).net_bytes += nbytes
        self.instant("net", f"net.send:{dst}", now, proc, bytes=nbytes)

    def on_tick(self, now: float, ready: int, running: int) -> None:
        self.counter("sched", "sched", now, ready=ready, running=running)

    # -- fault hook (repro.vos.faults) ---------------------------------------------------------

    def on_fault(self, now: float, event, op: int) -> None:
        self._emit(TraceRecord(
            f"fault.{event.kind}", "fault", INSTANT, now,
            args={"target": self.canon_path(event.target),
                  "source": event.source, "op": op},
        ))


def format_record(record: TraceRecord) -> str:
    """Render a record as a one-line text string (debug printing and
    ad-hoc subscriber callbacks)."""
    extra = ""
    if record.args:
        extra = " " + " ".join(f"{k}={v}" for k, v in sorted(record.args.items()))
    if record.ph == SPAN:
        return (f"[{record.ts:.6f}+{record.dur:.6f}] {record.cat} "
                f"{record.name} pid={record.pid}{extra}")
    return f"[{record.ts:.6f}] {record.cat} {record.name} pid={record.pid}{extra}"
