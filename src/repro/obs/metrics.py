"""The deterministic metrics plane (S19): virtual-clock time series.

A :class:`MetricsRegistry` is the pull-style complement to the
:class:`~repro.obs.tracer.Tracer`: where the tracer records *events*,
the registry maintains *instruments* — typed counters, gauges, and
log2-bucketed histograms, labelled by process/command, node, pipe,
engine, or fault kind — and samples them into windowed time series at
fixed **virtual-time** intervals.  Because the sampling clock is the
simulation clock, two runs of the same seeded workload produce
byte-identical snapshots (:func:`dumps_snapshot` is the witness the
tests and the CI gate compare).

Like the tracer, the registry is **zero-cost when not installed**:
every hook site in the kernel and the engines is a single
``is not None`` guard, and no instrument object is ever constructed
(:attr:`MetricsRegistry.total_updates` is the class-level witness).

Three consumers sit on top:

* ``jash run --metrics OUT.json`` — the deterministic snapshot export;
* :func:`render_prometheus` — Prometheus text exposition
  (``# TYPE``/``# HELP`` + sorted sample lines), for scraping a
  long-running ``serve``/``--supervise`` process;
* ``jash stat`` (:mod:`repro.obs.stat`) — per-window tables: top
  commands by CPU/disk/stall, pipe backpressure, cache hit rate over
  time.

:class:`ObservedCosts` closes the loop for profile-guided optimization:
it distills the registry's per-command counters into measured
CPU-per-byte coefficients and dispatch rates that
:mod:`repro.compiler.cost` consumes in place of the static estimates
(behind ``JashConfig.profile_feedback``; decisions are bit-identical
when the flag is off).

Determinism rules (also DESIGN.md §13):

* samples happen only when *virtual* time crosses a window boundary —
  never on the host clock;
* label values are canonical: pipes are renumbered in first-seen order
  and ``/tmp`` scratch paths are renamed, exactly as the tracer does;
* instruments are exported in registration order (itself a function of
  the deterministic simulation), with consecutive identical samples
  collapsed into one window row;
* no wall-clock value, host name, or memory address ever enters an
  instrument or a snapshot.
"""

from __future__ import annotations

import json
import math
from typing import Optional

#: histogram bucket exponents are clamped to this range (2^-30 .. 2^40)
_MIN_EXP = -30
_MAX_EXP = 40


def _bucket_exp(value: float) -> int:
    """The log2 bucket for ``value``: smallest e with value <= 2**e."""
    if value <= 0.0:
        return _MIN_EXP
    mantissa, exp = math.frexp(value)  # value = mantissa * 2**exp
    if mantissa == 0.5:
        exp -= 1
    return min(_MAX_EXP, max(_MIN_EXP, exp))


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def sample(self) -> float:
        return self.value


class Gauge:
    """A value that goes up and down (queue depth, occupancy, age)."""

    __slots__ = ("value", "peak")
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def sample(self) -> float:
        return self.value


class Histogram:
    """Log2-bucketed distribution: bucket ``e`` counts observations in
    ``(2**(e-1), 2**e]``.  Samples fold to (count, sum) per window."""

    __slots__ = ("buckets", "count", "sum")
    kind = "histogram"

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        e = _bucket_exp(value)
        self.buckets[e] = self.buckets.get(e, 0) + 1
        self.count += 1
        self.sum += value

    def sample(self) -> float:
        return float(self.count)


class MetricsRegistry:
    """Typed, labelled instruments sampled on the virtual clock.

    ``interval`` is the sampling window in virtual seconds.  The kernel
    calls :meth:`maybe_sample` as the clock advances (one guarded call
    per event-loop step); engines and the supervisor update instruments
    through the same get-or-create accessors user code uses.
    """

    #: class-wide count of instrument updates ever applied — the
    #: "zero-cost when not installed" witness (cf. Tracer.total_records).
    total_updates = 0

    def __init__(self, interval: float = 0.25):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        #: (name, labels-tuple) -> instrument
        self._instruments: dict[tuple, object] = {}
        #: registration order: (name, labels-tuple, instrument)
        self.series: list[tuple[str, tuple, object]] = []
        #: window rows: (t_first, t_last, [value per series at sample])
        self.windows: list[list] = []
        self._next_sample: float = self.interval
        # canonical renumbering for determinism (mirrors the tracer)
        self._pipe_keys: dict[int, int] = {}
        self._tmp_names: dict[str, str] = {}
        # open pipe-stall state, keyed by pid
        self._stall: dict[int, tuple[float, str, int]] = {}
        self._live_procs = 0

    # -- instrument access ---------------------------------------------------

    def _get(self, cls, name: str, labels: tuple):
        key = (name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls()
            self._instruments[key] = inst
            self.series.append((name, labels, inst))
        MetricsRegistry.total_updates += 1
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, tuple(sorted(labels.items())))

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, tuple(sorted(labels.items())))

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, tuple(sorted(labels.items())))

    # -- canonical names -----------------------------------------------------

    def pipe_key(self, pipe) -> int:
        key = self._pipe_keys.get(pipe.id)
        if key is None:
            key = len(self._pipe_keys) + 1
            self._pipe_keys[pipe.id] = key
        return key

    def canon_path(self, path: str) -> str:
        if not path.startswith("/tmp/"):
            return path
        canon = self._tmp_names.get(path)
        if canon is None:
            canon = f"/tmp/scratch.{len(self._tmp_names) + 1}"
            self._tmp_names[path] = canon
        return canon

    # -- virtual-clock sampling ----------------------------------------------

    def maybe_sample(self, now: float) -> None:
        """Record a window row for every boundary the clock crossed.

        Between two boundaries crossed by one jump no instrument can
        have changed (updates only happen while time stands still), so
        a run of identical samples collapses into one row spanning
        [t_first, t_last]."""
        if now < self._next_sample:
            return
        values = [inst.sample() for _name, _labels, inst in self.series]
        first = self._next_sample
        last = first
        while self._next_sample <= now:
            last = self._next_sample
            self._next_sample += self.interval
        if self.windows:
            prev = self.windows[-1]
            if prev[2] == values and len(prev[2]) == len(values):
                prev[1] = last
                return
        self.windows.append([first, last, values])

    def finish(self, now: float) -> None:
        """Close the trailing partial window (call once, at run end)."""
        if not self.windows or self.windows[-1][1] < now:
            values = [inst.sample() for _n, _l, inst in self.series]
            if self.windows and self.windows[-1][2] == values:
                self.windows[-1][1] = now
            else:
                self.windows.append([now, now, values])

    # -- kernel hooks (single-guard sites, mirroring the Tracer) -------------

    def on_dispatch(self, proc, request) -> None:
        self.counter("kernel.dispatches", req=type(request).__name__).inc()
        self.counter("proc.dispatches", proc=proc.name).inc()

    def on_spawn(self, now: float, proc) -> None:
        self.counter("proc.spawns", proc=proc.name).inc()
        self._live_procs += 1
        self.gauge("procs.live").set(float(self._live_procs))

    def on_exit(self, now: float, proc) -> None:
        self._live_procs = max(0, self._live_procs - 1)
        self.gauge("procs.live").set(float(self._live_procs))
        if proc.pid in self._stall:
            self.on_pipe_stall_end(now, proc)

    def on_cpu(self, now: float, proc, work: float) -> None:
        """CPU core-seconds, counted at burst submission."""
        self.counter("proc.cpu_s", proc=proc.name).inc(work)
        self.histogram("cpu.burst_s").observe(work)

    def on_disk_submit(self, now: float, disk, request) -> None:
        proc = request.process
        self.gauge("disk.queue_depth", node=proc.node.name).set(
            float(len(disk.queue) + (1 if disk.current else 0)))

    def on_disk_complete(self, now: float, disk, request) -> None:
        proc = request.process
        node = proc.node.name
        self.counter("disk.bytes", node=node).inc(float(request.bytes))
        self.counter("disk.ops", node=node).inc(request.ops)
        self.counter("disk.time_s", node=node).inc(
            max(0.0, now - request.service_start))
        self.counter("proc.disk_bytes", proc=proc.name).inc(
            float(request.bytes))
        self.gauge("disk.credits", node=node).set(disk.credits)
        self.histogram("disk.request_bytes").observe(float(request.bytes))

    def on_pipe_read(self, now: float, proc, pipe, nbytes: int) -> None:
        key = self.pipe_key(pipe)
        self.counter("pipe.read_bytes", pipe=key).inc(float(nbytes))
        self.counter("proc.read_bytes", proc=proc.name).inc(float(nbytes))
        self.gauge("pipe.occupancy", pipe=key).set(float(pipe.size))

    def on_pipe_write(self, now: float, proc, pipe, nbytes: int) -> None:
        key = self.pipe_key(pipe)
        self.counter("pipe.write_bytes", pipe=key).inc(float(nbytes))
        self.gauge("pipe.occupancy", pipe=key).set(float(pipe.size))

    def on_pipe_stall_begin(self, now: float, proc, pipe, kind: str) -> None:
        self._stall[proc.pid] = (now, kind, self.pipe_key(pipe))

    def on_pipe_stall_end(self, now: float, proc) -> None:
        entry = self._stall.pop(proc.pid, None)
        if entry is None:
            return
        start, kind, key = entry
        self.counter("pipe.stalls", pipe=key, kind=kind).inc()
        self.counter("pipe.stall_s", pipe=key, kind=kind).inc(now - start)
        self.counter("proc.stall_s", kind=kind, proc=proc.name).inc(
            now - start)

    def on_splice(self, proc, nbytes: int, nparts: int) -> None:
        self.counter("kernel.splice_bytes").inc(float(nbytes))
        self.counter("kernel.splice_chunks").inc(float(nparts))

    def on_net(self, now: float, proc, dst: str, nbytes: int) -> None:
        self.counter("net.bytes", node=proc.node.name).inc(float(nbytes))

    def on_fault(self, now: float, event) -> None:
        self.counter("faults.fired", kind=event.kind).inc()

    # -- snapshot / export ---------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """Current sample value of one instrument (0.0 if absent)."""
        inst = self._instruments.get((name, tuple(sorted(labels.items()))))
        return inst.sample() if inst is not None else 0.0

    def sum_by_name(self, name: str) -> float:
        """Sum of an instrument's sample value across all label sets."""
        return sum(inst.sample() for n, _l, inst in self.series if n == name)

    def snapshot(self) -> dict:
        """The deterministic, JSON-able state of every instrument plus
        the windowed time series (sparse: each window row carries only
        the series whose value changed since the previous row)."""
        series = []
        for name, labels, inst in self.series:
            entry: dict = {"name": name, "kind": inst.kind,
                           "labels": {k: v for k, v in labels}}
            if inst.kind == "histogram":
                entry["count"] = inst.count
                entry["sum"] = round(inst.sum, 9)
                entry["buckets"] = {str(e): c for e, c
                                    in sorted(inst.buckets.items())}
            else:
                entry["value"] = round(inst.value, 9)
                if inst.kind == "gauge":
                    entry["peak"] = round(inst.peak, 9)
            series.append(entry)
        windows = []
        prev: list = []
        for t0, t1, values in self.windows:
            changed = {
                str(i): round(v, 9)
                for i, v in enumerate(values)
                if i >= len(prev) or v != prev[i]
            }
            windows.append({"t": round(t0, 9), "end": round(t1, 9),
                            "values": changed})
            prev = values
        return {
            "clock": "virtual",
            "interval": self.interval,
            "series": series,
            "windows": windows,
        }


def dumps_snapshot(registry: MetricsRegistry) -> str:
    """Serialize deterministically (sorted keys, fixed separators) —
    two same-seed runs must produce byte-identical strings."""
    return json.dumps(registry.snapshot(), sort_keys=True,
                      separators=(",", ":"))


def dump_snapshot(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(dumps_snapshot(registry))
        fh.write("\n")


# -- Prometheus text exposition ----------------------------------------------

def _prom_name(name: str) -> str:
    return "jash_" + name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format, deterministically ordered
    (families sorted by name, samples by label set)."""
    families: dict[str, list] = {}
    kinds: dict[str, str] = {}
    for name, labels, inst in registry.series:
        families.setdefault(name, []).append((labels, inst))
        kinds[name] = inst.kind
    lines: list[str] = []
    for name in sorted(families):
        kind = kinds[name]
        pname = _prom_name(name)
        if kind == "counter":
            pname += "_total"
        lines.append(f"# TYPE {pname} "
                     f"{'histogram' if kind == 'histogram' else kind}")
        for labels, inst in sorted(families[name], key=lambda kv: kv[0]):
            label_s = _prom_labels(labels)
            if kind == "histogram":
                cum = 0
                for e, c in sorted(inst.buckets.items()):
                    cum += c
                    le = 2.0 ** e
                    bucket_labels = labels + (("le", _prom_value(le)),)
                    lines.append(f"{pname}_bucket"
                                 f"{_prom_labels(bucket_labels)} {cum}")
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(f"{pname}_bucket{_prom_labels(inf_labels)} "
                             f"{inst.count}")
                lines.append(f"{pname}_sum{label_s} "
                             f"{_prom_value(round(inst.sum, 9))}")
                lines.append(f"{pname}_count{label_s} {inst.count}")
            else:
                lines.append(f"{pname}{label_s} "
                             f"{_prom_value(round(inst.value, 9))}")
    return "\n".join(lines) + "\n"


# -- profile feedback into the optimizer --------------------------------------

class ObservedCosts:
    """Measured per-command costs distilled from a registry.

    The optimizer's static model guesses a CPU-per-byte coefficient for
    every command; this object replaces the guess with the ratio the
    metrics plane actually observed (``proc.cpu_s / bytes seen``), and
    exposes per-command syscall dispatch *rates* for startup-cost
    corrections.  Consumed by :func:`repro.compiler.cost._stage_cpu`
    when ``JashConfig.profile_feedback`` is on; a command without
    enough observed bytes falls back to the static estimate, so cold
    starts behave exactly like the flag being off.
    """

    #: commands with fewer observed bytes than this keep the estimate
    MIN_OBSERVED_BYTES = 4096.0

    def __init__(self) -> None:
        self.cpu_s: dict[str, float] = {}
        self.bytes_seen: dict[str, float] = {}
        self.dispatches: dict[str, float] = {}

    @classmethod
    def from_registry(cls, registry: Optional[MetricsRegistry]
                      ) -> Optional["ObservedCosts"]:
        if registry is None:
            return None
        obs = cls()
        for name, labels, inst in registry.series:
            proc = dict(labels).get("proc")
            if proc is None:
                continue
            if name == "proc.cpu_s":
                obs.cpu_s[proc] = obs.cpu_s.get(proc, 0.0) + inst.value
            elif name in ("proc.read_bytes", "proc.disk_bytes"):
                obs.bytes_seen[proc] = (obs.bytes_seen.get(proc, 0.0)
                                        + inst.value)
            elif name == "proc.dispatches":
                obs.dispatches[proc] = (obs.dispatches.get(proc, 0.0)
                                        + inst.value)
        return obs if obs.cpu_s else None

    def coeff(self, command: str) -> Optional[float]:
        """Measured CPU seconds per input byte, or None if unobserved."""
        nbytes = self.bytes_seen.get(command, 0.0)
        if nbytes < self.MIN_OBSERVED_BYTES:
            return None
        cpu = self.cpu_s.get(command)
        if cpu is None or cpu <= 0.0:
            return None
        return cpu / nbytes

    def dispatch_rate(self, command: str) -> Optional[float]:
        """Observed syscall dispatches per input byte (the splice fast
        path drives this toward zero for pass-through stages)."""
        nbytes = self.bytes_seen.get(command, 0.0)
        if nbytes < self.MIN_OBSERVED_BYTES:
            return None
        return self.dispatches.get(command, 0.0) / nbytes
