"""Chrome ``trace_event`` export (loads in Perfetto / chrome://tracing).

The exporter maps the virtual clock to microseconds, vOS nodes to Chrome
"processes", and vOS pids to Chrome "threads", and prepends metadata
events naming both.  Output is fully deterministic for a deterministic
trace: keys are sorted and no wall-clock values are embedded, so two
runs of the same seeded workload serialize byte-identically.

:func:`validate_chrome_trace` is the schema check used by the tests and
the CI profiling smoke step.
"""

from __future__ import annotations

import json
from typing import Union

from .tracer import COUNTER, INSTANT, SPAN, Tracer

_PHASES = (SPAN, INSTANT, COUNTER, "M")


def chrome_events(tracer: Tracer) -> list[dict]:
    """Flatten a tracer's records into trace_event dicts."""
    node_ids: dict[str, int] = {}

    def node_id(name: str) -> int:
        nid = node_ids.get(name)
        if nid is None:
            nid = len(node_ids) + 1
            node_ids[name] = nid
        return nid

    node_id("kernel")  # pid 1 hosts kernel-level records (faults, etc.)
    events: list[dict] = []
    for r in tracer.records:
        ev = {
            "name": r.name,
            "cat": r.cat,
            "ph": r.ph,
            "ts": round(r.ts * 1e6, 3),
            "pid": node_id(r.node or "kernel"),
            "tid": r.pid,
        }
        if r.ph == SPAN:
            ev["dur"] = round(r.dur * 1e6, 3)
        if r.ph == INSTANT:
            ev["s"] = "t"  # thread-scoped instant
        if r.args:
            ev["args"] = r.args
        events.append(ev)

    meta: list[dict] = []
    for name, nid in sorted(node_ids.items(), key=lambda kv: kv[1]):
        meta.append({"name": "process_name", "ph": "M", "pid": nid, "tid": 0,
                     "ts": 0, "args": {"name": f"node:{name}"}})
    for pid, st in sorted(tracer.accounting.per_process.items()):
        meta.append({"name": "thread_name", "ph": "M",
                     "pid": node_id(st.node), "tid": pid, "ts": 0,
                     "args": {"name": f"{pid}:{st.name}"}})
    return meta + events


def chrome_trace(tracer: Tracer) -> dict:
    """The full exportable object ({"traceEvents": [...]})."""
    return {
        "traceEvents": chrome_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "exporter": "repro.obs"},
    }


def dumps_chrome(tracer: Tracer) -> str:
    """Serialize deterministically (sorted keys, fixed separators)."""
    return json.dumps(chrome_trace(tracer), sort_keys=True,
                      separators=(",", ":"))


def dump_chrome(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(dumps_chrome(tracer))
        fh.write("\n")


def validate_chrome_trace(obj: Union[dict, list]) -> list[str]:
    """Validate an exported trace against the trace_event schema subset
    we emit.  Returns a list of problems (empty == valid)."""
    errors: list[str] = []
    if isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object lacks a 'traceEvents' list"]
    elif isinstance(obj, list):
        events = obj
    else:
        return [f"trace must be a dict or list, got {type(obj).__name__}"]
    if not events:
        errors.append("trace contains no events")
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                errors.append(f"{where}: missing required key {key!r}")
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative number")
        if ph == SPAN:
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs dur >= 0")
        if ph == COUNTER:
            args = ev.get("args", {})
            if not args or not all(isinstance(v, (int, float))
                                   for v in args.values()):
                errors.append(f"{where}: counter args must be numeric")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: args must be an object")
        if len(errors) > 50:
            errors.append("... (truncated)")
            break
    return errors
