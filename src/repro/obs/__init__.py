"""repro.obs — stack-wide tracing, metrics, and critical-path profiling.

The observability layer the Jash proposal presumes: a typed
:class:`Tracer` threaded through the kernel, the JIT/AOT engines, the
transactional executor, and the distributed shell; per-process and
per-region :class:`ResourceAccounting`; Chrome ``trace_event`` export
(Perfetto-viewable); and a plain-text critical-path report.

::

    from repro import Shell, JashOptimizer
    from repro.obs import Tracer, dump_chrome, render_report

    tracer = Tracer()
    sh = Shell(optimizer=JashOptimizer(), tracer=tracer)
    sh.fs.write_bytes("/in.txt", b"b\\na\\n")
    sh.run("sort /in.txt > /out.txt")
    print(render_report(tracer))       # critical path + attribution
    dump_chrome(tracer, "trace.json")  # open in ui.perfetto.dev
"""

from .accounting import PipeStats, ProcStats, RegionStats, ResourceAccounting
from .critical_path import Hop, critical_path, render_report
from .export import (
    chrome_events,
    chrome_trace,
    dump_chrome,
    dumps_chrome,
    validate_chrome_trace,
)
from .metrics import (
    MetricsRegistry,
    ObservedCosts,
    dump_snapshot,
    dumps_snapshot,
    render_prometheus,
)
from .stat import render_stat
from .tracer import TraceRecord, Tracer, format_record

__all__ = [
    "Tracer", "TraceRecord", "format_record", "ResourceAccounting",
    "ProcStats", "PipeStats", "RegionStats", "Hop", "critical_path",
    "render_report", "chrome_events", "chrome_trace", "dump_chrome",
    "dumps_chrome", "validate_chrome_trace", "MetricsRegistry",
    "ObservedCosts", "dump_snapshot", "dumps_snapshot",
    "render_prometheus", "render_stat",
]
