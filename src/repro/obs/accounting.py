"""Resource accounting aggregated from the trace stream.

Every tracer hook folds its measurement into a :class:`ResourceAccounting`
as it fires, so profiles can answer "where did the time go" without
post-processing the event list: per-process virtual CPU seconds, disk
bytes/IOPS/service time, pipe backpressure stalls, child-wait time, and
network bytes.  Engines (Jash/PaSh/transactional) additionally record
per-region deltas of the same totals via
:meth:`~repro.obs.tracer.Tracer.region_begin` /
:meth:`~repro.obs.tracer.Tracer.region_end`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: The resource components a process's wall time decomposes into.
COMPONENTS = ("cpu", "disk", "backpressure", "input-wait", "child-wait")


@dataclass
class ProcStats:
    """Accumulated resource use of one virtual process."""

    pid: int
    name: str
    node: str
    start: float = 0.0
    end: Optional[float] = None
    exit_status: Optional[int] = None
    parent: Optional[int] = None
    cpu_s: float = 0.0          # core-seconds actually consumed
    disk_bytes: int = 0
    disk_ops: float = 0.0
    disk_time_s: float = 0.0    # device service time
    disk_wait_s: float = 0.0    # time queued behind other requests
    stall_read_s: float = 0.0   # blocked on an empty pipe (input wait)
    stall_write_s: float = 0.0  # blocked on a full pipe (backpressure)
    wait_s: float = 0.0         # blocked in wait() on children
    net_bytes: int = 0
    splice_bytes: int = 0       # moved by kernel-side splice pumps
    splice_chunks: int = 0
    pipes_read: set = field(default_factory=set)     # canonical pipe keys
    pipes_written: set = field(default_factory=set)
    waited_on: set = field(default_factory=set)      # child pids

    @property
    def wall_s(self) -> float:
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def breakdown(self) -> dict[str, float]:
        """Wall-time decomposition by bounding resource (+ 'other')."""
        parts = {
            "cpu": self.cpu_s,
            "disk": self.disk_time_s + self.disk_wait_s,
            "backpressure": self.stall_write_s,
            "input-wait": self.stall_read_s,
            "child-wait": self.wait_s,
        }
        parts["other"] = max(0.0, self.wall_s - sum(parts.values()))
        return parts

    def bound(self) -> str:
        """The resource this process spent the most wall time on."""
        parts = self.breakdown()
        return max(COMPONENTS, key=lambda k: parts[k]) if self.wall_s else "cpu"


@dataclass
class PipeStats:
    """Who touched a pipe, and how much flowed through it."""

    key: int  # tracer-canonical id (stable across runs for a fixed seed)
    writers: set = field(default_factory=set)
    readers: set = field(default_factory=set)
    bytes_written: int = 0
    bytes_read: int = 0
    peak_depth: int = 0


@dataclass
class RegionStats:
    """Resource delta attributed to one engine region (JIT/AOT/tx)."""

    cat: str
    name: str
    start: float
    end: float
    args: dict = field(default_factory=dict)
    delta: dict = field(default_factory=dict)


class ResourceAccounting:
    """Aggregate view over everything the tracer observed."""

    def __init__(self) -> None:
        self.per_process: dict[int, ProcStats] = {}
        self.pipes: dict[int, PipeStats] = {}
        self.regions: list[RegionStats] = []
        #: kernel this accounting observes (set by Tracer.attach) — lets
        #: totals() surface the syscall-dispatch counter; ``dispatch_base``
        #: carries counts over from earlier kernels of a resumed run
        self.kernel = None
        self.dispatch_base = 0

    def attach(self, kernel) -> None:
        old = self.kernel
        if old is not None and old is not kernel:
            self.dispatch_base += old.dispatches
        self.kernel = kernel

    # -- record access ---------------------------------------------------------

    def proc(self, process) -> ProcStats:
        st = self.per_process.get(process.pid)
        if st is None:
            st = ProcStats(process.pid, process.name, process.node.name,
                           start=process.start_time)
            self.per_process[process.pid] = st
        return st

    def pipe(self, key: int) -> PipeStats:
        ps = self.pipes.get(key)
        if ps is None:
            ps = PipeStats(key)
            self.pipes[key] = ps
        return ps

    # -- aggregation -----------------------------------------------------------

    def totals(self) -> dict[str, float]:
        t = {
            "processes": float(len(self.per_process)),
            "cpu_s": 0.0,
            "disk_bytes": 0.0,
            "disk_ops": 0.0,
            "disk_time_s": 0.0,
            "disk_wait_s": 0.0,
            "stall_read_s": 0.0,
            "stall_write_s": 0.0,
            "wait_s": 0.0,
            "net_bytes": 0.0,
            "dispatches": float(self.dispatch_base) + (
                float(self.kernel.dispatches)
                if self.kernel is not None else 0.0),
        }
        for st in self.per_process.values():
            t["cpu_s"] += st.cpu_s
            t["disk_bytes"] += st.disk_bytes
            t["disk_ops"] += st.disk_ops
            t["disk_time_s"] += st.disk_time_s
            t["disk_wait_s"] += st.disk_wait_s
            t["stall_read_s"] += st.stall_read_s
            t["stall_write_s"] += st.stall_write_s
            t["wait_s"] += st.wait_s
            t["net_bytes"] += st.net_bytes
        return t

    def to_dict(self) -> dict:
        """Machine-readable metrics (benchmarks/results/*.json)."""
        totals = {k: round(v, 9) for k, v in self.totals().items()}
        return {
            "totals": totals,
            "pipes": len(self.pipes),
            "regions": [
                {
                    "cat": r.cat,
                    "name": r.name,
                    "wall_s": round(r.end - r.start, 9),
                    "delta": {k: round(v, 9) for k, v in r.delta.items()},
                    "args": r.args,
                }
                for r in self.regions
            ],
        }

    def table(self, top: int = 10) -> str:
        """Plain-text per-process resource table (largest wall first)."""
        from ..bench.report import format_table

        procs = sorted(self.per_process.values(),
                       key=lambda s: (-s.wall_s, s.pid))
        rows = []
        for st in procs[:top]:
            rows.append([
                st.pid, st.name, st.node, st.wall_s, st.bound(), st.cpu_s,
                st.disk_time_s + st.disk_wait_s, st.stall_write_s,
                st.stall_read_s, st.wait_s,
            ])
        out = format_table(
            ["pid", "process", "node", "wall_s", "bound", "cpu_s",
             "disk_s", "backpr_s", "inwait_s", "childwait_s"],
            rows,
        )
        totals = self.totals()
        if totals["dispatches"]:
            out += f"\nsyscall dispatches: {int(totals['dispatches'])}"
        spliced = sum(s.splice_bytes for s in self.per_process.values())
        if spliced:
            out += f"  (spliced bytes: {spliced})"
        return out
