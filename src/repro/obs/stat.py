"""``jash stat`` — live-telemetry tables over a metrics registry.

Renders the :class:`~repro.obs.metrics.MetricsRegistry` the way a
``vmstat``/``iostat`` user expects: one row per virtual-time sampling
window with the *delta* of each headline total (syscall dispatches,
CPU seconds, disk and pipe bytes, backpressure stalls), followed by
top-N tables (commands by CPU/disk/stall time), per-pipe backpressure,
and the incremental-cache hit rate over time.

Everything here reads the in-memory window rows (full value vectors),
not the sparse snapshot export, so it must be handed the live registry
(the CLI runs the workload and renders in-process).
"""

from __future__ import annotations

from ..bench.report import format_table
from .metrics import MetricsRegistry

#: headline totals on the per-window overview table:
#: column header -> instrument name whose label sets are summed
_OVERVIEW = (
    ("dispatch", "kernel.dispatches"),
    ("cpu_s", "proc.cpu_s"),
    ("disk_B", "disk.bytes"),
    ("pipe_B", "pipe.write_bytes"),
    ("stall_s", "pipe.stall_s"),
    ("faults", "faults.fired"),
)


def _window_totals(registry: MetricsRegistry) -> list[tuple]:
    """Per-window summed totals for the overview names.

    Window rows carry the full value vector at sample time; series
    registered later are absent from earlier rows and count as 0.
    """
    wanted = {name for _h, name in _OVERVIEW}
    idx_name = [(i, name) for i, (name, _labels, _inst)
                in enumerate(registry.series) if name in wanted]
    out = []
    for t0, t1, values in registry.windows:
        totals = {name: 0.0 for name in wanted}
        for i, name in idx_name:
            if i < len(values):
                totals[name] += values[i]
        out.append((t0, t1, totals))
    return out


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.3f}"


def _overview_table(registry: MetricsRegistry) -> str:
    headers = ["window", *(h for h, _n in _OVERVIEW)]
    rows = []
    prev = {name: 0.0 for _h, name in _OVERVIEW}
    for t0, t1, totals in _window_totals(registry):
        span = f"[{t0:.3f}, {t1:.3f}]" if t1 > t0 else f"[{t0:.3f}]"
        rows.append([span, *(_fmt(totals[name] - prev[name])
                             for _h, name in _OVERVIEW)])
        prev = totals
    if not rows:
        rows.append(["(no samples)"] + [""] * len(_OVERVIEW))
    return format_table(headers, rows,
                        title="per-window deltas (virtual clock)")


def _by_proc(registry: MetricsRegistry, names: tuple[str, ...],
             label: str = "proc") -> dict[str, float]:
    out: dict[str, float] = {}
    for name, labels, inst in registry.series:
        if name not in names:
            continue
        who = dict(labels).get(label)
        if who is None:
            continue
        out[who] = out.get(who, 0.0) + inst.sample()
    return out


def _top_table(registry: MetricsRegistry, top: int) -> str:
    cpu = _by_proc(registry, ("proc.cpu_s",))
    disk = _by_proc(registry, ("proc.disk_bytes",))
    read = _by_proc(registry, ("proc.read_bytes",))
    stall = _by_proc(registry, ("proc.stall_s",))
    disp = _by_proc(registry, ("proc.dispatches",))
    procs = sorted(set(cpu) | set(disk) | set(read) | set(stall),
                   key=lambda p: (-cpu.get(p, 0.0), p))[:top]
    rows = [[p, f"{cpu.get(p, 0.0):.3f}", _fmt(disk.get(p, 0.0)),
             _fmt(read.get(p, 0.0)), f"{stall.get(p, 0.0):.3f}",
             _fmt(disp.get(p, 0.0))] for p in procs]
    if not rows:
        rows.append(["(none)", "", "", "", "", ""])
    return format_table(
        ["proc", "cpu_s", "disk_B", "read_B", "stall_s", "dispatch"],
        rows, title=f"top {top} processes by cpu")


def _pipe_table(registry: MetricsRegistry) -> str:
    write: dict[int, float] = {}
    stalls: dict[int, float] = {}
    stall_s: dict[int, float] = {}
    peak: dict[int, float] = {}
    for name, labels, inst in registry.series:
        key = dict(labels).get("pipe")
        if key is None:
            continue
        if name == "pipe.write_bytes":
            write[key] = write.get(key, 0.0) + inst.value
        elif name == "pipe.stalls":
            stalls[key] = stalls.get(key, 0.0) + inst.value
        elif name == "pipe.stall_s":
            stall_s[key] = stall_s.get(key, 0.0) + inst.value
        elif name == "pipe.occupancy":
            peak[key] = max(peak.get(key, 0.0), inst.peak)
    keys = sorted(set(write) | set(stalls) | set(peak))
    rows = [[f"pipe:{k}", _fmt(write.get(k, 0.0)), _fmt(peak.get(k, 0.0)),
             _fmt(stalls.get(k, 0.0)), f"{stall_s.get(k, 0.0):.3f}"]
            for k in keys]
    if not rows:
        rows.append(["(none)", "", "", "", ""])
    return format_table(
        ["pipe", "write_B", "peak_occ", "stalls", "stall_s"],
        rows, title="pipe backpressure")


def _cache_table(registry: MetricsRegistry) -> str:
    """Incremental/JIT cache behaviour over the sampled windows."""
    # a "hit" is reused work: a JIT certificate-cache hit, or an
    # incremental replay/extension; a "miss" compiled or recomputed
    hit_decisions = ("replayed", "extended")
    miss_decisions = ("computed",)
    wanted: dict[int, str] = {}
    for i, (name, labels, _inst) in enumerate(registry.series):
        if name == "inc.decisions":
            decision = dict(labels).get("decision", "?")
            if decision in hit_decisions:
                wanted[i] = "hits"
            elif decision in miss_decisions:
                wanted[i] = "misses"
        elif name == "jit.cert_hits":
            wanted[i] = "hits"
        elif name == "jit.cert_misses":
            wanted[i] = "misses"
    rows = []
    prev: dict[str, float] = {}
    for t0, t1, values in registry.windows:
        cur: dict[str, float] = {}
        for i, col in wanted.items():
            if i < len(values):
                cur[col] = cur.get(col, 0.0) + values[i]
        delta = {c: cur.get(c, 0.0) - prev.get(c, 0.0) for c in cur}
        hits = delta.get("hits", 0.0)
        misses = delta.get("misses", 0.0)
        total = hits + misses
        rate = f"{hits / total:.2f}" if total else "-"
        span = f"[{t0:.3f}, {t1:.3f}]" if t1 > t0 else f"[{t0:.3f}]"
        rows.append([span, _fmt(hits), _fmt(misses), rate])
        prev = cur
    if not rows:
        rows.append(["(no samples)", "", "", ""])
    return format_table(["window", "hits", "misses", "hit_rate"],
                        rows, title="cache hit rate over time")


def render_stat(registry: MetricsRegistry, top: int = 5) -> str:
    """The full ``jash stat`` report (four tables, newline-separated)."""
    parts = [
        _overview_table(registry),
        _top_table(registry, top),
        _pipe_table(registry),
        _cache_table(registry),
    ]
    return "\n\n".join(parts) + "\n"
