"""Dataflow runtime: internal node implementations + the graph executor.

Internal nodes are the small helper processes a PaSh-style runtime ships
(range readers, round-robin splitters, order-preserving merges, eager
buffers).  The executor wires a :class:`DataflowGraph`'s streams to vOS
pipes/files, spawns one process per node, and waits for completion.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..commands.base import PROC_STARTUP, LineStream, OutBuf, lookup
from ..dfg.graph import (
    CMD,
    CONCAT_MERGE,
    EAGER,
    FILE_READ,
    RANGE_READ,
    RR_SPLIT,
    SORT_KWAY,
    SUM_MERGE,
    DataflowGraph,
)
from ..vos.errors import VosError
from ..vos.faults import FAULT_STATUSES
from ..vos.handles import Handle, NullHandle, make_pipe
from ..vos.process import CHUNK, Process

#: CPU cost per byte moved by runtime helper nodes (they are thin).
RUNTIME_COEFF = 0.8e-9

_tmp_counter = itertools.count(1)


def fresh_tmp_path(prefix: str = "/tmp/jash") -> str:
    return f"{prefix}.{next(_tmp_counter)}"


# ---------------------------------------------------------------------------
# internal node bodies
# ---------------------------------------------------------------------------


def range_read_body(segments: list[tuple[str, int, int]]):
    """Read byte ranges of files, emitting only whole lines.

    Protocol: a reader owns the lines *containing* bytes [start, end).
    Readers with start > 0 begin one byte early and discard through the
    first newline; every reader past its end keeps reading until it
    completes the line containing byte end-1.  Adjacent readers therefore
    partition the file into exact lines.
    """

    def body(proc: Process):
        yield from proc.cpu(PROC_STARTUP * 0.25)
        for path, start, end in segments:
            fd = yield from proc.open(path, "r")
            handle = proc.fds[fd]
            pos = start
            if start > 0:
                handle.offset = start - 1
                pos = start - 1
                # discard through the first newline
                discarded_done = False
                while not discarded_done:
                    data = yield from proc.read(fd, min(CHUNK, 4096))
                    if not data:
                        discarded_done = True
                        pos = None  # nothing to emit
                        break
                    nl = data.find(b"\n")
                    if nl >= 0:
                        rest = data[nl + 1 :]
                        pos = pos + nl + 1
                        handle.offset = pos
                        discarded_done = True
                    else:
                        pos += len(data)
                if pos is None or pos >= end:
                    yield from proc.close(fd)
                    continue
            # emit until the line containing byte end-1 is complete
            data = b""
            while pos < end:
                data = yield from proc.read(fd, min(CHUNK, end - pos))
                if not data:
                    pos = end
                    break
                yield from proc.cpu(len(data) * RUNTIME_COEFF)
                yield from proc.write(1, data)
                pos += len(data)
            # overhang: finish the current line
            if pos >= end and data and not data.endswith(b"\n"):
                while True:
                    data = yield from proc.read(fd, 4096)
                    if not data:
                        break
                    nl = data.find(b"\n")
                    if nl >= 0:
                        yield from proc.write(1, data[: nl + 1])
                        break
                    yield from proc.write(1, data)
            yield from proc.close(fd)
        return 0

    return body


def file_read_body(paths: list[str]):
    """cat-like source reading files sequentially (charged disk IO)."""

    def body(proc: Process):
        yield from proc.cpu(PROC_STARTUP * 0.25)
        for path in paths:
            try:
                fd = yield from proc.open(path, "r")
            except VosError:
                yield from proc.write(2, f"jash-runtime: {path}: no such file\n".encode())
                return 1
            while True:
                data = yield from proc.read(fd, CHUNK)
                if not data:
                    break
                yield from proc.cpu(len(data) * RUNTIME_COEFF)
                yield from proc.write(1, data)
            yield from proc.close(fd)
        return 0

    return body


def rr_split_body(out_fds: list[int], block_lines: int = 2000):
    """Round-robin splitter: blocks of lines dealt cyclically to outputs.
    Only valid upstream of order-insensitive aggregation (e.g. sort)."""

    def body(proc: Process):
        yield from proc.cpu(PROC_STARTUP * 0.25)
        stream = LineStream(proc, 0)
        target = 0
        block: list[bytes] = []
        block_size = 0
        while True:
            batch = yield from stream.next_batch()
            if batch is None:
                break
            for line in batch:
                block.append(line)
                block_size += len(line)
                if len(block) >= block_lines:
                    data = b"".join(block)
                    yield from proc.cpu(len(data) * RUNTIME_COEFF)
                    yield from proc.write(out_fds[target], data)
                    target = (target + 1) % len(out_fds)
                    block = []
                    block_size = 0
        if block:
            data = b"".join(block)
            yield from proc.cpu(len(data) * RUNTIME_COEFF)
            yield from proc.write(out_fds[target], data)
        return 0

    return body


def concat_merge_body(in_fds: list[int]):
    """Order-preserving merge: drain each input fully, in order."""

    def body(proc: Process):
        yield from proc.cpu(PROC_STARTUP * 0.25)
        for fd in in_fds:
            while True:
                data = yield from proc.read(fd, CHUNK)
                if not data:
                    break
                yield from proc.cpu(len(data) * RUNTIME_COEFF)
                yield from proc.write(1, data)
        return 0

    return body


def sum_merge_body(in_fds: list[int]):
    """Numeric merge: column-wise sum of one-line numeric outputs
    (wc, grep -c)."""

    def body(proc: Process):
        yield from proc.cpu(PROC_STARTUP * 0.25)
        totals: list[int] = []
        for fd in in_fds:
            data = yield from proc.read_all(fd)
            yield from proc.cpu(len(data) * RUNTIME_COEFF)
            for line in data.splitlines():
                fields = line.split()
                for i, field in enumerate(fields):
                    try:
                        value = int(field)
                    except ValueError:
                        continue
                    while len(totals) <= i:
                        totals.append(0)
                    totals[i] += value
        out = " ".join(str(t) for t in totals) + "\n"
        yield from proc.write(1, out.encode())
        return 0

    return body


def sort_kway_body(in_fds: list[int], argv: list[str]):
    """Streaming k-way sorted merge (the SORT_MERGE aggregator)."""

    def body(proc: Process):
        from ..commands.base import cpu_coeff, parse_flags
        from ..commands.sorting import (
            kway_merge,
            make_cmp_key,
            make_sort_key,
            parse_key_spec,
        )

        yield from proc.cpu(PROC_STARTUP * 0.25)
        opts, _operands = parse_flags(list(argv[1:]), "rnumcf",
                                      with_value="kto")
        key_field, key_end = (parse_key_spec(opts["k"]) if "k" in opts
                              else (None, None))
        delim = opts["t"].encode()[:1] if "t" in opts else None
        unique = bool(opts.get("u"))
        primary = make_sort_key(bool(opts.get("n")), key_field, delim,
                                bool(opts.get("f")), key_end)
        # mirror sort_cmd: last-resort tie-break unless -u
        key = primary if unique else make_cmp_key(primary)
        status = yield from kway_merge(
            proc, in_fds, key, bool(opts.get("r")), unique,
            cpu_coeff("sort"), eq_key=primary,
        )
        return status

    return body


def eager_body(mode: str, tmp_path: str):
    """Decoupling buffer: absorb input at full speed so the producer never
    blocks, then emit.  ``disk`` mode spools through a temp file (PaSh's
    'lots of available storage space for buffering'); ``mem`` buffers in
    memory (charged as CPU copying only)."""

    def body(proc: Process):
        yield from proc.cpu(PROC_STARTUP * 0.25)
        if mode == "disk":
            out_fd = yield from proc.open(tmp_path, "w")
            total = 0
            while True:
                data = yield from proc.read(0, CHUNK)
                if not data:
                    break
                total += len(data)
                yield from proc.cpu(len(data) * RUNTIME_COEFF)
                yield from proc.write(out_fd, data)
            yield from proc.close(out_fd)
            in_fd = yield from proc.open(tmp_path, "r")
            while True:
                data = yield from proc.read(in_fd, CHUNK)
                if not data:
                    break
                yield from proc.write(1, data)
            yield from proc.close(in_fd)
            proc.fs.unlink(proc.resolve(tmp_path))
        else:
            chunks: list[bytes] = []
            while True:
                data = yield from proc.read(0, CHUNK)
                if not data:
                    break
                yield from proc.cpu(len(data) * RUNTIME_COEFF * 2)
                chunks.append(data)
            for data in chunks:
                yield from proc.write(1, data)
        return 0

    return body


# ---------------------------------------------------------------------------
# graph executor
# ---------------------------------------------------------------------------


class GraphExecutionError(Exception):
    pass


def execute_graph(dfg: DataflowGraph, proc: Process,
                  stdin_handle: Optional[Handle] = None,
                  stdout_handle: Optional[Handle] = None,
                  stderr_handle: Optional[Handle] = None,
                  cwd: str = "/"):
    """Run one dataflow graph to completion inside process ``proc``.

    Yields vOS syscalls (call with ``yield from``); returns the exit
    status of the node feeding the sink stream (or the max failure).
    """
    # build endpoint handles for every stream
    read_end: dict[int, Handle] = {}
    write_end: dict[int, Handle] = {}
    kernel = proc.kernel
    for sid, stream in dfg.streams.items():
        producer = dfg.producer_of(sid)
        consumers = dfg.consumers_of(sid)
        if stream.is_file:
            if producer is not None and consumers:
                raise GraphExecutionError(
                    f"stream s{sid} is file-backed with producer and consumer "
                    "in one phase; split into phases"
                )
            if producer is not None:
                write_end[sid] = kernel.open_handle(proc.node, stream.path, "w", cwd)
            if consumers:
                read_end[sid] = kernel.open_handle(proc.node, stream.path, "r", cwd)
        else:
            if sid == dfg.source and producer is None:
                read_end[sid] = stdin_handle if stdin_handle is not None else NullHandle()
                continue
            if sid == dfg.sink and not consumers:
                write_end[sid] = stdout_handle if stdout_handle is not None else NullHandle()
                continue
            reader, writer = make_pipe()
            read_end[sid] = reader
            write_end[sid] = writer

    stderr = stderr_handle if stderr_handle is not None else NullHandle()

    pids: list[int] = []
    sink_pid: Optional[int] = None
    branch_group_of: dict[int, str] = {}
    for node in dfg.topological_order():
        fds: dict[int, Handle] = {2: stderr}
        # inputs: first at fd 0, rest at fds 3,4,...
        in_fds: list[int] = []
        next_fd = 3
        for i, sid in enumerate(node.inputs):
            fd = 0 if i == 0 else next_fd
            if i > 0:
                next_fd += 1
            fds[fd] = read_end[sid]
            in_fds.append(fd)
        # outputs: first at fd 1, rest following
        out_fds: list[int] = []
        for i, sid in enumerate(node.outputs):
            fd = 1 if i == 0 else next_fd
            if i > 0:
                next_fd += 1
            fds[fd] = write_end[sid]
            out_fds.append(fd)
        if 0 not in fds:
            fds[0] = NullHandle()
        if 1 not in fds:
            fds[1] = NullHandle()

        body = _node_body(node, in_fds, out_fds)
        pid = yield from proc.spawn(body, name=f"dfg:{node.name}", fds=fds, cwd=cwd)
        pids.append(pid)
        group = node.params.get("branch_group")
        if group is not None:
            branch_group_of[pid] = group
        if dfg.sink in node.outputs:
            sink_pid = pid

    status = 0
    sink_status = 0
    group_statuses: dict[str, list[int]] = {}
    for pid in pids:
        st = yield from proc.wait(pid)
        if pid == sink_pid:
            sink_status = st
        group = branch_group_of.get(pid)
        if group is not None:
            group_statuses.setdefault(group, []).append(st)
            continue
        # SIGPIPE deaths (141) are benign in pipelines
        if st not in (0, 141):
            status = st
    # parallel copies of one stage succeed if any copy succeeded — a chunk
    # with no grep matches exits 1 without the whole stage having failed.
    # A killed/faulted copy (137/74) is different: that copy's share of the
    # data is simply missing, so the plan must fail even if siblings ran.
    for sts in group_statuses.values():
        faulted = [s for s in sts if s in FAULT_STATUSES]
        if faulted:
            status = faulted[-1]
            continue
        good = [s for s in sts if s in (0, 141)]
        if not good:
            worst = max(sts)
            if worst not in (0, 141):
                status = worst
    return sink_status if sink_status != 0 else status


def _node_body(node, in_fds: list[int], out_fds: list[int]):
    if node.kind == CMD:
        fn = lookup(node.argv[0])
        if fn is None:
            raise GraphExecutionError(f"unknown command {node.argv[0]!r}")
        args = list(node.argv[1:])

        def body(proc: Process, fn=fn, args=args):
            yield from proc.cpu(PROC_STARTUP)
            status = yield from fn(proc, args)
            return status if status is not None else 0

        return body
    if node.kind == RANGE_READ:
        return range_read_body(node.params["segments"])
    if node.kind == FILE_READ:
        return file_read_body(node.params["paths"])
    if node.kind == RR_SPLIT:
        return rr_split_body(out_fds, node.params.get("block_lines", 2000))
    if node.kind == CONCAT_MERGE:
        return concat_merge_body(in_fds)
    if node.kind == SUM_MERGE:
        return sum_merge_body(in_fds)
    if node.kind == SORT_KWAY:
        return sort_kway_body(in_fds, node.params["argv"])
    if node.kind == EAGER:
        return eager_body(node.params.get("mode", "disk"),
                          node.params.get("tmp_path", fresh_tmp_path()))
    raise GraphExecutionError(f"unknown node kind {node.kind!r}")
