"""Transactional execution of optimized dataflow plans (§4 "fault
tolerant").

The purity gate already guarantees an optimized region is
*re-executable*: it reads files and stdin, writes stdout (or one
output file), and touches nothing else.  That makes recovery from an
injected fault a matter of making the region's single visible effect
atomic:

* **pipe/stdout sink** — the region writes into a staging
  :class:`~repro.vos.handles.Collector`; the collected bytes are
  forwarded to the real stdout only after every node finished without
  a fault.  A rolled-back attempt therefore emitted nothing.
* **file sink** (``... > out``) — the sink stream is redirected to
  ``out.staged`` and atomically renamed over ``out`` on commit; a
  rolled-back attempt leaves ``out`` untouched.

A failure is *fault-suspected* when the plan's status is 74
(``EX_IOERR``, an injected disk/pipe fault) or 137 (a crash), or when
the kernel's :class:`~repro.vos.faults.FaultPlan` recorded new firings
during a non-zero attempt.  Suspected attempts are rolled back (staged
output and temp chunk files unlinked, region stdin rewound) and
re-executed under a :class:`~repro.distributed.retry.RetryPolicy` —
the same policy vocabulary the distributed shell uses.

Staging is only engaged when a fault plan is installed on the kernel;
without one the executor is byte-for-byte the plain
:func:`~repro.compiler.driver.execute_plan` (so fault-free workloads
pay nothing, and nested regions keep streaming into their consumers).
stderr is never staged: diagnostics stream through even from attempts
that are later rolled back, like a real shell re-running a job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..distributed.retry import RetryPolicy
from ..vos.errors import VosError
from ..vos.faults import FAULT_STATUSES
from ..vos.fs import normalize
from ..vos.handles import Collector
from ..vos.process import Process
from .driver import execute_plan
from .parallel import Plan
from .runtime import execute_graph

#: default policy for region re-execution: two retries, no virtual-time
#: backoff (the vOS clock should not drift for fault-free comparisons)
DEFAULT_REGION_POLICY = RetryPolicy(max_retries=2)

STAGED_SUFFIX = ".staged"


@dataclass
class RecoveryReport:
    """What happened while executing one plan transactionally."""

    attempts: int = 0
    fault_failures: int = 0
    retries: int = 0
    gave_up: bool = False
    last_status: int = 0

    def merge(self, other: "RecoveryReport") -> None:
        self.attempts += other.attempts
        self.fault_failures += other.fault_failures
        self.retries += other.retries
        self.gave_up = other.gave_up
        self.last_status = other.last_status


def plan_reads_stdin(plan: Plan) -> bool:
    """Does any phase consume the region's (non-file) stdin stream?"""
    for phase in plan.phases:
        sid = phase.source
        if sid is None:
            continue
        stream = phase.streams.get(sid)
        if stream is None or stream.is_file:
            continue
        if phase.producer_of(sid) is None and phase.consumers_of(sid):
            return True
    return False


def _sink_stream(plan: Plan):
    """The final phase's sink stream object (or None)."""
    final = plan.phases[-1]
    if final.sink is None:
        return None
    return final.streams.get(final.sink)


def _run_phases(plan: Plan, proc: Process, cwd: str, staging: Optional[Collector]):
    """Run phases in order, stopping at the first fault-status phase so
    later phases don't chew on a faulted phase's partial chunk files."""
    stdin_handle = proc.fds.get(0)
    stdout_handle = staging if staging is not None else proc.fds.get(1)
    stderr_handle = proc.fds.get(2)
    status = 0
    for phase in plan.phases:
        status = yield from execute_graph(
            phase, proc,
            stdin_handle=stdin_handle,
            stdout_handle=stdout_handle,
            stderr_handle=stderr_handle,
            cwd=cwd,
        )
        if status in FAULT_STATUSES:
            break
    return status


def _unlink_quiet(proc: Process, path: str, cwd: str) -> None:
    try:
        proc.fs.unlink(normalize(path, cwd))
    except VosError:
        pass


def _rollback(proc: Process, plan: Plan, staged_path: Optional[str], cwd: str) -> None:
    for path in plan.temp_files:
        _unlink_quiet(proc, path, cwd)
    if staged_path is not None:
        _unlink_quiet(proc, staged_path, cwd)


def _commit(proc: Process, staging: Optional[Collector],
            staged_path: Optional[str], sink_path: Optional[str], cwd: str):
    if staged_path is not None:
        resolved = normalize(staged_path, cwd)
        if proc.fs.is_file(resolved):
            proc.fs.rename(resolved, normalize(sink_path, cwd))
        return
    if staging is not None:
        data = staging.getvalue()
        if data:
            # a BrokenPipe here (downstream already gone) propagates and
            # kills the shell process with 141 — interpreter parity
            yield from proc.write(1, data)


def execute_plan_transactional(plan: Plan, proc: Process, cwd: str = "/",
                               policy: Optional[RetryPolicy] = None,
                               report: Optional[RecoveryReport] = None):
    """Run ``plan`` with staged output and fault retry.

    A vOS sub-generator (drive with ``yield from``).  Returns the exit
    status of the last attempt; ``report.gave_up`` tells the caller
    (Jash's degradation ladder, PaSh's fallback) that the retry budget
    is exhausted and the plan is still faulting.
    """
    policy = policy or DEFAULT_REGION_POLICY
    report = report if report is not None else RecoveryReport()
    kernel = proc.kernel
    tracer = getattr(kernel, "tracer", None)
    faults = getattr(kernel, "faults", None)
    if faults is None:
        status = yield from execute_plan(plan, proc, cwd=cwd)
        report.attempts += 1
        report.last_status = status
        return status

    sink_stream = _sink_stream(plan)
    sink_path = sink_stream.path if sink_stream is not None and sink_stream.is_file else None
    staged_path = sink_path + STAGED_SUFFIX if sink_path is not None else None

    stdin_handle = proc.fds.get(0)
    uses_stdin = plan_reads_stdin(plan)
    stdin_offset = getattr(stdin_handle, "offset", None)
    # a pipe-fed region cannot be replayed: the bytes are gone
    retryable = (not uses_stdin) or (stdin_offset is not None)

    retry_no = 0
    first_attempt_start = kernel.now
    while True:
        report.attempts += 1
        mark = faults.fired
        attempt_start = kernel.now
        staging: Optional[Collector] = None
        if sink_path is not None:
            sink_stream.path = staged_path
        else:
            staging = Collector()
        try:
            status = yield from _run_phases(plan, proc, cwd, staging)
        finally:
            if sink_path is not None:
                sink_stream.path = sink_path
        report.last_status = status
        suspected = status in FAULT_STATUSES or (status != 0 and faults.fired > mark)
        if tracer is not None:
            tracer.span("tx", "tx.attempt", attempt_start, kernel.now, proc,
                        attempt=report.attempts, status=status,
                        suspected=suspected,
                        faults_fired=faults.fired - mark)
        metrics = getattr(kernel, "metrics", None)
        if metrics is not None:
            metrics.counter("tx.attempts").inc()
        if not suspected:
            yield from _commit(proc, staging, staged_path, sink_path, cwd)
            for path in plan.temp_files:
                _unlink_quiet(proc, path, cwd)
            if tracer is not None:
                tracer.instant("tx", "tx.commit", kernel.now, proc,
                               attempt=report.attempts, status=status,
                               sink=tracer.canon_path(sink_path)
                               if sink_path is not None else "stdout")
            if metrics is not None:
                metrics.counter("tx.commits").inc()
            return status
        report.fault_failures += 1
        _rollback(proc, plan, staged_path, cwd)
        if uses_stdin and stdin_offset is not None:
            stdin_handle.offset = stdin_offset
        retry_no += 1
        # the unified retry decision point: counts AND the virtual
        # elapsed budget (max_elapsed_s) live in the policy, not here
        delay = policy.next_delay(retry_no,
                                  elapsed_s=kernel.now - first_attempt_start)
        if tracer is not None:
            tracer.instant("tx", "tx.rollback", kernel.now, proc,
                           attempt=report.attempts, status=status,
                           retrying=retryable and delay is not None)
        if metrics is not None:
            metrics.counter("tx.rollbacks").inc()
        if not retryable or delay is None:
            report.gave_up = True
            return status
        report.retries += 1
        if delay > 0:
            yield from proc.sleep(delay)
