"""Shared plan execution for the AOT (PaSh) and JIT (Jash) drivers."""

from __future__ import annotations

from typing import Optional

from ..vos.errors import VosError
from ..vos.faults import FAULT_STATUSES
from ..vos.process import Process
from .parallel import Plan
from .runtime import execute_graph


def execute_plan(plan: Plan, proc: Process, cwd: str = "/"):
    """Run a plan's phases in order inside the shell process ``proc``,
    wiring the region's stdin/stdout/stderr to the shell's fds.  Cleans
    up temp chunk files afterwards.  Returns the plan's exit status."""
    stdin_handle = proc.fds.get(0)
    stdout_handle = proc.fds.get(1)
    stderr_handle = proc.fds.get(2)
    status = 0
    for phase in plan.phases:
        status = yield from execute_graph(
            phase, proc,
            stdin_handle=stdin_handle,
            stdout_handle=stdout_handle,
            stderr_handle=stderr_handle,
            cwd=cwd,
        )
        if status in FAULT_STATUSES:
            # a faulted phase's chunk files are incomplete; running the
            # next phase over them would "succeed" with missing data
            break
    for path in plan.temp_files:
        try:
            proc.fs.unlink(proc.resolve(path))
        except VosError:
            pass
    return status


def fs_file_sizes(fs, cwd: str):
    """A file_sizes callback over a virtual filesystem."""
    from ..vos.fs import normalize

    def file_sizes(path: str) -> Optional[int]:
        resolved = normalize(path, cwd)
        if fs.is_file(resolved):
            return fs.size(resolved)
        return None

    return file_sizes
