"""Parallelizing transformations over dataflow regions (the PaSh rewrites).

Given a :class:`~repro.dfg.from_ast.Region` (a pipeline of classified
stages), build a :class:`Plan` — one or more dataflow graphs executed as
phases — that computes the same output with data parallelism:

* ``rr``          streaming round-robin split; sound only when the
                  parallel run ends in a commutative aggregation
                  (sort -m, sum, rerun) that re-establishes order.
* ``range``       w readers over byte ranges of the input *files*
                  (requires file-backed input); preserves order, so it
                  also works for stateless runs merged by concatenation.
* ``materialize`` PaSh-batch style: phase 1 splits the input into chunk
                  files on disk, phase 2 processes chunks in parallel.
                  Works for any input but pays 2x extra disk IO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..annotations.model import AggKind, ParClass
from ..dfg.from_ast import Region, RegionStage, build_dfg
from ..dfg.graph import (
    CMD,
    CONCAT_MERGE,
    EAGER,
    FILE_READ,
    RANGE_READ,
    RR_SPLIT,
    SORT_KWAY,
    SUM_MERGE,
    DataflowGraph,
)
from .runtime import fresh_tmp_path

SPLIT_MODES = ("rr", "range", "materialize")


@dataclass
class Plan:
    """An executable optimization plan: phases of dataflow graphs."""

    phases: list[DataflowGraph] = field(default_factory=list)
    width: int = 1
    mode: str = "baseline"
    eager: bool = False
    description: str = "baseline"
    #: temp files to clean up afterwards
    temp_files: list[str] = field(default_factory=list)


def baseline_plan(region: Region) -> Plan:
    """The unmodified sequential pipeline as a single-phase plan."""
    return Plan([build_dfg(region)], width=1, mode="baseline",
                description="sequential pipeline")


@dataclass
class RunChoice:
    start: int           # index of first stage in the parallel run
    end: int             # index *after* last stage in the run
    agg_kind: AggKind
    agg_argv: tuple[str, ...]


def find_parallel_run(region: Region) -> Optional[RunChoice]:
    """The maximal useful run: consecutive STATELESS stages optionally
    capped by one PARALLELIZABLE_PURE stage (whose aggregator merges)."""
    stages = region.stages
    best: Optional[RunChoice] = None
    i = 0
    while i < len(stages):
        if not stages[i].spec.parallelizable:
            i += 1
            continue
        j = i
        while j < len(stages) and stages[j].spec.par_class is ParClass.STATELESS:
            j += 1
        if j < len(stages) and stages[j].spec.par_class is ParClass.PARALLELIZABLE_PURE:
            agg = stages[j].spec.aggregator
            choice = RunChoice(i, j + 1, agg.kind, agg.argv)
        elif j > i:
            choice = RunChoice(i, j, AggKind.CONCAT, ())
        else:
            i += 1
            continue
        if best is None or (choice.end - choice.start) > (best.end - best.start):
            best = choice
        i = max(j, i + 1)
    return best


def _input_files_of_run(region: Region, run: RunChoice,
                        file_sizes) -> Optional[list[tuple[str, int]]]:
    """When the run starts the region and its input is file-backed,
    return [(path, size)] — the precondition for range splitting."""
    if run.start != 0:
        return None
    first = region.stages[0]
    if first.stdin_file is not None:
        size = file_sizes(first.stdin_file)
        return [(first.stdin_file, size)] if size is not None else None
    spec = first.spec
    if spec.input_operands:
        args = first.argv[1:]
        out = []
        for idx in spec.input_operands:
            if idx >= len(args) or args[idx] == "-":
                return None
            size = file_sizes(args[idx])
            if size is None:
                return None
            out.append((args[idx], size))
        return out
    return None


def _segments_for_branch(files: list[tuple[str, int]], branch: int,
                         width: int) -> list[tuple[str, int, int]]:
    """Byte-range segments assigned to one branch: each file is divided
    into ``width`` contiguous ranges; branch i takes range i of each."""
    segments = []
    for path, size in files:
        chunk = max(1, size // width)
        start = branch * chunk
        end = (branch + 1) * chunk if branch < width - 1 else size
        if start < size:
            segments.append((path, start, min(end, size)))
    return segments


def _first_stage_is_pure_reader(stage: RegionStage) -> bool:
    """cat (or equivalent) whose only job is reading its file operands."""
    return stage.argv[0] == "cat" and bool(stage.spec.input_operands)


def _head_feed_ok(stage: RegionStage) -> bool:
    """Can this run-head stage's file operands be replaced by a stdin
    feed?  True for cat (pure reader) and for single-file commands whose
    output is identical when reading stdin (grep with one file never
    prefixes filenames).  Multi-file grep would change its output."""
    if not stage.spec.input_operands:
        return True
    if _first_stage_is_pure_reader(stage):
        return True
    return len(stage.spec.input_operands) == 1


def parallelize(region: Region, width: int, mode: str,
                file_sizes=lambda path: None,
                eager: bool = False,
                tmp_prefix: str = "/tmp/jash") -> Optional[Plan]:
    """Build a width-``width`` parallel plan, or None when ``mode`` is not
    applicable to this region."""
    if width < 2 or mode not in SPLIT_MODES:
        return None
    run = find_parallel_run(region)
    if run is None:
        return None
    stages = region.stages
    agg_commutative = run.agg_kind in (AggKind.SORT_MERGE, AggKind.SUM, AggKind.RERUN)
    if mode == "rr" and not agg_commutative:
        return None  # round-robin split breaks output order

    input_files = _input_files_of_run(region, run, file_sizes)
    if mode == "range" and input_files is None:
        return None

    plan = Plan(width=width, mode=mode, eager=eager)
    dfg = DataflowGraph()
    phase1: Optional[DataflowGraph] = None
    chunk_paths: list[str] = []

    # ---- feed: produce the w branch input streams ---------------------------------
    run_stages = list(stages[run.start : run.end])
    branch_inputs: list[int] = []
    if mode == "range":
        if not _head_feed_ok(run_stages[0]):
            return None
        # drop a pure reader stage (cat) — the range readers replace it
        if _first_stage_is_pure_reader(run_stages[0]):
            run_stages = run_stages[1:]
            if not run_stages:
                return None
        for b in range(width):
            sid = dfg.new_stream()
            segments = _segments_for_branch(input_files, b, width)
            dfg.add_node(RANGE_READ, params={"segments": segments,
                                             "path": segments[0][0] if segments else "",
                                             "start": 0, "end": 0},
                         outputs=(sid,))
            branch_inputs.append(sid)
    elif mode == "materialize":
        head = run_stages[0]
        if head.spec.input_operands and (input_files is None
                                         or not _head_feed_ok(head)):
            return None  # file operands we cannot stat or safely re-feed
        # phase 1: spool input into chunk files on disk
        phase1 = DataflowGraph()
        if input_files is not None and head.spec.input_operands:
            src = phase1.new_stream()
            phase1.add_node(FILE_READ,
                            params={"paths": [p for p, _s in input_files]},
                            outputs=(src,))
            if _first_stage_is_pure_reader(head):
                run_stages = run_stages[1:]
                if not run_stages:
                    return None
        elif stages[0].stdin_file is not None and run.start == 0:
            src = phase1.new_stream()
            phase1.add_node(FILE_READ, params={"paths": [stages[0].stdin_file]},
                            outputs=(src,))
        else:
            # upstream stages (or region stdin) must run in phase 1 too
            src = _build_upstream(phase1, stages[: run.start])
        chunk_streams = []
        for b in range(width):
            path = fresh_tmp_path(tmp_prefix + ".chunk")
            chunk_paths.append(path)
            chunk_streams.append(phase1.new_stream(path=path))
        phase1.add_node(RR_SPLIT, inputs=(src,), outputs=tuple(chunk_streams))
        plan.temp_files.extend(chunk_paths)
        for path in chunk_paths:
            branch_inputs.append(dfg.new_stream(path=path))
    else:  # rr: streaming split
        head = run_stages[0]
        if head.spec.input_operands:
            if input_files is None or not _head_feed_ok(head):
                return None
            src = dfg.new_stream()
            dfg.add_node(FILE_READ,
                         params={"paths": [p for p, _s in input_files]},
                         outputs=(src,))
            if _first_stage_is_pure_reader(head):
                run_stages = run_stages[1:]
                if not run_stages:
                    return None
        else:
            src = _build_upstream(dfg, stages[: run.start], region)
        branch_streams = tuple(dfg.new_stream() for _ in range(width))
        dfg.add_node(RR_SPLIT, inputs=(src,), outputs=branch_streams)
        branch_inputs = list(branch_streams)

    # ---- branches: copy of the run's stages per branch -----------------------------
    branch_outputs: list[int] = []
    for b in range(width):
        prev = branch_inputs[b]
        for si, stage in enumerate(run_stages):
            out = dfg.new_stream()
            argv = _strip_file_operands(stage)
            dfg.add_node(CMD, tuple(argv), inputs=(prev,), outputs=(out,),
                         params={"branch_group": f"stage{si}"},
                         spec=stage.spec)
            prev = out
        if eager:
            buffered = dfg.new_stream()
            eager_tmp = fresh_tmp_path(tmp_prefix + ".eager")
            # registered for cleanup: the eager body normally unlinks its
            # spool itself, but not if the consumer closes early or the
            # branch is killed by a fault
            plan.temp_files.append(eager_tmp)
            dfg.add_node(EAGER, params={"mode": "disk", "tmp_path": eager_tmp},
                         inputs=(prev,), outputs=(buffered,))
            prev = buffered
        branch_outputs.append(prev)

    # ---- merge ----------------------------------------------------------------------
    merged = dfg.new_stream()
    if run.agg_kind is AggKind.SORT_MERGE:
        # streaming k-way merge honouring the original sort's flags
        dfg.add_node(SORT_KWAY, params={"argv": list(run.agg_argv)},
                     inputs=tuple(branch_outputs), outputs=(merged,))
    elif run.agg_kind is AggKind.SUM:
        dfg.add_node(SUM_MERGE, inputs=tuple(branch_outputs), outputs=(merged,))
    elif run.agg_kind is AggKind.RERUN:
        concat_out = dfg.new_stream()
        dfg.add_node(CONCAT_MERGE, inputs=tuple(branch_outputs),
                     outputs=(concat_out,))
        dfg.add_node(CMD, tuple(run.agg_argv), inputs=(concat_out,),
                     outputs=(merged,))
    else:  # CONCAT
        dfg.add_node(CONCAT_MERGE, inputs=tuple(branch_outputs),
                     outputs=(merged,))

    # ---- downstream stages run sequentially -------------------------------------------
    prev = merged
    for stage in stages[run.end :]:
        out = dfg.new_stream(path=stage.stdout_file)
        dfg.add_node(CMD, tuple(stage.argv), inputs=(prev,), outputs=(out,),
                     spec=stage.spec)
        prev = out
    last_stage = stages[-1]
    if run.end == len(stages) and last_stage.stdout_file is not None:
        dfg.streams[prev].path = last_stage.stdout_file
    dfg.sink = prev

    phases = [phase1, dfg] if phase1 is not None else [dfg]
    plan.phases = phases
    plan.description = (
        f"width={width} mode={mode}{' eager' if eager else ''} "
        f"run=[{run.start}:{run.end}] agg={run.agg_kind.value}"
    )
    return plan


def _build_upstream(dfg: DataflowGraph, upstream_stages: list[RegionStage],
                    region: Optional[Region] = None) -> int:
    """Emit the sequential stages before the parallel run; returns the
    stream id feeding the splitter."""
    first_stage = None
    if region is not None and region.stages:
        first_stage = region.stages[0]
    prev: Optional[int] = None
    if upstream_stages:
        head = upstream_stages[0]
        if head.stdin_file is not None:
            prev = dfg.new_stream(path=head.stdin_file)
    elif first_stage is not None and first_stage.stdin_file is not None:
        prev = dfg.new_stream(path=first_stage.stdin_file)
    if prev is None:
        prev = dfg.new_stream()
        dfg.source = prev
    for stage in upstream_stages:
        out = dfg.new_stream()
        dfg.add_node(CMD, tuple(stage.argv), inputs=(prev,), outputs=(out,),
                     spec=stage.spec)
        prev = out
    return prev


def _strip_file_operands(stage: RegionStage) -> list[str]:
    """Branch copies read from stdin, so file operands must be dropped
    (e.g. the branch runs plain ``grep pat`` instead of ``grep pat f``)."""
    if not stage.spec.input_operands:
        return list(stage.argv)
    args = stage.argv[1:]
    drop = {idx for idx in stage.spec.input_operands}
    kept = [a for i, a in enumerate(args) if i not in drop]
    return [stage.argv[0]] + kept
