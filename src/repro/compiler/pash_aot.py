"""The PaSh-style ahead-of-time compiler (S7, the paper's baseline E2).

Reproduces the three characteristics the paper ascribes to PaSh:

1. annotation-driven rewriting of pipelines into parallel dataflow
   graphs;
2. **ahead-of-time** operation — it sees the *unexpanded* AST, so any
   region containing ``$FILES``-style dynamic words is skipped ("an
   ahead-of-time compiler has no knowledge of the input files ...
   neither PaSh nor POSH optimize this script", §3.2);
3. **resource obliviousness** — a fixed parallelization width and a
   materializing split that "assumes a machine with high storage
   throughput and lots of available storage space for buffering".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..annotations.library import DEFAULT_LIBRARY
from ..annotations.model import SpecLibrary
from ..dfg.from_ast import extract_region
from ..distributed.retry import RetryPolicy
from ..parser.ast_nodes import Command, Pipeline, SimpleCommand
from ..parser.unparse import unparse
from .driver import execute_plan, fs_file_sizes
from .parallel import parallelize
from .transactional import (
    DEFAULT_REGION_POLICY,
    RecoveryReport,
    execute_plan_transactional,
)


@dataclass
class AotEvent:
    node_text: str
    decision: str  # "optimized" | "degraded" | "skipped" | "interpreted"
    reason: str
    plan_description: str = ""
    #: staged attempts rolled back on a suspected fault (transactional)
    fault_failures: int = 0


@dataclass
class PashConfig:
    width: int = 8
    #: split modes in preference order; materialize first (batch PaSh)
    modes: tuple[str, ...] = ("materialize", "rr")
    library: SpecLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)
    #: execute plans transactionally and fall back to interpretation when
    #: retries are exhausted ("PaSh-AOT-with-fallback").  Unlike Jash,
    #: the resource-oblivious AOT compiler has no width ladder: it goes
    #: straight from its fixed width to the interpreter.
    transactional: bool = False
    retry: RetryPolicy = DEFAULT_REGION_POLICY
    #: consult the whole-script analyzer (repro.analysis, S16) during the
    #: AOT pass: ``unsafe`` certificates reject a node before region
    #: extraction is even attempted (the verdicts coincide — an impure
    #: expansion always involves dynamic words, which AOT extraction
    #: rejects too — so decisions are unchanged; the certificate just
    #: answers first and records why)
    static_analysis: bool = True
    #: additionally run the S20 abstract interpreter during the AOT
    #: pass: provably-dead nodes are rejected before region extraction
    #: ("skipped — provably unreachable").  Decisions are identical on
    #: or off when the script has no dead code (test-enforced); with
    #: dead code, only the dead regions change — they would never have
    #: executed, so output bytes are unchanged either way.
    value_flow: bool = True


class PashOptimizer:
    """AOT compiler pass + interpreter hook.

    ``compile_program`` runs before execution (the preprocessing step a
    real PaSh performs on the script text): it records which AST nodes
    are transformable.  At run time ``try_execute`` only fires for those
    pre-approved nodes — inner pipeline stages executing in subshells
    are *not* re-analyzed, because an AOT system never sees them as
    standalone commands."""

    def __init__(self, config: Optional[PashConfig] = None):
        self.config = config or PashConfig()
        self.events: list[AotEvent] = []
        self._approved: set[int] = set()
        self._compiled = False
        self._analysis = None
        self.cert_hits = 0

    def compile_program(self, program: Command, tracer=None,
                        now: float = 0.0, metrics=None, fs=None,
                        cwd: str = "/") -> None:
        """The ahead-of-time pass: walk the static AST and mark the
        statement-level pipelines/commands whose regions extract.
        Static SafetyCertificates (S16) are checked first; only nodes
        they do not cover go through region extraction.  With
        ``value_flow`` the S20 dead-branch facts reject provably
        unreachable nodes — a dead node carries *no* safety certificate,
        so without the explicit check it would fall through to region
        extraction and could be approved."""
        from ..parser.ast_nodes import walk

        self._compiled = True
        certs: dict[int, object] = {}
        dead: frozenset = frozenset()
        if self.config.static_analysis:
            from ..analysis import analyze_program

            self._analysis = analyze_program(
                program, self.config.library,
                value_flow=self.config.value_flow, fs=fs, cwd=cwd)
            certs = self._analysis.certificates
            dead = self._analysis.dead_nodes()
            if tracer is not None:
                tracer.instant("analysis", "analysis.run", now,
                               engine="pash", **self._analysis.stats())
                if self._analysis.absint is not None:
                    tracer.span("analysis", "analysis.absint", now, now,
                                engine="pash",
                                **self._analysis.absint.stats())
        inside_pipeline: set[int] = set()
        for node in walk(program):
            if isinstance(node, Pipeline):
                for stage in node.commands:
                    inside_pipeline.add(id(stage))
        for node in walk(program):
            if isinstance(node, Pipeline) or (
                isinstance(node, SimpleCommand)
                and id(node) not in inside_pipeline
            ):
                if id(node) in dead:
                    self.events.append(AotEvent(
                        unparse(node), "skipped",
                        "provably unreachable (S20 dead-branch fact)",
                    ))
                    continue
                cert = certs.get(id(node))
                if cert is not None and not cert.safe:
                    self.cert_hits += 1
                    self.events.append(AotEvent(
                        unparse(node), "skipped",
                        f"static certificate: {cert.reason} [{cert.digest}]",
                    ))
                    continue
                if cert is not None:
                    self.cert_hits += 1
                region = extract_region(node, self.config.library)
                if region is None:
                    self.events.append(AotEvent(
                        unparse(node), "skipped",
                        "region not extractable ahead-of-time (dynamic "
                        "words, unknown commands, or unsupported redirects)",
                    ))
                elif not region.parallelizable:
                    self.events.append(AotEvent(unparse(node), "skipped",
                                                "no parallelizable stage"))
                else:
                    self._approved.add(id(node))

    def try_execute(self, interp, proc, node: Command):
        if self._compiled and id(node) not in self._approved:
            return None
            yield  # pragma: no cover - keep generator shape
        text = unparse(node)
        region = extract_region(node, self.config.library)
        if region is None:
            if not self._compiled:
                self.events.append(AotEvent(
                    text, "skipped",
                    "region not extractable ahead-of-time "
                    "(dynamic words, unknown commands, or unsupported redirects)",
                ))
            return None
        if not region.parallelizable:
            return None
        file_sizes = fs_file_sizes(proc.fs, interp.state.cwd)
        plan = None
        for mode in self.config.modes:
            plan = parallelize(region, self.config.width, mode,
                               file_sizes=file_sizes)
            if plan is not None:
                break
        if plan is None:
            self.events.append(AotEvent(text, "skipped",
                                        "no applicable split mode"))
            return None
        kernel = proc.kernel
        tracer = getattr(kernel, "tracer", None)
        metrics = getattr(kernel, "metrics", None)
        if metrics is not None:
            metrics.counter("aot.regions").inc()
        exec_start = kernel.now
        snapshot = tracer.region_begin() if tracer is not None else None
        if not self.config.transactional:
            status = yield from execute_plan(plan, proc, cwd=interp.state.cwd)
            if tracer is not None:
                tracer.region_end(
                    "aot", "aot.region", exec_start, kernel.now, snapshot,
                    proc, command=text, decision="optimized",
                    width=self.config.width, mode=plan.mode, status=status)
            self.events.append(AotEvent(text, "optimized",
                                        f"fixed width {self.config.width}",
                                        plan.description))
            return status
        report = RecoveryReport()
        status = yield from execute_plan_transactional(
            plan, proc, cwd=interp.state.cwd,
            policy=self.config.retry, report=report)
        if report.gave_up:
            if metrics is not None:
                metrics.counter("aot.fallbacks").inc()
            if tracer is not None:
                tracer.instant("aot", "aot.fallback", kernel.now, proc,
                               command=text, attempts=report.attempts,
                               fault_failures=report.fault_failures)
                tracer.region_end(
                    "aot", "aot.region", exec_start, kernel.now, snapshot,
                    proc, command=text, decision="interpreted",
                    width=self.config.width,
                    fault_failures=report.fault_failures)
            self.events.append(AotEvent(
                text, "interpreted",
                f"fault fallback to interpreter after {report.attempts} "
                "attempts", plan.description,
                fault_failures=report.fault_failures))
            return None
        if tracer is not None:
            tracer.region_end(
                "aot", "aot.region", exec_start, kernel.now, snapshot,
                proc, command=text,
                decision="degraded" if report.fault_failures else "optimized",
                width=self.config.width, mode=plan.mode, status=status,
                fault_failures=report.fault_failures)
        self.events.append(AotEvent(
            text,
            "degraded" if report.fault_failures else "optimized",
            f"fixed width {self.config.width}"
            + (f", {report.fault_failures} fault-suspected attempts "
               "rolled back" if report.fault_failures else ""),
            plan.description, fault_failures=report.fault_failures))
        return status

    # convenience for benchmarks
    @property
    def optimized_count(self) -> int:
        return sum(1 for e in self.events
                   if e.decision in ("optimized", "degraded"))
