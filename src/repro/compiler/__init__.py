"""S7/S8/S10 — the transformation stack: PaSh-style parallelizing
rewrites, the cost-aware dataflow model, the resource-aware optimizer,
and the AOT baseline driver."""

from .cost import (
    CostEstimate,
    DiskProbe,
    Probe,
    StaticCosts,
    estimate_baseline,
    estimate_parallel,
)
from .driver import execute_plan, fs_file_sizes
from .optimizer import Decision, OptimizerConfig, ResourceAwareOptimizer
from .parallel import Plan, baseline_plan, find_parallel_run, parallelize
from .pash_aot import AotEvent, PashConfig, PashOptimizer
from .runtime import execute_graph
from .transactional import (
    DEFAULT_REGION_POLICY,
    RecoveryReport,
    execute_plan_transactional,
)

__all__ = [
    "CostEstimate", "DiskProbe", "Probe", "StaticCosts",
    "estimate_baseline",
    "estimate_parallel", "execute_plan", "fs_file_sizes", "Decision",
    "OptimizerConfig", "ResourceAwareOptimizer", "Plan", "baseline_plan",
    "find_parallel_run", "parallelize", "AotEvent", "PashConfig",
    "PashOptimizer", "execute_graph", "DEFAULT_REGION_POLICY",
    "RecoveryReport", "execute_plan_transactional",
]
