"""The cost-aware dataflow model (S10).

"The procedure is built on top of a cost-aware dataflow model, allowing
for an extensible graph rewriting system that applies transformations
with certain performance objectives within a specified cost budget."

The estimator ranks candidate plans for a region given a *probe* of the
current machine: cores, disk parameters **including the current burst
credit level**, input size, and load.  Absolute accuracy is not the goal
— correct *ranking* of width/mode choices is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..annotations.model import AggKind, ParClass
from ..commands.base import CPU_PER_BYTE, PROC_STARTUP, SORT_CMP_COST, cpu_coeff
from ..dfg.from_ast import Region
from .parallel import RunChoice, find_parallel_run


@dataclass
class DiskProbe:
    """Snapshot of a disk's state (taken just-in-time)."""

    throughput_bps: float
    base_iops: float
    burst_iops: float
    credits: float  # burst credits available *right now*
    request_bytes: int
    min_request_bytes: int

    @staticmethod
    def from_disk(disk) -> "DiskProbe":
        disk._refill(getattr(disk, "_now_hint", disk._last_refill))
        spec = disk.spec
        return DiskProbe(
            throughput_bps=spec.throughput_bps,
            base_iops=spec.base_iops,
            burst_iops=spec.burst_iops,
            credits=disk.credits,
            request_bytes=spec.request_bytes,
            min_request_bytes=spec.min_request_bytes,
        )


@dataclass
class Probe:
    """Everything the JIT knows at optimization time (B2 made tractable:
    'by running just-in-time, the optimization subsystem has access to
    crucial information ... file sizes, mappings from filesystems to
    physical media, and system load')."""

    cores: int
    cpu_speed: float
    disk: DiskProbe
    input_bytes: int
    avg_line_bytes: float = 30.0
    #: average token (word) size — the line size downstream of a
    #: tokenizing stage such as ``tr -cs A-Za-z '\n'``
    avg_token_bytes: float = 8.0
    runnable_load: int = 0
    #: measured per-command costs (repro.obs.metrics.ObservedCosts) from
    #: the metrics plane; None ⇒ pure static estimates.  Only populated
    #: when JashConfig.profile_feedback is on, so decisions stay
    #: bit-identical with the flag off.
    observed: Optional[object] = None
    #: S20 static volume/trip bounds (:class:`StaticCosts`) from the
    #: abstract interpreter's CostCertificates; None ⇒ dynamic probing
    #: only.  Populated only under JashConfig.static_cost_hints, the
    #: same ship-dark discipline as ``observed``.
    static_hints: Optional[object] = None

    @property
    def input_lines(self) -> float:
        return max(1.0, self.input_bytes / max(1.0, self.avg_line_bytes))


class StaticCosts:
    """The static complement of the metrics plane's ObservedCosts: per-
    region volume and trip-count bounds from the S20 abstract
    interpreter's signed CostCertificates (repro.analysis.absint),
    keyed by unparsed region text so a consumer needs no AST identity.

    ObservedCosts answers "what did this command cost last time it
    ran"; StaticCosts answers "how much data *can* this region see,
    proven before anything runs".  The analysis benchmark compares the
    two on constant-bound workloads (static within 2× of observed)."""

    def __init__(self, certs: Optional[dict] = None):
        #: node_text -> CostCertificate (verified on insert)
        self.certs: dict = certs or {}

    @staticmethod
    def from_analysis(result) -> "StaticCosts":
        """Build from an AnalysisResult (or AbsintResult) — tampered
        certificates (signature mismatch) are dropped."""
        absint = getattr(result, "absint", result)
        out = StaticCosts()
        for cert in getattr(absint, "cost_list", ()) or ():
            if cert.verify():
                out.certs[cert.node_text] = cert
        return out

    def input_bytes(self, node_text: str) -> Optional[int]:
        """Upper volume bound for the region, or None (unbounded or
        uncertified)."""
        cert = self.certs.get(node_text)
        return cert.bytes_hi if cert is not None else None

    def trip_bounds(self, node_text: str) -> Optional[tuple]:
        """(lo, hi) loop trip-count bounds; hi None ⇒ unbounded."""
        cert = self.certs.get(node_text)
        return (cert.trip_lo, cert.trip_hi) if cert is not None else None

    def stage_bytes(self, node_text: str) -> tuple:
        """Per-stage byte hints ((bytes entering each stage)), possibly
        empty."""
        cert = self.certs.get(node_text)
        return cert.stage_bytes if cert is not None else ()

    def __len__(self) -> int:
        return len(self.certs)


def disk_time(nbytes: float, streams: int, disk: DiskProbe,
              credits_used_before: float = 0.0) -> tuple[float, float]:
    """(seconds, ops) to move ``nbytes`` with ``streams`` concurrent
    access streams, starting with the probe's credits minus any already
    consumed by earlier phases of the same plan."""
    if nbytes <= 0:
        return 0.0, 0.0
    eff_request = max(disk.min_request_bytes, disk.request_bytes // max(1, streams))
    ops = nbytes / eff_request
    credits = max(0.0, disk.credits - credits_used_before)
    if disk.burst_iops > disk.base_iops:
        burst_ops = min(ops, credits)
        iops_time = burst_ops / disk.burst_iops + (ops - burst_ops) / disk.base_iops
    else:
        iops_time = ops / disk.base_iops
    return max(nbytes / disk.throughput_bps, iops_time), ops


@dataclass
class CostEstimate:
    seconds: float
    breakdown: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"CostEstimate({self.seconds:.3f}s, {self.breakdown})"


def _stage_flows(region: Region, probe: Probe) -> list[tuple[float, float]]:
    """(bytes entering, avg line size entering) for each stage; applies
    selectivities and tracks tokenizing stages that shrink lines."""
    flows = []
    current = float(probe.input_bytes)
    avg_line = max(1.0, probe.avg_line_bytes)
    for stage in region.stages:
        flows.append((current, avg_line))
        current = current * max(0.0, stage.spec.selectivity)
        if stage.spec.tokenizing:
            avg_line = max(1.0, probe.avg_token_bytes)
        elif stage.spec.shrinks_lines:
            # column selection: lines survive but get shorter
            avg_line = max(1.0, avg_line * max(0.01, stage.spec.selectivity))
    return flows


def _coeff(command: str, observed) -> float:
    """CPU-per-byte for ``command``: the metrics plane's measurement
    when profile feedback supplied one, the static table otherwise."""
    if observed is not None:
        measured = observed.coeff(command)
        if measured is not None:
            return measured
    return cpu_coeff(command)


def _stage_cpu(stage, nbytes: float, avg_line: float, observed=None) -> float:
    cpu = _coeff(stage.argv[0], observed) * nbytes
    if stage.argv[0] == "sort" and (
            observed is None or observed.coeff("sort") is None):
        # the n·log n comparison term is folded into a measured
        # coefficient already; only add it to the static estimate
        lines = max(1.0, nbytes / avg_line)
        cpu += lines * math.log2(max(2.0, lines)) * SORT_CMP_COST
    return cpu


def estimate_baseline(region: Region, probe: Probe) -> CostEstimate:
    """Sequential pipeline: streaming stages overlap (each on its own
    core); blocking stages serialize their compute."""
    flows = _stage_flows(region, probe)
    io_time, _ops = disk_time(probe.input_bytes, 1, probe.disk)
    stream_peak = 0.0
    blocking_cpu = 0.0
    for stage, (nbytes, avg_line) in zip(region.stages, flows):
        cpu = _stage_cpu(stage, nbytes, avg_line,
                         probe.observed) / probe.cpu_speed
        if stage.spec.blocking:
            blocking_cpu += cpu
        else:
            stream_peak = max(stream_peak, cpu)
    total = max(io_time, stream_peak) + blocking_cpu
    total += PROC_STARTUP * len(region.stages)
    return CostEstimate(total, {
        "io": io_time, "stream_peak": stream_peak, "blocking": blocking_cpu,
    })


def estimate_parallel(region: Region, probe: Probe, width: int, mode: str,
                      eager: bool = False) -> Optional[CostEstimate]:
    """Cost of a width-``width`` plan in the given split mode."""
    run = find_parallel_run(region)
    if run is None:
        return None
    flows = _stage_flows(region, probe)
    disk = probe.disk
    run_stages = region.stages[run.start : run.end]
    in_bytes = flows[run.start][0]
    credits_used = 0.0

    total = 0.0
    breakdown: dict = {"mode": mode, "width": width}

    # ---- input IO ----------------------------------------------------------------
    if mode == "range":
        io_time, ops = disk_time(in_bytes, width, disk)
        credits_used += ops
    elif mode == "materialize":
        # read input (1 stream) + write chunks (w streams) as phase 1,
        # then read chunks back (w streams) in phase 2
        t_read, ops1 = disk_time(in_bytes, 1, disk)
        t_write, ops2 = disk_time(in_bytes, width, disk, ops1)
        t_reread, ops3 = disk_time(in_bytes, width, disk, ops1 + ops2)
        io_time = max(t_read, t_write) + t_reread
        credits_used += ops1 + ops2 + ops3
        total += max(t_read, t_write)  # phase-1 barrier
        io_time = t_reread
        breakdown["materialize_phase1"] = max(t_read, t_write)
    else:  # rr: single reader feeding the splitter
        io_time, ops = disk_time(in_bytes, 1, disk)
        credits_used += ops

    # ---- CPU: parallel run --------------------------------------------------------
    effective_cores = max(1, probe.cores - probe.runnable_load)
    par = min(width, effective_cores)
    run_cpu = 0.0
    for stage, (nbytes, avg_line) in zip(run_stages, flows[run.start : run.end]):
        run_cpu += _stage_cpu(stage, nbytes / width, avg_line, probe.observed)
    # branches beyond core count time-share
    run_cpu = run_cpu / probe.cpu_speed * (width / par)

    # ---- merge + downstream --------------------------------------------------------
    if run.end < len(flows):
        merged_bytes, merged_avg_line = flows[run.end]
    else:
        last_bytes, merged_avg_line = flows[-1]
        merged_bytes = last_bytes * region.stages[-1].spec.selectivity
        if region.stages[-1].spec.tokenizing:
            merged_avg_line = max(1.0, probe.avg_token_bytes)
    merge_cpu = 0.0
    if run.agg_kind is AggKind.SORT_MERGE:
        merge_cpu = (merged_bytes / max(1.0, merged_avg_line)
                     * math.log2(max(2, width)) * SORT_CMP_COST
                     + merged_bytes * CPU_PER_BYTE["sort"]) / probe.cpu_speed
    elif run.agg_kind is AggKind.RERUN:
        merge_cpu = merged_bytes * _coeff(
            run.agg_argv[0] if run.agg_argv else "default",
            probe.observed) / probe.cpu_speed
    else:
        merge_cpu = merged_bytes * 1e-9 / probe.cpu_speed

    down_cpu = 0.0
    for stage, (nbytes, avg_line) in zip(region.stages[run.end :],
                                         flows[run.end :]):
        down_cpu += _stage_cpu(stage, nbytes, avg_line,
                               probe.observed) / probe.cpu_speed

    blocking = any(s.spec.blocking for s in run_stages)
    if blocking:
        # branches must finish before the merge emits
        total += max(io_time, run_cpu * 0.3) + run_cpu * 0.7 + merge_cpu + down_cpu
    else:
        total += max(io_time, run_cpu, merge_cpu + down_cpu)
    if eager:
        t_eager, ops_e = disk_time(2 * in_bytes, width, disk, credits_used)
        credits_used += ops_e
        total += t_eager * 0.5  # partially overlapped spooling
        breakdown["eager_io"] = t_eager

    nodes = width * max(1, len(run_stages)) + 2 + (len(region.stages) - (run.end - run.start))
    total += PROC_STARTUP * nodes * 0.5
    breakdown.update({"io": io_time, "run_cpu": run_cpu, "merge": merge_cpu,
                      "down": down_cpu})
    return CostEstimate(total, breakdown)


# ---------------------------------------------------------------------------
# S21 host-pool ship model: is a region worth sending to real cores?
# ---------------------------------------------------------------------------

#: host-side IPC fixed cost per shipped task (pipe round-trip + pickling)
HOST_IPC_LATENCY_S = 2e-3
#: host-side bytes/s a snapshot/spill copy sustains (page-cache memcpy)
HOST_IPC_BW = 1.5e9
#: how much cheaper the columnar worker kernels are per byte than the
#: in-simulation per-object command path (measured on the spell stages)
HOST_KERNEL_SPEEDUP = 3.0
#: effective host seconds/byte of the in-process command data plane
HOST_SERIAL_COST_PER_BYTE = 2.2e-7


@dataclass
class ShipEstimate:
    """Outcome of the per-core IPC gate for one candidate region."""

    nbytes: int
    ship_s: float       # snapshot + spill + result IPC cost
    serial_s: float     # host cost of crunching in-process
    parallel_s: float   # host cost on the pool (kernels + merge)
    worthwhile: bool

    @property
    def gain_s(self) -> float:
        return self.serial_s - (self.parallel_s + self.ship_s)


def estimate_host_ship(nbytes: int, jobs: int, stages: int = 1,
                       static_hints: Optional[object] = None,
                       region_text: Optional[str] = None,
                       observed: Optional[object] = None,
                       min_ship_bytes: int = 0) -> ShipEstimate:
    """The per-core IPC term of the cost model, applied to host shipping.

    ``static_hints`` (S20 :class:`StaticCosts`) can tighten ``nbytes``:
    when the abstract interpreter proved a smaller volume bound for the
    region than the snapshot size, the bound wins — a region whose
    certified volume cannot amortize the IPC cost is never shipped even
    if the file on disk is large.  ``observed`` (ObservedCosts) refines
    the serial-side per-byte cost the same way the JIT's probe does.
    """
    if static_hints is not None and region_text:
        bound = static_hints.input_bytes(region_text)
        if bound is not None:
            nbytes = min(nbytes, bound)
    per_byte = HOST_SERIAL_COST_PER_BYTE
    if observed is not None:
        try:
            coeffs = [observed.cpu_per_byte(cmd)
                      for cmd in ("tr", "sort", "uniq")]
            coeffs = [c for c in coeffs if c]
            if coeffs:
                per_byte = max(per_byte, sum(coeffs))
        except AttributeError:
            pass
    parts = max(1, min(jobs, 8))
    serial_s = nbytes * per_byte * max(1, stages)
    ship_s = (HOST_IPC_LATENCY_S * (parts * max(1, stages) + 1)
              + 2.0 * nbytes / HOST_IPC_BW)
    parallel_s = serial_s / (HOST_KERNEL_SPEEDUP * max(1, min(jobs, parts)))
    worthwhile = (nbytes >= min_ship_bytes
                  and serial_s > parallel_s + ship_s)
    return ShipEstimate(nbytes=nbytes, ship_s=ship_s, serial_s=serial_s,
                        parallel_s=parallel_s, worthwhile=worthwhile)
