"""The resource-aware optimizer: pick a plan within a cost budget.

"we are developing a resource-aware optimization procedure that ensures
performance improvements on a multitude of underlying platforms ...
The JIT compiler keeps the optimization procedure up-to-date on the
currently available resources of the underlying infrastructure as well
as the size and characteristics of the input."  The headline objective
is *no regressions*: a transformation is applied only when its estimate
beats the baseline by a safety margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..dfg.from_ast import Region
from .cost import CostEstimate, Probe, estimate_baseline, estimate_parallel
from .parallel import Plan, SPLIT_MODES, baseline_plan, parallelize


@dataclass
class Candidate:
    width: int
    mode: str
    eager: bool
    estimate: CostEstimate
    plan: Optional[Plan] = None


@dataclass
class OptimizerConfig:
    #: candidate evaluations allowed per region (the paper's "cost budget")
    budget: int = 24
    #: required speedup margin over the baseline estimate (no-regression
    #: objective: only transform when clearly profitable)
    margin: float = 0.85
    #: inputs smaller than this are never worth transforming
    min_input_bytes: int = 1 << 20
    #: split modes the optimizer may use, in preference order
    modes: tuple[str, ...] = ("rr", "range", "materialize")
    max_width: Optional[int] = None


@dataclass
class Decision:
    plan: Plan
    estimate: CostEstimate
    baseline: CostEstimate
    candidates: list[Candidate] = field(default_factory=list)
    reason: str = ""

    @property
    def transformed(self) -> bool:
        return self.plan.mode != "baseline"


class ResourceAwareOptimizer:
    """Enumerates (width, mode, eager) candidates under a budget and
    returns the best plan that beats the baseline."""

    def __init__(self, config: Optional[OptimizerConfig] = None):
        self.config = config or OptimizerConfig()

    def candidate_widths(self, probe: Probe) -> list[int]:
        limit = self.config.max_width or probe.cores
        widths = []
        w = 2
        while w <= limit:
            widths.append(w)
            w *= 2
        if limit not in widths and limit >= 2:
            widths.append(limit)
        return widths

    def choose(self, region: Region, probe: Probe,
               file_sizes: Callable[[str], Optional[int]]) -> Decision:
        base_est = estimate_baseline(region, probe)
        base = baseline_plan(region)
        if probe.input_bytes < self.config.min_input_bytes:
            return Decision(base, base_est, base_est,
                            reason="input below optimization threshold")
        if not region.parallelizable:
            return Decision(base, base_est, base_est,
                            reason="no parallelizable stage")
        candidates: list[Candidate] = []
        evaluations = 0
        for mode in self.config.modes:
            if mode not in SPLIT_MODES:
                continue
            for width in self.candidate_widths(probe):
                for eager in ((False, True) if mode == "range" else (False,)):
                    if evaluations >= self.config.budget:
                        break
                    estimate = estimate_parallel(region, probe, width, mode,
                                                 eager)
                    evaluations += 1
                    if estimate is None:
                        continue
                    candidates.append(Candidate(width, mode, eager, estimate))
        candidates.sort(key=lambda c: c.estimate.seconds)
        for cand in candidates:
            if cand.estimate.seconds > base_est.seconds * self.config.margin:
                break
            plan = parallelize(region, cand.width, cand.mode,
                               file_sizes=file_sizes, eager=cand.eager)
            if plan is None:
                continue  # estimator thought it applied; builder disagreed
            cand.plan = plan
            return Decision(plan, cand.estimate, base_est, candidates,
                            reason=f"estimated {cand.estimate.seconds:.2f}s "
                                   f"vs baseline {base_est.seconds:.2f}s")
        return Decision(base, base_est, base_est, candidates,
                        reason="no candidate beat the baseline margin")
