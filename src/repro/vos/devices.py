"""Storage device models.

The disk model is the load-bearing part of the Figure 1 reproduction: it
captures throughput limits, request-granularity IOPS limits, gp2-style
burst credit buckets, and the loss of sequential locality when many
streams interleave on one spindle/volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DiskSpec:
    """Static parameters of a block device.

    throughput_bps     peak sequential bandwidth (bytes/second)
    base_iops          sustained IOPS once burst credits are exhausted
    burst_iops         IOPS while burst credits remain (== base_iops when
                       the volume has no burst bucket, e.g. gp3)
    burst_credit_ops   capacity of the credit bucket, in IO operations
    refill_ops_per_s   credit refill rate (gp2 refills at the base rate)
    request_bytes      bytes served by one sequential IO operation
    min_request_bytes  floor on the effective request size under
                       interleaved (multi-stream) access
    """

    name: str = "disk"
    throughput_bps: float = 250e6
    base_iops: float = 3000.0
    burst_iops: float = 3000.0
    burst_credit_ops: float = 0.0
    refill_ops_per_s: float = 0.0
    request_bytes: int = 128 * 1024
    min_request_bytes: int = 4 * 1024


def gp2_spec(
    throughput_bps: float = 250e6,
    base_iops: float = 100.0,
    burst_iops: float = 3000.0,
    burst_credit_ops: float = 3000.0,
) -> DiskSpec:
    """An AWS gp2-style volume: low base IOPS with a burst bucket.

    The paper's 'Standard' instance has a gp2 disk: "100 IOPS that bursts
    to 3K".  Credits refill at the base rate.
    """
    return DiskSpec(
        name="gp2",
        throughput_bps=throughput_bps,
        base_iops=base_iops,
        burst_iops=burst_iops,
        burst_credit_ops=burst_credit_ops,
        refill_ops_per_s=base_iops,
    )


def gp3_spec(throughput_bps: float = 250e6, iops: float = 15000.0) -> DiskSpec:
    """An AWS gp3-style volume: flat 15K IOPS, no burst bucket."""
    return DiskSpec(
        name="gp3",
        throughput_bps=throughput_bps,
        base_iops=iops,
        burst_iops=iops,
    )


@dataclass
class _DiskRequest:
    bytes: int
    ops: float
    process: object  # Process to wake with `result` when service completes
    result: object = None
    start: float = 0.0  # submit time (queue wait starts here)
    #: when the device actually began serving this request
    service_start: float = 0.0
    #: service-time multiplier (>1 under an injected disk slowdown)
    slow: float = 1.0


class Disk:
    """FIFO-served block device with a token-bucket burst model.

    Requests are serialized (one in service at a time), which is how
    contention between parallel readers manifests.  The *effective* request
    size shrinks as more distinct streams touch the device concurrently,
    modelling lost sequential locality: `k` interleaved readers of one
    volume make the access pattern k-way random.
    """

    def __init__(self, spec: DiskSpec):
        self.spec = spec
        self.credits = spec.burst_credit_ops
        self._last_refill = 0.0
        self.queue: list[_DiskRequest] = []
        self.busy_until: float | None = None
        self.current: _DiskRequest | None = None
        self.active_streams = 0  # open file handles that performed IO
        # accounting for benchmarks / introspection
        self.total_bytes = 0
        self.total_ops = 0.0
        self.busy_time = 0.0

    # -- stream locality -----------------------------------------------------

    def effective_request_bytes(self) -> int:
        streams = max(1, self.active_streams)
        eff = self.spec.request_bytes // streams
        return max(self.spec.min_request_bytes, eff)

    def ops_for(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        eff = self.effective_request_bytes()
        return max(1.0, nbytes / eff)

    # -- credit bucket ---------------------------------------------------------

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        if self.spec.refill_ops_per_s > 0:
            self.credits = min(
                self.spec.burst_credit_ops,
                self.credits + elapsed * self.spec.refill_ops_per_s,
            )

    def current_iops(self) -> float:
        if self.credits > 0:
            return self.spec.burst_iops
        return self.spec.base_iops

    def service_time(self, request: _DiskRequest, now: float) -> float:
        """Seconds to serve `request` starting at `now`; drains credits."""
        self._refill(now)
        bw_time = request.bytes / self.spec.throughput_bps
        ops = request.ops
        iops_time = 0.0
        remaining = ops
        # part of the request may be served at burst rate, the rest at base
        if self.credits > 0 and self.spec.burst_iops > self.spec.base_iops:
            burst_ops = min(remaining, self.credits)
            iops_time += burst_ops / self.spec.burst_iops
            self.credits -= burst_ops
            remaining -= burst_ops
            if remaining > 0:
                # exhausted mid-request: remainder at (base + refill) rate;
                # refill happens concurrently so net service is base rate
                iops_time += remaining / self.spec.base_iops
        else:
            iops_time = remaining / self.current_iops()
            self.credits = max(0.0, self.credits - ops)
        self.total_bytes += request.bytes
        self.total_ops += ops
        duration = max(bw_time, iops_time) * max(1.0, request.slow)
        self.busy_time += duration
        return duration
