"""Error types for the virtual OS."""

from __future__ import annotations


class VosError(Exception):
    """Base class for virtual-OS errors (maps to errno-style failures)."""


class FileNotFound(VosError):
    pass


class IsADirectory(VosError):
    pass


class NotADirectory(VosError):
    pass


class BadFileDescriptor(VosError):
    pass


class BrokenPipe(VosError):
    """Write to a pipe whose read end has been closed (SIGPIPE analogue)."""


class NoSuchProcess(VosError):
    pass


class ReadOnlyHandle(VosError):
    pass


class WriteOnlyHandle(VosError):
    pass
