"""Error types for the virtual OS."""

from __future__ import annotations


class VosError(Exception):
    """Base class for virtual-OS errors (maps to errno-style failures)."""


class FileNotFound(VosError):
    pass


class IsADirectory(VosError):
    pass


class NotADirectory(VosError):
    pass


class BadFileDescriptor(VosError):
    pass


class BrokenPipe(VosError):
    """Write to a pipe whose read end has been closed (SIGPIPE analogue)."""


class NoSuchProcess(VosError):
    pass


class InjectedFault(VosError):
    """Base class for failures injected by :mod:`repro.vos.faults`.

    Deliberately *not* a subclass of :class:`BrokenPipe`: an injected
    fault must surface as an I/O error (exit status 74, sysexits
    ``EX_IOERR``) rather than be masked as a benign SIGPIPE death.
    """


class InjectedDiskError(InjectedFault):
    """Injected disk I/O failure (EIO analogue)."""


class InjectedPipeBreak(InjectedFault):
    """Injected pipe breakage (the read end 'vanished')."""


class InjectedPartialWrite(InjectedFault):
    """Injected torn write: a prefix of the data reached the target
    (file bytes or pipe buffer) before the operation failed.  Unlike
    :class:`InjectedDiskError`, state HAS been mutated — recovery layers
    must roll the torn prefix back (staged sinks) or overwrite it
    (journal resume), never trust it."""


class InjectedNetError(InjectedFault):
    """Injected network failure: a cross-node transfer was lost (message
    drop) or refused (partition).  The sender dies with EX_IOERR like a
    connection reset, so distributed recovery retries the branch on a
    surviving replica."""


class ReadOnlyHandle(VosError):
    pass


class WriteOnlyHandle(VosError):
    pass
