"""Error types for the virtual OS."""

from __future__ import annotations


class VosError(Exception):
    """Base class for virtual-OS errors (maps to errno-style failures)."""


class FileNotFound(VosError):
    pass


class IsADirectory(VosError):
    pass


class NotADirectory(VosError):
    pass


class BadFileDescriptor(VosError):
    pass


class BrokenPipe(VosError):
    """Write to a pipe whose read end has been closed (SIGPIPE analogue)."""


class NoSuchProcess(VosError):
    pass


class InjectedFault(VosError):
    """Base class for failures injected by :mod:`repro.vos.faults`.

    Deliberately *not* a subclass of :class:`BrokenPipe`: an injected
    fault must surface as an I/O error (exit status 74, sysexits
    ``EX_IOERR``) rather than be masked as a benign SIGPIPE death.
    """


class InjectedDiskError(InjectedFault):
    """Injected disk I/O failure (EIO analogue)."""


class InjectedPipeBreak(InjectedFault):
    """Injected pipe breakage (the read end 'vanished')."""


class ReadOnlyHandle(VosError):
    pass


class WriteOnlyHandle(VosError):
    pass
