"""Machine profiles.

The paper's Figure 1 ran on AWS c5.2xlarge instances; the 'Standard' one
had a gp2 EBS volume ("100 IOPS that bursts to 3K"), the 'IO-opt' one a
gp3 volume (15K IOPS).  The other profiles cover the population §3.2
mentions: "owners of palm-sized computers to administrators of
supercomputers".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .devices import DiskSpec, gp2_spec, gp3_spec
from .fs import FileSystem
from .kernel import Kernel, Node


@dataclass
class MachineSpec:
    """Parameters for one simulated machine."""

    name: str
    cores: int = 8
    cpu_speed: float = 1.0  # relative to the reference CPU
    disk: DiskSpec = field(default_factory=DiskSpec)

    def make_node(self, fs: FileSystem | None = None, name: str | None = None) -> Node:
        return Node(name or self.name, self.cores, self.cpu_speed, self.disk, fs)

    def make_kernel(self, fs: FileSystem | None = None) -> Kernel:
        return Kernel(self.make_node(fs))


def aws_c5_2xlarge_gp2() -> MachineSpec:
    """The paper's 'Standard' instance: 8 vCPU, gp2 volume."""
    return MachineSpec(name="c5.2xlarge-gp2", cores=8, cpu_speed=1.0, disk=gp2_spec())


def aws_c5_2xlarge_gp3() -> MachineSpec:
    """The paper's 'IO-opt' instance: 8 vCPU, gp3 volume (15K IOPS)."""
    return MachineSpec(name="c5.2xlarge-gp3", cores=8, cpu_speed=1.0, disk=gp3_spec())


def laptop() -> MachineSpec:
    """A developer laptop: 4 cores, NVMe-ish disk, no burst games."""
    return MachineSpec(
        name="laptop",
        cores=4,
        cpu_speed=1.1,
        disk=DiskSpec(name="nvme", throughput_bps=1.5e9, base_iops=100000.0,
                      burst_iops=100000.0),
    )


def raspberry_pi() -> MachineSpec:
    """A palm-sized computer: 4 slow cores, SD-card storage."""
    return MachineSpec(
        name="raspberry-pi",
        cores=4,
        cpu_speed=0.25,
        disk=DiskSpec(name="sdcard", throughput_bps=40e6, base_iops=500.0,
                      burst_iops=500.0, request_bytes=64 * 1024),
    )


def supercomputer_node() -> MachineSpec:
    """A beefy HPC node: many cores, parallel filesystem-class storage."""
    return MachineSpec(
        name="hpc-node",
        cores=64,
        cpu_speed=1.3,
        disk=DiskSpec(name="pfs", throughput_bps=10e9, base_iops=1e6, burst_iops=1e6),
    )


PROFILES = {
    "standard": aws_c5_2xlarge_gp2,
    "io-opt": aws_c5_2xlarge_gp3,
    "laptop": laptop,
    "raspberry-pi": raspberry_pi,
    "hpc": supercomputer_node,
}


def profile(name: str) -> MachineSpec:
    try:
        return PROFILES[name]()
    except KeyError:
        raise KeyError(f"unknown machine profile {name!r}; have {sorted(PROFILES)}") from None
