"""Deterministic fault injection for the virtual OS.

The paper's §4 asks for a shell that is "fault tolerant" — able to
re-execute failed work safely.  The seed kernel assumed every disk read,
pipe write, and process succeeds; this module is the chaos layer that
breaks that assumption on purpose.  A :class:`FaultPlan` is installed on
a :class:`~repro.vos.kernel.Kernel` (``Shell(faults=...)`` or
``kernel.faults = plan``) and is consulted at syscall dispatch:

* ``disk-error`` — the operation fails with :class:`InjectedDiskError`
  (EIO analogue); the victim process exits with status 74
  (``EX_IOERR`` from sysexits.h).
* ``disk-slow`` — the disk request's service time is multiplied by
  ``slow_factor`` (a transient brown-out, not a failure).
* ``pipe-break`` — the write fails with :class:`InjectedPipeBreak`
  (also exit 74; deliberately distinct from a benign SIGPIPE 141).
* ``crash`` — the process performing the operation (or, for
  time-triggered specs, every matching process) is SIGKILLed
  (exit 137).
* ``partial-write`` — a *torn* write: a deterministic prefix
  (``fraction`` of the payload) reaches the file or pipe before the
  operation fails with :class:`InjectedPartialWrite` (exit 74).
  Unlike ``disk-error``, state HAS been mutated — this is the fault
  that crash-consistent recovery layers must survive.
* ``net-error`` — a cross-node transfer is lost; the sender dies
  with :class:`InjectedNetError` (exit 74, connection-reset analogue).
* ``net-partition`` — spec-only: during the window ``[at, at +
  duration)`` every matching cross-node send fails.  Window firings
  are recorded (source ``"window"``) but do not consume the
  ``max_faults`` storm budget — a partition is a condition, not an
  event.

Network faults draw from a *separate* seeded RNG and op counter
(``net_ops``), so installing them never perturbs the disk/pipe fault
schedule of an existing seed.  Specs may also target a fault *path*
via ``via=`` (``"splice"`` for the PR 5 kernel pump, ``"writev"`` for
vectored writes) to aim injections at the zero-copy fast paths.

Faults fire from two sources, both deterministic:

* explicit :class:`FaultSpec` entries matching an *operation count*
  (the Nth fault-eligible operation: disk reads/writes and pipe
  writes) or a *virtual time*, optionally filtered by node name,
  path prefix, or process-name prefix;
* a seeded Bernoulli ``rate`` over eligible operations, drawn from
  ``random.Random(seed)`` — the simulation itself is deterministic,
  so the same seed over the same workload yields the same faults at
  the same virtual times.

Every firing is appended to :attr:`FaultPlan.log`, which doubles as
the reproducibility witness: two runs of the same workload under the
same plan must produce identical logs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

# Exit status of a process killed by an injected I/O fault
# (sysexits.h EX_IOERR).
EX_IOERR = 74
# Exit status of a crashed (SIGKILLed) process: 128 + SIGKILL.
CRASH_STATUS = 137
#: Statuses that recovery layers treat as fault-suspected failures.
FAULT_STATUSES = frozenset({EX_IOERR, CRASH_STATUS})

DISK_ERROR = "disk-error"
DISK_SLOW = "disk-slow"
PIPE_BREAK = "pipe-break"
CRASH = "crash"
PARTIAL_WRITE = "partial-write"
NET_ERROR = "net-error"
NET_PARTITION = "net-partition"
KINDS = (DISK_ERROR, DISK_SLOW, PIPE_BREAK, CRASH,
         PARTIAL_WRITE, NET_ERROR, NET_PARTITION)

_DISK_READ_KINDS = (DISK_ERROR, DISK_SLOW, CRASH)
_DISK_WRITE_KINDS = (DISK_ERROR, DISK_SLOW, CRASH, PARTIAL_WRITE)
#: back-compat alias (reads)
_DISK_KINDS = _DISK_READ_KINDS
_PIPE_KINDS = (PIPE_BREAK, CRASH, PARTIAL_WRITE)
_NET_KINDS = (NET_ERROR,)
#: fault-path tags accepted by FaultSpec.via
VIA_TAGS = ("splice", "writev")


@dataclass
class FaultSpec:
    """One explicit fault trigger.

    Exactly one of ``op`` (fire on the Nth eligible operation, 1-based;
    network specs count ``net_ops``) or ``at`` (fire at/after a virtual
    time) should be set; ``node``, ``path`` and ``proc`` narrow the
    blast radius by node name, path prefix, and process-name prefix,
    and ``via`` by fault path (``"splice"`` / ``"writev"``).  ``times``
    bounds how often the spec fires (time-triggered crashes always fire
    exactly once, killing every matching process at that instant).
    ``fraction`` sets the torn prefix of a ``partial-write``;
    ``duration`` sets the window length of a ``net-partition`` (which
    needs ``at`` and fires on every matching send inside the window,
    ignoring ``times``).
    """

    kind: str
    op: Optional[int] = None
    at: Optional[float] = None
    node: Optional[str] = None
    path: Optional[str] = None
    proc: Optional[str] = None
    slow_factor: float = 8.0
    times: int = 1
    via: Optional[str] = None
    fraction: float = 0.5
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; have {KINDS}")
        if self.slow_factor <= 0:
            raise ValueError(f"slow_factor must be > 0, got {self.slow_factor}")
        if self.via is not None and self.via not in VIA_TAGS:
            raise ValueError(f"unknown via {self.via!r}; have {VIA_TAGS}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.kind == NET_PARTITION and self.at is None:
            raise ValueError("net-partition specs need at= (window start)")


@dataclass
class FaultEvent:
    """One fault firing, recorded for determinism checks."""

    time: float
    kind: str
    target: str
    source: str  # "spec" or "rate"

    def brief(self) -> str:
        return f"{self.time:.6f} {self.kind} {self.target} [{self.source}]"


class _SpecState:
    __slots__ = ("spec", "remaining")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.remaining = max(0, spec.times)


class FaultPlan:
    """A seedable, deterministic schedule of injected faults.

    ``FaultPlan(seed=7, rate=0.05)`` fails ~5% of eligible operations;
    ``FaultPlan(specs=[FaultSpec("crash", at=0.5, proc="sort")])``
    kills every ``sort`` process at virtual time 0.5.  ``max_faults``
    caps the total number of firings (rate *and* spec), modelling a
    transient fault storm after which retries are guaranteed to see a
    healthy system.

    A plan is stateful (RNG position, op counter, log); use
    :meth:`reset` or a fresh plan to replay a workload.
    """

    def __init__(self, seed: int = 0, rate: float = 0.0,
                 kinds: tuple[str, ...] = (DISK_ERROR,),
                 specs: tuple[FaultSpec, ...] = (),
                 slow_factor: float = 8.0,
                 max_faults: Optional[int] = None,
                 fraction: float = 0.5):
        for kind in kinds:
            if kind not in KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; have {KINDS}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if slow_factor <= 0:
            raise ValueError(f"slow_factor must be > 0, got {slow_factor}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds)
        self.specs = tuple(specs)
        self.slow_factor = slow_factor
        self.max_faults = max_faults
        self.fraction = fraction
        #: optional repro.obs.Tracer — firings are mirrored into the
        #: structured trace stream, inline with kernel spans (wired by
        #: Kernel.install_tracer / the Kernel.faults setter)
        self.tracer = None
        #: optional repro.obs.MetricsRegistry — firings increment the
        #: faults.fired counter (wired by Kernel.install_metrics)
        self.metrics = None
        self.reset()

    def reset(self) -> None:
        """Rewind the plan to its initial state (same seed, empty log)."""
        self._rng = random.Random(self.seed)
        # Network faults draw from a distinct stream so that enabling
        # them leaves the disk/pipe schedule of a seed untouched.
        self._net_rng = random.Random(self.seed ^ 0x5DEECE66D)
        self._states = [_SpecState(s) for s in self.specs]
        self.ops = 0
        self.net_ops = 0
        self._budget_used = 0
        self.log: list[FaultEvent] = []

    def fork(self) -> "FaultPlan":
        """A fresh, unfired copy of this plan (for replay runs)."""
        return FaultPlan(seed=self.seed, rate=self.rate, kinds=self.kinds,
                         specs=self.specs, slow_factor=self.slow_factor,
                         max_faults=self.max_faults, fraction=self.fraction)

    # -- bookkeeping -------------------------------------------------------------

    @property
    def fired(self) -> int:
        return len(self.log)

    def _budget_left(self) -> bool:
        return self.max_faults is None or self._budget_used < self.max_faults

    def _record(self, now: float, kind: str, target: str, source: str,
                counted: bool = True) -> None:
        event = FaultEvent(now, kind, target, source)
        self.log.append(event)
        if counted:
            self._budget_used += 1
        if self.tracer is not None:
            self.tracer.on_fault(now, event, self.ops)
        if self.metrics is not None:
            self.metrics.on_fault(now, event)

    def trace(self) -> list[str]:
        """The virtual-time fault trace (for determinism assertions)."""
        return [event.brief() for event in self.log]

    # -- matching ---------------------------------------------------------------

    def _matches(self, spec: FaultSpec, now: float, proc, path: Optional[str],
                 via: Optional[str] = None, ops: Optional[int] = None) -> bool:
        count = self.ops if ops is None else ops
        if spec.op is not None and spec.op != count:
            return False
        if spec.at is not None and now < spec.at:
            return False
        if spec.op is None and spec.at is None:
            return False
        if spec.node is not None and proc.node.name != spec.node:
            return False
        if spec.proc is not None and not proc.name.startswith(spec.proc):
            return False
        if spec.path is not None:
            if path is None or not path.startswith(spec.path):
                return False
        if spec.via is not None and spec.via != via:
            return False
        return True

    def _explicit(self, eligible: tuple[str, ...], now: float, proc,
                  path: Optional[str], via: Optional[str] = None,
                  ops: Optional[int] = None) -> Optional[FaultSpec]:
        for state in self._states:
            spec = state.spec
            if state.remaining <= 0 or spec.kind not in eligible:
                continue
            if spec.at is not None and spec.op is None and spec.kind == CRASH:
                continue  # timed crashes fire via due_timed_crashes()
            if not self._matches(spec, now, proc, path, via, ops):
                continue
            if not self._budget_left():
                return None
            state.remaining -= 1
            return spec
        return None

    def _random_kind(self, eligible: tuple[str, ...]) -> Optional[str]:
        kinds = [k for k in self.kinds if k in eligible]
        # Always draw once per eligible op so the RNG stream (and hence
        # the fault schedule) is independent of which ops hit faults.
        draw = self._rng.random()
        if not kinds or self.rate <= 0.0 or draw >= self.rate:
            return None
        if not self._budget_left():
            return None
        if len(kinds) == 1:
            return kinds[0]
        return kinds[int(self._rng.random() * len(kinds)) % len(kinds)]

    # -- kernel consultation -----------------------------------------------------

    def on_disk_io(self, now: float, proc, path: str, write: bool = False,
                   via: Optional[str] = None):
        """Consulted before every file read/write that reaches a disk.
        Returns None, or ``(kind, factor)`` where ``factor`` is the
        slow multiplier for ``disk-slow`` and the torn prefix fraction
        for ``partial-write`` (write ops only)."""
        self.ops += 1
        # Scratch files under /tmp embed a process-global counter in
        # their names; canonicalize them by the plan's op counter so
        # traces are identical across fresh kernels with the same seed.
        shown = path if not path.startswith("/tmp/") else f"tmp@op{self.ops}"
        eligible = _DISK_WRITE_KINDS if write else _DISK_READ_KINDS
        spec = self._explicit(eligible, now, proc, path, via)
        if spec is not None:
            self._record(now, spec.kind, f"{proc.name}:{shown}", "spec")
            factor = (spec.fraction if spec.kind == PARTIAL_WRITE
                      else spec.slow_factor)
            return spec.kind, factor
        kind = self._random_kind(eligible)
        if kind is not None:
            self._record(now, kind, f"{proc.name}:{shown}", "rate")
            factor = self.fraction if kind == PARTIAL_WRITE else self.slow_factor
            return kind, factor
        return None

    def on_pipe_write(self, now: float, proc, pipe, via: Optional[str] = None):
        """Consulted before every pipe write.  Returns None, a kind, or
        ``(PARTIAL_WRITE, fraction)`` for torn pipe writes."""
        self.ops += 1
        # Name the target by the plan's own op counter, not the pipe's
        # process-global id: traces must be identical across fresh
        # kernels run with the same seed.
        target = f"{proc.name}:pipe@op{self.ops}"
        spec = self._explicit(_PIPE_KINDS, now, proc, None, via)
        if spec is not None:
            self._record(now, spec.kind, target, "spec")
            if spec.kind == PARTIAL_WRITE:
                return spec.kind, spec.fraction
            return spec.kind
        kind = self._random_kind(_PIPE_KINDS)
        if kind is not None:
            self._record(now, kind, target, "rate")
            if kind == PARTIAL_WRITE:
                return kind, self.fraction
            return kind
        return None

    # -- network consultation ----------------------------------------------------

    def _partition_active(self, now: float, proc, dst_node: str) -> Optional[FaultSpec]:
        for state in self._states:
            spec = state.spec
            if spec.kind != NET_PARTITION:
                continue
            if not (spec.at <= now < spec.at + spec.duration):
                continue
            if spec.node is not None and spec.node not in (proc.node.name,
                                                           dst_node):
                continue
            if spec.proc is not None and not proc.name.startswith(spec.proc):
                continue
            return spec
        return None

    def on_net_send(self, now: float, proc, dst_node: str):
        """Consulted before every cross-node transfer.  Returns None or
        a net fault kind.  Draws from the dedicated net RNG stream and
        ``net_ops`` counter, never from the disk/pipe stream."""
        self.net_ops += 1
        target = f"{proc.name}:net@op{self.net_ops}->{dst_node}"
        part = self._partition_active(now, proc, dst_node)
        if part is not None:
            # a partition is a standing condition: record the blocked
            # send but do not consume the fault-storm budget
            self._record(now, NET_PARTITION, target, "window", counted=False)
            return NET_PARTITION
        spec = self._explicit(_NET_KINDS, now, proc, None, ops=self.net_ops)
        if spec is not None:
            self._record(now, spec.kind, target, "spec")
            return spec.kind
        # Always draw once per send so the net schedule is independent
        # of which sends hit faults (mirrors _random_kind).
        draw = self._net_rng.random()
        if (NET_ERROR in self.kinds and self.rate > 0.0 and draw < self.rate
                and self._budget_left()):
            self._record(now, NET_ERROR, target, "rate")
            return NET_ERROR
        return None

    # -- time-triggered crashes ---------------------------------------------------

    def next_timed_crash(self) -> Optional[float]:
        """Earliest pending time-triggered crash (a kernel event-time
        candidate)."""
        times = [
            state.spec.at for state in self._states
            if state.remaining > 0 and state.spec.kind == CRASH
            and state.spec.at is not None and state.spec.op is None
        ]
        if not times or not self._budget_left():
            return None
        return min(times)

    def due_timed_crashes(self, now: float) -> list[FaultSpec]:
        """Pop the time-triggered crash specs due at/before ``now``.
        Each fires exactly once (killing all matching processes)."""
        due: list[FaultSpec] = []
        for state in self._states:
            spec = state.spec
            if (state.remaining > 0 and spec.kind == CRASH
                    and spec.at is not None and spec.op is None
                    and spec.at <= now and self._budget_left()):
                state.remaining = 0
                due.append(spec)
        return due

    def crash_matches(self, spec: FaultSpec, proc) -> bool:
        """Does a time-triggered crash spec target this process?"""
        if spec.node is not None and proc.node.name != spec.node:
            return False
        if spec.proc is not None and not proc.name.startswith(spec.proc):
            return False
        return True

    def record_crash(self, now: float, target: str) -> None:
        self._record(now, CRASH, target, "spec")
