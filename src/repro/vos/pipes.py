"""Kernel pipe objects with bounded buffers (backpressure).

The bounded buffer is essential for realistic pipeline behaviour: stages
overlap, fast producers block on slow consumers, and ``head``-style early
exit propagates upstream as :class:`~repro.vos.errors.BrokenPipe`.
"""

from __future__ import annotations

from .errors import BrokenPipe

DEFAULT_PIPE_CAPACITY = 64 * 1024


class Pipe:
    """A unidirectional byte channel shared by reader/writer handles."""

    _counter = 0

    def __init__(self, capacity: int = DEFAULT_PIPE_CAPACITY):
        Pipe._counter += 1
        self.id = Pipe._counter
        self.capacity = capacity
        self.buffer = bytearray()
        self.readers = 0  # open read handles
        self.writers = 0  # open write handles
        self.read_waiters: list = []  # processes blocked on empty buffer
        self.write_waiters: list = []  # processes blocked on full buffer
        # accounting
        self.total_bytes = 0
        self.peak_bytes = 0  # high-water mark of buffer occupancy

    # -- state queries -----------------------------------------------------

    @property
    def at_eof(self) -> bool:
        return self.writers == 0 and not self.buffer

    @property
    def broken(self) -> bool:
        return self.readers == 0

    def space(self) -> int:
        return self.capacity - len(self.buffer)

    def can_read(self) -> bool:
        return bool(self.buffer) or self.writers == 0

    def can_write(self) -> bool:
        return self.space() > 0 or self.readers == 0

    # -- data movement (kernel performs blocking around these) ----------------

    def push(self, data: bytes) -> int:
        """Accept up to `space()` bytes; returns count accepted."""
        if self.readers == 0:
            raise BrokenPipe(f"pipe {self.id}")
        n = min(len(data), self.space())
        if n:
            self.buffer.extend(data[:n])
            self.total_bytes += n
            if len(self.buffer) > self.peak_bytes:
                self.peak_bytes = len(self.buffer)
        return n

    def pull(self, nbytes: int) -> bytes:
        n = min(nbytes, len(self.buffer))
        data = bytes(self.buffer[:n])
        del self.buffer[:n]
        return data
