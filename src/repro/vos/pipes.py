"""Kernel pipe objects with bounded buffers (backpressure).

The bounded buffer is essential for realistic pipeline behaviour: stages
overlap, fast producers block on slow consumers, and ``head``-style early
exit propagates upstream as :class:`~repro.vos.errors.BrokenPipe`.

The buffer is a **deque of producer chunks**, not one flat ``bytearray``:
``push`` keeps whole chunks by reference (``bytes`` or ``memoryview``,
no slicing copies except when a chunk straddles the capacity limit, where
a zero-copy ``memoryview`` split is taken) and ``pull_chunks`` hands the
same objects back to the reader.  This removes the two per-hop copies of
the old design (``buffer.extend`` on push, ``bytes(buffer[:n])`` +
``del buffer[:n]`` compaction on pull) while preserving the exact byte
granularity of the old API: ``pull(nbytes)`` always returns
``min(nbytes, size)`` bytes, so blocking/wake order — and therefore
virtual time — is unchanged (DESIGN.md §11).
"""

from __future__ import annotations

from collections import deque

from .errors import BrokenPipe

DEFAULT_PIPE_CAPACITY = 64 * 1024


class Pipe:
    """A unidirectional byte channel shared by reader/writer handles."""

    _counter = 0

    def __init__(self, capacity: int = DEFAULT_PIPE_CAPACITY):
        Pipe._counter += 1
        self.id = Pipe._counter
        self.capacity = capacity
        self.chunks: deque = deque()  # bytes-like producer chunks
        self.size = 0  # total buffered bytes across chunks
        self.readers = 0  # open read handles
        self.writers = 0  # open write handles
        self.read_waiters: list = []  # processes blocked on empty buffer
        self.write_waiters: list = []  # processes blocked on full buffer
        # accounting
        self.total_bytes = 0
        self.peak_bytes = 0  # high-water mark of buffer occupancy

    # -- state queries -----------------------------------------------------

    @property
    def at_eof(self) -> bool:
        return self.writers == 0 and not self.size

    @property
    def broken(self) -> bool:
        return self.readers == 0

    def space(self) -> int:
        return self.capacity - self.size

    def can_read(self) -> bool:
        return self.size > 0 or self.writers == 0

    def can_write(self) -> bool:
        return self.space() > 0 or self.readers == 0

    # -- data movement (kernel performs blocking around these) ----------------

    def _accept(self, n: int) -> None:
        self.size += n
        self.total_bytes += n
        if self.size > self.peak_bytes:
            self.peak_bytes = self.size

    def push(self, data) -> int:
        """Accept up to ``space()`` bytes of one chunk; returns count
        accepted.  ``data`` may be ``bytes`` or a ``memoryview``; the
        accepted prefix is kept by reference (a view is taken only when
        the chunk must be split at the capacity boundary)."""
        if self.readers == 0:
            raise BrokenPipe(f"pipe {self.id}")
        n = min(len(data), self.space())
        if n:
            if n < len(data):
                data = memoryview(data)[:n]
            self.chunks.append(data)
            self._accept(n)
        return n

    def push_vector(self, parts: list) -> tuple[int, list]:
        """Accept a vector of chunks; returns ``(accepted_bytes,
        remaining_parts)`` where ``remaining_parts`` references the
        unaccepted suffix without copying."""
        if self.readers == 0:
            raise BrokenPipe(f"pipe {self.id}")
        accepted = 0
        for i, part in enumerate(parts):
            space = self.space()
            if space <= 0:
                return accepted, parts[i:]
            n = len(part)
            if n == 0:
                continue
            if n <= space:
                self.chunks.append(part)
                self._accept(n)
                accepted += n
            else:
                view = memoryview(part)
                self.chunks.append(view[:space])
                self._accept(space)
                accepted += space
                rest = [view[space:]]
                rest.extend(parts[i + 1:])
                return accepted, rest
        return accepted, []

    def pull_chunks(self, nbytes: int) -> list:
        """Remove and return up to ``nbytes`` bytes as a list of whole
        producer chunks (zero-copy); the final chunk is split with a
        ``memoryview`` if it straddles the limit.  Total length is exactly
        ``min(nbytes, size)``."""
        out: list = []
        taken = 0
        chunks = self.chunks
        while chunks and taken < nbytes:
            chunk = chunks[0]
            n = len(chunk)
            if taken + n <= nbytes:
                out.append(chunks.popleft())
                taken += n
            else:
                keep = nbytes - taken
                view = chunk if isinstance(chunk, memoryview) else memoryview(chunk)
                out.append(view[:keep])
                chunks[0] = view[keep:]
                taken += keep
        self.size -= taken
        return out

    def pull(self, nbytes: int) -> bytes:
        """Legacy byte-granularity read: exactly ``min(nbytes, size)``
        bytes, as one ``bytes`` object (zero-copy when a single whole
        ``bytes`` chunk satisfies the request)."""
        chunks = self.chunks
        if chunks and len(chunks[0]) <= nbytes:
            first = chunks[0]
            if type(first) is bytes and (len(chunks) == 1 or len(first) == nbytes):
                chunks.popleft()
                self.size -= len(first)
                return first
        parts = self.pull_chunks(nbytes)
        if not parts:
            return b""
        if len(parts) == 1:
            part = parts[0]
            return part if type(part) is bytes else bytes(part)
        return b"".join(parts)
