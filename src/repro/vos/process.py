"""Process objects and the cooperative process API.

A process body is a generator function ``body(proc)`` that yields syscall
requests.  The :class:`Process` helper methods are sub-generators used via
``yield from`` so command implementations read naturally::

    def body(proc):
        data = yield from proc.read_all(0)
        yield from proc.cpu(len(data) * 1e-9)
        yield from proc.write(1, transform(data))
        return 0
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from .errors import BadFileDescriptor
from .handles import Handle
from .syscalls import (
    CloseReq,
    CpuReq,
    DupReq,
    NetSendReq,
    OpenReq,
    ReadReq,
    SleepReq,
    SpawnReq,
    WaitReq,
    WriteReq,
)

#: Default chunk size processes use for streaming IO.
CHUNK = 64 * 1024

NEW, RUNNING, DONE = "new", "running", "done"


class Process:
    def __init__(self, pid: int, name: str, node, kernel):
        self.pid = pid
        self.name = name
        self.node = node
        self.kernel = kernel
        self.gen: Optional[Iterator] = None
        self.fds: dict[int, Handle] = {}
        self.cwd = "/"
        self.state = NEW
        self.exit_status: Optional[int] = None
        self.error: Optional[str] = None
        self.waiters: list["Process"] = []
        self.start_time = 0.0
        self.end_time = 0.0

    def __repr__(self) -> str:
        return f"<Process {self.pid} {self.name} {self.state}>"

    def handle(self, fd: int) -> Handle:
        try:
            return self.fds[fd]
        except KeyError:
            raise BadFileDescriptor(f"{self.name}: fd {fd}") from None

    def next_fd(self) -> int:
        fd = 0
        while fd in self.fds:
            fd += 1
        return fd

    # -- syscall helper sub-generators ------------------------------------------

    def cpu(self, seconds: float):
        if seconds > 0:
            yield CpuReq(seconds)

    def read(self, fd: int, nbytes: int = CHUNK):
        data = yield ReadReq(fd, nbytes)
        return data

    def write(self, fd: int, data: bytes):
        if not data:
            return 0
        total = 0
        view = memoryview(data)
        while total < len(data):
            n = yield WriteReq(fd, bytes(view[total : total + CHUNK]))
            total += n
        return total

    def read_all(self, fd: int):
        chunks = []
        while True:
            data = yield ReadReq(fd, CHUNK)
            if not data:
                return b"".join(chunks)
            chunks.append(data)

    def read_lines(self, fd: int):
        """Not a plain generator-of-lines: yields syscalls, accumulating
        lines; use ``LineStream`` from repro.commands.base instead for
        incremental processing."""
        data = yield from self.read_all(fd)
        return data.splitlines(keepends=True)

    def open(self, path: str, mode: str = "r"):
        fd = yield OpenReq(path, mode)
        return fd

    def close(self, fd: int):
        yield CloseReq(fd)

    def dup2(self, src_fd: int, dst_fd: int):
        yield DupReq(src_fd, dst_fd)

    def spawn(self, target: Callable, name: str = "proc", fds: Optional[dict] = None,
              cwd: Optional[str] = None, node: Optional[str] = None):
        pid = yield SpawnReq(target, name, fds or {}, cwd, node)
        return pid

    def wait(self, pid: int):
        status = yield WaitReq(pid)
        return status

    def sleep(self, seconds: float):
        yield SleepReq(seconds)

    def net_send(self, dst_node: str, nbytes: int):
        yield NetSendReq(dst_node, nbytes)

    # -- zero-cost metadata access (stat-like calls are effectively free) -----

    @property
    def fs(self):
        return self.node.fs

    def resolve(self, path: str) -> str:
        from .fs import normalize

        return normalize(path, self.cwd)
