"""Process objects and the cooperative process API.

A process body is a generator function ``body(proc)`` that yields syscall
requests.  The :class:`Process` helper methods are sub-generators used via
``yield from`` so command implementations read naturally::

    def body(proc):
        data = yield from proc.read_all(0)
        yield from proc.cpu(len(data) * 1e-9)
        yield from proc.write(1, transform(data))
        return 0
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Optional

from .errors import BadFileDescriptor
from .handles import Handle
from .syscalls import (
    CloseReq,
    CpuReq,
    DupReq,
    KillReq,
    NetSendReq,
    OpenReq,
    ReadReq,
    ReadVReq,
    SleepReq,
    SpawnReq,
    WaitReq,
    WriteReq,
    WriteVReq,
)

#: Default chunk size processes use for streaming IO.
CHUNK = 64 * 1024

NEW, RUNNING, DONE = "new", "running", "done"


class FdTable(dict):
    """fd → Handle mapping with O(log n) lowest-free-fd allocation.

    The old ``next_fd`` scanned from 0 on every open — O(n²) across a
    script that opens many fds.  This subclass keeps a min-heap of
    candidate free fds below a high-water mark; entries are validated
    lazily on allocation so arbitrary dict mutation (the interpreter
    swaps whole tables during redirections) stays correct.
    """

    def __init__(self, mapping: Optional[dict] = None):
        super().__init__()
        self._free: list[int] = []  # candidate free fds, all < _top
        self._top = 0  # every fd >= _top is free
        if mapping:
            for fd, handle in mapping.items():
                self[fd] = handle

    def __setitem__(self, fd: int, handle: Handle) -> None:
        if fd >= self._top:
            for i in range(self._top, fd):
                heapq.heappush(self._free, i)
            self._top = fd + 1
        super().__setitem__(fd, handle)

    def __delitem__(self, fd: int) -> None:
        super().__delitem__(fd)
        heapq.heappush(self._free, fd)

    def pop(self, fd, *default):
        if fd in self:
            heapq.heappush(self._free, fd)
        return super().pop(fd, *default)

    def next_free(self) -> int:
        """Lowest fd not currently mapped (does not reserve it)."""
        free = self._free
        while free:
            fd = free[0]
            if fd in self:  # stale: was re-assigned directly
                heapq.heappop(free)
                continue
            return fd
        return self._top


class Process:
    def __init__(self, pid: int, name: str, node, kernel):
        self.pid = pid
        self.name = name
        self.node = node
        self.kernel = kernel
        self.gen: Optional[Iterator] = None
        self._fds = FdTable()
        self.cwd = "/"
        self.state = NEW
        self.exit_status: Optional[int] = None
        self.error: Optional[str] = None
        self.waiters: list["Process"] = []
        self.start_time = 0.0
        self.end_time = 0.0
        self._splice = None  # kernel-side pump state (repro.vos.kernel)

    def __repr__(self) -> str:
        return f"<Process {self.pid} {self.name} {self.state}>"

    @property
    def fds(self) -> FdTable:
        return self._fds

    @fds.setter
    def fds(self, mapping) -> None:
        # the interpreter replaces whole fd tables during redirections;
        # plain dicts are upgraded so free-fd tracking keeps working
        self._fds = mapping if isinstance(mapping, FdTable) else FdTable(mapping)

    def handle(self, fd: int) -> Handle:
        try:
            return self._fds[fd]
        except KeyError:
            raise BadFileDescriptor(f"{self.name}: fd {fd}") from None

    def next_fd(self) -> int:
        return self._fds.next_free()

    # -- syscall helper sub-generators ------------------------------------------

    def cpu(self, seconds: float):
        if seconds > 0:
            yield CpuReq(seconds)

    def read(self, fd: int, nbytes: int = CHUNK):
        data = yield ReadReq(fd, nbytes)
        return data

    def write(self, fd: int, data: bytes):
        size = len(data)
        if not size:
            return 0
        if size <= CHUNK:
            n = yield WriteReq(fd, data)
            return n
        # zero-copy chunking: each dispatch carries a memoryview slice
        # (the old code materialized bytes(view[...]) per 64 KB chunk)
        total = 0
        view = memoryview(data)
        while total < size:
            n = yield WriteReq(fd, view[total : total + CHUNK])
            total += n
        return total

    def writev(self, fd: int, parts: list):
        """Vectored write: one dispatch (no join copy) when the vector
        fits in CHUNK; otherwise falls back to the chunked ``write``
        path so blocking granularity is unchanged."""
        total = 0
        for part in parts:
            total += len(part)
        if total == 0:
            return 0
        if total <= CHUNK:
            n = yield WriteVReq(fd, list(parts))
            return n
        result = yield from self.write(fd, b"".join(parts))
        return result

    def read_all(self, fd: int):
        chunks: list = []
        while True:
            parts = yield ReadVReq(fd, CHUNK)
            if not parts:
                return b"".join(chunks)
            chunks.extend(parts)

    def read_lines(self, fd: int):
        """Not a plain generator-of-lines: yields syscalls, accumulating
        lines; use ``LineStream`` from repro.commands.base instead for
        incremental processing."""
        data = yield from self.read_all(fd)
        return data.splitlines(keepends=True)

    def open(self, path: str, mode: str = "r"):
        fd = yield OpenReq(path, mode)
        return fd

    def close(self, fd: int):
        yield CloseReq(fd)

    def dup2(self, src_fd: int, dst_fd: int):
        yield DupReq(src_fd, dst_fd)

    def spawn(self, target: Callable, name: str = "proc", fds: Optional[dict] = None,
              cwd: Optional[str] = None, node: Optional[str] = None):
        pid = yield SpawnReq(target, name, fds or {}, cwd, node)
        return pid

    def wait(self, pid: int):
        status = yield WaitReq(pid)
        return status

    def kill(self, pid: int, status: Optional[int] = None):
        """Deliver a fatal signal (victim exits with ``status``); None is
        the signal-0 probe.  Returns 0 (no such pid), 1 (delivered to a
        live victim), or 2 (victim already exited)."""
        outcome = yield KillReq(pid, status)
        return outcome

    def sleep(self, seconds: float):
        yield SleepReq(seconds)

    def net_send(self, dst_node: str, nbytes: int):
        yield NetSendReq(dst_node, nbytes)

    # -- zero-cost metadata access (stat-like calls are effectively free) -----

    @property
    def fs(self):
        return self.node.fs

    def resolve(self, path: str) -> str:
        from .fs import normalize

        return normalize(path, self.cwd)
