"""Syscall request objects yielded by process generators to the kernel."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class CpuReq:
    """Consume ``seconds`` of reference-CPU time (processor-shared)."""

    seconds: float


@dataclass
class ReadReq:
    fd: int
    nbytes: int


@dataclass
class WriteReq:
    fd: int
    data: bytes


@dataclass
class ReadVReq:
    """Vectored read: like :class:`ReadReq` but the kernel answers with a
    *list* of zero-copy buffer chunks (possibly ``memoryview``s) whose
    total length is what a ``ReadReq`` of the same size would have
    returned.  An empty list means EOF."""

    fd: int
    nbytes: int


@dataclass
class WriteVReq:
    """Vectored write: ``parts`` is a list of bytes-like chunks written
    as **one logical write** (one dispatch, one fault-plan op, one disk
    request / pipe transfer of ``sum(len(p))`` bytes).  Callers keep each
    request at or below ``process.CHUNK`` total so blocking granularity
    matches :class:`WriteReq`."""

    fd: int
    parts: list


@dataclass
class SpliceReq:
    """Kernel-side pass-through pump: move bytes from ``src_fd`` to every
    fd in ``dst_fds`` until EOF, charging ``cpu_coeff`` virtual seconds
    per byte — replaying exactly the read/cpu/write op sequence a
    ``cat``-style loop would have issued, in a single dispatch.  Resolves
    to the total byte count moved."""

    src_fd: int
    dst_fds: tuple
    cpu_coeff: float = 0.0
    chunk: int = 64 * 1024


@dataclass
class OpenReq:
    path: str
    mode: str  # "r" | "w" | "a" | "rw"


@dataclass
class CloseReq:
    fd: int


@dataclass
class DupReq:
    """Duplicate ``src_fd`` onto ``dst_fd`` (dup2 semantics)."""

    src_fd: int
    dst_fd: int


@dataclass
class SpawnReq:
    """Start a child process running ``target(proc)``.

    ``fds`` maps child fd numbers to Handle objects (duplicated on
    install); omitted fds are not inherited.  ``node`` selects the cluster
    node (None = parent's node).
    """

    target: Callable
    name: str = "proc"
    fds: dict = field(default_factory=dict)
    cwd: Optional[str] = None
    node: Optional[str] = None


@dataclass
class WaitReq:
    pid: int


@dataclass
class KillReq:
    """Deliver a fatal signal to ``pid``: the victim exits immediately
    with ``status`` (conventionally 128+signum).  ``status=None`` is the
    signal-0 existence probe — nothing is delivered.  Resolves 0 when the
    pid was never spawned, 1 when the signal was delivered to a live
    victim, and 2 when the victim had already exited (delivery is a
    no-op; the caller maps that to zombie-success or reaped-ESRCH)."""

    pid: int
    status: Optional[int] = None


@dataclass
class SleepReq:
    seconds: float


@dataclass
class NetSendReq:
    """Transfer ``nbytes`` from this process's node to ``dst_node``."""

    dst_node: str
    nbytes: int


Syscall = (
    CpuReq, ReadReq, WriteReq, ReadVReq, WriteVReq, SpliceReq,
    OpenReq, CloseReq, DupReq, SpawnReq, WaitReq, KillReq, SleepReq,
    NetSendReq,
)
