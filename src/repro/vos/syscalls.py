"""Syscall request objects yielded by process generators to the kernel."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class CpuReq:
    """Consume ``seconds`` of reference-CPU time (processor-shared)."""

    seconds: float


@dataclass
class ReadReq:
    fd: int
    nbytes: int


@dataclass
class WriteReq:
    fd: int
    data: bytes


@dataclass
class OpenReq:
    path: str
    mode: str  # "r" | "w" | "a" | "rw"


@dataclass
class CloseReq:
    fd: int


@dataclass
class DupReq:
    """Duplicate ``src_fd`` onto ``dst_fd`` (dup2 semantics)."""

    src_fd: int
    dst_fd: int


@dataclass
class SpawnReq:
    """Start a child process running ``target(proc)``.

    ``fds`` maps child fd numbers to Handle objects (duplicated on
    install); omitted fds are not inherited.  ``node`` selects the cluster
    node (None = parent's node).
    """

    target: Callable
    name: str = "proc"
    fds: dict = field(default_factory=dict)
    cwd: Optional[str] = None
    node: Optional[str] = None


@dataclass
class WaitReq:
    pid: int


@dataclass
class SleepReq:
    seconds: float


@dataclass
class NetSendReq:
    """Transfer ``nbytes`` from this process's node to ``dst_node``."""

    dst_node: str
    nbytes: int


Syscall = (
    CpuReq, ReadReq, WriteReq, OpenReq, CloseReq, DupReq,
    SpawnReq, WaitReq, SleepReq, NetSendReq,
)
