"""In-memory filesystem with virtual-time metadata.

Files hold real bytes (so command semantics are testable); the *cost* of
touching them is charged by the kernel through the disk model.  Paths are
POSIX-style; each :class:`FileSystem` belongs to one node/machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .errors import FileNotFound, IsADirectory, NotADirectory


def normalize(path: str, cwd: str = "/") -> str:
    """Resolve ``path`` against ``cwd`` into a normalized absolute path."""
    if not path.startswith("/"):
        path = cwd.rstrip("/") + "/" + path
    parts: list[str] = []
    for seg in path.split("/"):
        if seg in ("", "."):
            continue
        if seg == "..":
            if parts:
                parts.pop()
        else:
            parts.append(seg)
    return "/" + "/".join(parts)


@dataclass
class FileNode:
    data: bytearray = field(default_factory=bytearray)
    mtime: float = 0.0

    @property
    def size(self) -> int:
        return len(self.data)


class FileSystem:
    """Flat-namespace filesystem: files plus an explicit directory set."""

    def __init__(self) -> None:
        self.files: dict[str, FileNode] = {}
        self.dirs: set[str] = {"/", "/tmp", "/dev"}

    # -- queries ---------------------------------------------------------------

    def exists(self, path: str) -> bool:
        path = normalize(path)
        return path in self.files or path in self.dirs

    def is_file(self, path: str) -> bool:
        return normalize(path) in self.files

    def is_dir(self, path: str) -> bool:
        return normalize(path) in self.dirs

    def size(self, path: str) -> int:
        return self._node(path).size

    def mtime(self, path: str) -> float:
        return self._node(path).mtime

    def _node(self, path: str) -> FileNode:
        path = normalize(path)
        node = self.files.get(path)
        if node is None:
            if path in self.dirs:
                raise IsADirectory(path)
            raise FileNotFound(path)
        return node

    def listdir(self, path: str) -> list[str]:
        path = normalize(path)
        if path not in self.dirs:
            if path in self.files:
                raise NotADirectory(path)
            raise FileNotFound(path)
        prefix = path.rstrip("/") + "/"
        names = set()
        for p in list(self.files) + list(self.dirs):
            if p != path and p.startswith(prefix):
                rest = p[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)

    def walk(self) -> Iterator[str]:
        yield from sorted(self.files)

    # -- mutation -----------------------------------------------------------------

    def mkdir(self, path: str, parents: bool = True) -> None:
        path = normalize(path)
        if path in self.files:
            raise NotADirectory(path)
        if parents:
            parts = path.strip("/").split("/")
            for i in range(1, len(parts) + 1):
                self.dirs.add("/" + "/".join(parts[:i]))
        else:
            self.dirs.add(path)

    def _ensure_parent(self, path: str) -> None:
        parent = path.rsplit("/", 1)[0] or "/"
        if parent not in self.dirs:
            self.mkdir(parent, parents=True)

    def create(self, path: str, data: bytes = b"", mtime: float = 0.0) -> FileNode:
        """Create or truncate ``path`` with ``data``."""
        path = normalize(path)
        if path in self.dirs:
            raise IsADirectory(path)
        self._ensure_parent(path)
        node = FileNode(bytearray(data), mtime)
        self.files[path] = node
        return node

    def open_node(self, path: str, create: bool = False, truncate: bool = False,
                  mtime: float = 0.0) -> FileNode:
        path = normalize(path)
        if path in self.dirs:
            raise IsADirectory(path)
        node = self.files.get(path)
        if node is None:
            if not create:
                raise FileNotFound(path)
            return self.create(path, mtime=mtime)
        if truncate:
            node.data = bytearray()
            node.mtime = mtime
        return node

    def read_bytes(self, path: str) -> bytes:
        return bytes(self._node(path).data)

    def write_bytes(self, path: str, data: bytes, mtime: float = 0.0) -> None:
        self.create(path, data, mtime)

    def unlink(self, path: str) -> None:
        path = normalize(path)
        if path not in self.files:
            raise FileNotFound(path)
        del self.files[path]

    def rename(self, src: str, dst: str) -> None:
        src, dst = normalize(src), normalize(dst)
        node = self._node(src)
        del self.files[src]
        self._ensure_parent(dst)
        self.files[dst] = node

    def copy_from(self, other: "FileSystem") -> None:
        """Deep-copy another filesystem's contents into this one."""
        for path, node in other.files.items():
            self.files[path] = FileNode(bytearray(node.data), node.mtime)
        self.dirs |= set(other.dirs)
