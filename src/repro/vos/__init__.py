"""S3 — the virtual OS substrate: discrete-event kernel, filesystem,
devices, pipes, and machine profiles.

This package substitutes for the paper's EC2 testbed: commands process
real bytes while the kernel charges virtual time against CPU, disk
(throughput + IOPS + burst credits), and pipe backpressure models.
"""

from .devices import Disk, DiskSpec, gp2_spec, gp3_spec
from .errors import (
    BadFileDescriptor,
    BrokenPipe,
    FileNotFound,
    InjectedDiskError,
    InjectedFault,
    InjectedNetError,
    InjectedPartialWrite,
    InjectedPipeBreak,
    IsADirectory,
    NotADirectory,
    VosError,
)
from .faults import (
    CRASH_STATUS,
    EX_IOERR,
    FAULT_STATUSES,
    FaultEvent,
    FaultPlan,
    FaultSpec,
)
from .fs import FileNode, FileSystem, normalize
from .handles import (
    Collector,
    FileHandle,
    Handle,
    NullHandle,
    PipeReader,
    PipeWriter,
    StringSource,
    make_pipe,
)
from .kernel import Kernel, Node, SIGPIPE_STATUS
from .machines import (
    MachineSpec,
    PROFILES,
    aws_c5_2xlarge_gp2,
    aws_c5_2xlarge_gp3,
    laptop,
    profile,
    raspberry_pi,
    supercomputer_node,
)
from .pipes import Pipe
from .process import CHUNK, Process
from .syscalls import (
    CloseReq,
    CpuReq,
    DupReq,
    KillReq,
    NetSendReq,
    OpenReq,
    ReadReq,
    ReadVReq,
    SleepReq,
    SpawnReq,
    SpliceReq,
    WaitReq,
    WriteReq,
    WriteVReq,
)

__all__ = [
    "Disk", "DiskSpec", "gp2_spec", "gp3_spec",
    "BadFileDescriptor", "BrokenPipe", "FileNotFound", "InjectedDiskError",
    "InjectedFault", "InjectedNetError", "InjectedPartialWrite",
    "InjectedPipeBreak", "IsADirectory",
    "NotADirectory", "VosError",
    "CRASH_STATUS", "EX_IOERR", "FAULT_STATUSES", "FaultEvent", "FaultPlan",
    "FaultSpec",
    "FileNode", "FileSystem", "normalize",
    "Collector", "FileHandle", "Handle", "NullHandle", "PipeReader",
    "PipeWriter", "StringSource", "make_pipe",
    "Kernel", "Node", "SIGPIPE_STATUS",
    "MachineSpec", "PROFILES", "aws_c5_2xlarge_gp2", "aws_c5_2xlarge_gp3",
    "laptop", "profile", "raspberry_pi", "supercomputer_node",
    "Pipe", "CHUNK", "Process",
    "CloseReq", "CpuReq", "DupReq", "KillReq", "NetSendReq", "OpenReq",
    "ReadReq", "ReadVReq", "SleepReq", "SpawnReq", "SpliceReq", "WaitReq",
    "WriteReq", "WriteVReq",
]
