"""File-descriptor handle objects.

A handle is the kernel-side object an fd refers to.  Handles are
duplicated by reference (``dup()``) with a shared open-count, mirroring
Unix file-description semantics: a pipe write end is "closed" only when
every dup of it has been closed.
"""

from __future__ import annotations

from typing import Optional

from .devices import Disk
from .errors import ReadOnlyHandle, WriteOnlyHandle
from .fs import FileNode
from .pipes import Pipe


class Handle:
    """Base class.  ``refcount`` counts fd-table references."""

    readable = False
    writable = False

    def __init__(self) -> None:
        self.refcount = 0
        self.closed = False

    def dup(self) -> "Handle":
        self.refcount += 1
        return self

    def release(self) -> bool:
        """Drop one reference; returns True when fully closed."""
        self.refcount -= 1
        if self.refcount <= 0 and not self.closed:
            self.closed = True
            self._on_close()
            return True
        return False

    def _on_close(self) -> None:  # pragma: no cover - overridden
        pass


class NullHandle(Handle):
    """``/dev/null``: reads EOF, swallows writes."""

    readable = True
    writable = True


class StringSource(Handle):
    """An in-memory read-only byte source (here-documents)."""

    readable = True

    def __init__(self, data: bytes):
        super().__init__()
        self.data = data
        self.offset = 0

    def read_now(self, nbytes: int) -> bytes:
        chunk = self.data[self.offset : self.offset + nbytes]
        self.offset += len(chunk)
        return bytes(chunk)


class Collector(Handle):
    """An in-memory write sink (command-substitution capture, test output)."""

    writable = True

    def __init__(self) -> None:
        super().__init__()
        self.chunks: list[bytes] = []

    def write_now(self, data) -> int:
        # keep bytes chunks by reference; memoryview slices (zero-copy
        # pipe/write views) are materialized so later mutation of the
        # underlying buffer cannot alias captured output
        self.chunks.append(data if type(data) is bytes else bytes(data))
        return len(data)

    def getvalue(self) -> bytes:
        return b"".join(self.chunks)


class FileHandle(Handle):
    """A handle onto an fs FileNode, charged against a Disk."""

    def __init__(self, node: FileNode, disk: Optional[Disk], path: str,
                 readable: bool, writable: bool, append: bool = False):
        super().__init__()
        self.node = node
        self.disk = disk
        self.path = path
        self.readable = readable
        self.writable = writable
        self.append = append
        self.offset = len(node.data) if append else 0
        self._stream_counted = False

    # stream-locality bookkeeping: a handle becomes an "active stream" on
    # its first IO and stops being one when closed.
    def note_io(self) -> None:
        if self.disk is not None and not self._stream_counted:
            self._stream_counted = True
            self.disk.active_streams += 1

    def _on_close(self) -> None:
        if self.disk is not None and self._stream_counted:
            self.disk.active_streams -= 1

    def read_now(self, nbytes: int) -> bytes:
        if not self.readable:
            raise WriteOnlyHandle(self.path)
        data = self.node.data[self.offset : self.offset + nbytes]
        self.offset += len(data)
        return bytes(data)

    def eof(self) -> bool:
        return self.offset >= len(self.node.data)

    def write_now(self, data: bytes, now: float) -> int:
        if not self.writable:
            raise ReadOnlyHandle(self.path)
        if self.append:
            self.node.data.extend(data)
            self.offset = len(self.node.data)
        else:
            end = self.offset + len(data)
            if self.offset == len(self.node.data):
                self.node.data.extend(data)
            else:
                self.node.data[self.offset : end] = data
            self.offset = end
        self.node.mtime = now
        return len(data)


class PipeReader(Handle):
    readable = True

    def __init__(self, pipe: Pipe):
        super().__init__()
        self.pipe = pipe
        pipe.readers += 1

    def _on_close(self) -> None:
        self.pipe.readers -= 1


class PipeWriter(Handle):
    writable = True

    def __init__(self, pipe: Pipe):
        super().__init__()
        self.pipe = pipe
        pipe.writers += 1

    def _on_close(self) -> None:
        self.pipe.writers -= 1


def make_pipe(capacity: int = 64 * 1024) -> tuple[PipeReader, PipeWriter]:
    pipe = Pipe(capacity)
    return PipeReader(pipe), PipeWriter(pipe)
