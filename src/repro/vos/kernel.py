"""The discrete-event kernel.

Processes are cooperative generators; the kernel advances a virtual clock
driven by three resource models:

* **CPU**: per-node processor sharing — ``k`` runnable bursts on an
  ``n``-core node each progress at rate ``min(1, n/k)``.
* **Disk**: per-node FIFO device with throughput + IOPS limits and a
  burst-credit bucket (:mod:`repro.vos.devices`).
* **Pipes**: bounded buffers; readers/writers block, ``BrokenPipe`` is
  thrown into writers whose reader vanished (SIGPIPE analogue).

``Kernel.run()`` executes until no process can make progress and returns
the virtual time consumed.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Optional

from .devices import Disk, DiskSpec, _DiskRequest
from .errors import (
    BrokenPipe,
    InjectedDiskError,
    InjectedFault,
    InjectedNetError,
    InjectedPartialWrite,
    InjectedPipeBreak,
    NoSuchProcess,
    VosError,
)
from .faults import (
    CRASH,
    DISK_ERROR,
    DISK_SLOW,
    EX_IOERR,
    NET_ERROR,
    NET_PARTITION,
    PARTIAL_WRITE,
    PIPE_BREAK,
)
from .fs import FileSystem, normalize
from .handles import (
    Collector,
    FileHandle,
    Handle,
    NullHandle,
    PipeReader,
    PipeWriter,
    StringSource,
)
from .pipes import Pipe
from .process import DONE, NEW, RUNNING, Process
from .syscalls import (
    CloseReq,
    CpuReq,
    DupReq,
    KillReq,
    NetSendReq,
    OpenReq,
    ReadReq,
    ReadVReq,
    SleepReq,
    SpawnReq,
    SpliceReq,
    WaitReq,
    WriteReq,
    WriteVReq,
)

#: Exit status for a process killed by SIGPIPE.
SIGPIPE_STATUS = 141

_EPS = 1e-12


class _SpliceState:
    """Kernel-side pump state for one in-flight :class:`SpliceReq`."""

    __slots__ = ("src", "src_fd", "dsts", "dst_fds", "coeff", "chunk",
                 "parts", "total", "chunks", "dst_i", "phase")

    def __init__(self, src, src_fd, dsts, dst_fds, coeff, chunk):
        self.src = src
        self.src_fd = src_fd
        self.dsts = dsts
        self.dst_fds = dst_fds
        self.coeff = coeff
        self.chunk = chunk
        self.parts: list = []
        self.total = 0
        self.chunks = 0
        self.dst_i = 0
        self.phase = "read"


class Node:
    """One machine in the simulation: cores + filesystem + disk."""

    def __init__(self, name: str, cores: int, cpu_speed: float,
                 disk_spec: DiskSpec, fs: Optional[FileSystem] = None):
        self.name = name
        self.cores = cores
        self.cpu_speed = cpu_speed
        self.fs = fs if fs is not None else FileSystem()
        self.disk = Disk(disk_spec)
        # processor-sharing state
        self.cpu_active: dict[Process, float] = {}  # remaining core-seconds
        self.cpu_last_update = 0.0
        self.cpu_busy_time = 0.0

    def cpu_rate(self) -> float:
        k = len(self.cpu_active)
        if k == 0:
            return 1.0
        return min(1.0, self.cores / k)


class Kernel:
    def __init__(self, node: Optional[Node] = None):
        self.now = 0.0
        self.nodes: dict[str, Node] = {}
        if node is not None:
            self.add_node(node)
        self.processes: dict[int, Process] = {}
        self._next_pid = 1
        self._ready: deque = deque()  # (process, value, exception)
        self._timers: list = []  # heap of (time, seq, process, value)
        self._timer_seq = 0
        self.network = None  # installed by repro.distributed for clusters
        self._net_queue: list = []
        #: structured tracer (repro.obs.Tracer) or None; every emission
        #: site is guarded so an untraced kernel pays one None-check
        self.tracer = None
        #: metrics registry (repro.obs.MetricsRegistry) or None — same
        #: single-guard discipline as the tracer
        self.metrics = None
        self.steps = 0
        #: syscall dispatches (one per request crossing the process →
        #: kernel boundary; splice pumps move data without re-dispatching)
        self.dispatches = 0
        #: optional repro.vos.faults.FaultPlan consulted at dispatch
        self._faults = None

    # -- observability -----------------------------------------------------------

    def install_tracer(self, tracer) -> None:
        """Attach a repro.obs.Tracer; fault plans installed before or
        after are wired into the same stream."""
        self.tracer = tracer
        if tracer is not None:
            tracer.attach(self)
        if self._faults is not None and tracer is not None:
            self._faults.tracer = tracer

    def install_metrics(self, registry) -> None:
        """Attach a repro.obs.MetricsRegistry; like the tracer, fault
        plans installed before or after report into it too."""
        self.metrics = registry
        if self._faults is not None and registry is not None:
            self._faults.metrics = registry

    @property
    def faults(self):
        return self._faults

    @faults.setter
    def faults(self, plan) -> None:
        self._faults = plan
        if plan is not None and self.tracer is not None:
            plan.tracer = self.tracer
        if plan is not None and self.metrics is not None:
            plan.metrics = self.metrics

    # -- topology ----------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        node.cpu_last_update = self.now
        self.nodes[node.name] = node
        return node

    @property
    def main_node(self) -> Node:
        return next(iter(self.nodes.values()))

    # -- process lifecycle ---------------------------------------------------------

    def create_process(self, target: Callable, name: str = "proc",
                       node: Optional[Node] = None, cwd: str = "/",
                       fds: Optional[dict[int, Handle]] = None,
                       parent: Optional[Process] = None) -> Process:
        node = node or self.main_node
        proc = Process(self._next_pid, name, node, self)
        self._next_pid += 1
        proc.cwd = cwd
        for fd, handle in (fds or {}).items():
            proc.fds[fd] = handle.dup()
        proc.gen = target(proc)
        proc.state = RUNNING
        proc.start_time = self.now
        self.processes[proc.pid] = proc
        self._ready.append((proc, None, None))
        tr = self.tracer
        if tr is not None:
            tr.on_spawn(self.now, proc, parent)
        mx = self.metrics
        if mx is not None:
            mx.on_spawn(self.now, proc)
        return proc

    def kill_process(self, proc: Process, status: int = 137) -> None:
        """Forcibly terminate a process (SIGKILL analogue): close its fds
        (waking pipe peers), record the status, wake waiters."""
        if proc.state == DONE:
            return
        self._advance_cpu(proc.node)
        remaining = proc.node.cpu_active.pop(proc, None)
        tr = self.tracer
        if tr is not None and remaining is not None:
            tr.on_cpu_killed(self.now, proc, remaining)
        self._exit(proc, status, error="killed")

    def processes_on(self, node: Node) -> list[Process]:
        return [p for p in self.processes.values()
                if p.node is node and p.state != DONE]

    def _exit(self, proc: Process, status: int, error: Optional[str] = None) -> None:
        proc.state = DONE
        if proc._splice is not None:
            st = proc._splice
            proc._splice = None
            tr = self.tracer
            if tr is not None:
                tr.on_splice_end(self.now, proc, st.total, st.chunks,
                                 error=error or "killed")
        proc.exit_status = int(status) & 0xFF if status is not None else 0
        if status is not None and not (0 <= int(status) <= 255):
            proc.exit_status = int(status) & 0xFF
        proc.error = error
        proc.end_time = self.now
        node = proc.node
        if proc in node.cpu_active:  # pragma: no cover - defensive
            self._advance_cpu(node)
            del node.cpu_active[proc]
        for fd in list(proc.fds):
            self._close_fd(proc, fd)
        tr = self.tracer
        for waiter in proc.waiters:
            if tr is not None:
                tr.on_wait_end(self.now, waiter, proc)
            self._ready.append((waiter, proc.exit_status, None))
        proc.waiters.clear()
        if tr is not None:
            tr.on_exit(self.now, proc)
        mx = self.metrics
        if mx is not None:
            mx.on_exit(self.now, proc)

    def _close_fd(self, proc: Process, fd: int) -> None:
        handle = proc.fds.pop(fd, None)
        if handle is None:
            return
        fully = handle.release()
        if fully:
            self._handle_closed(handle)

    def _handle_closed(self, handle: Handle) -> None:
        if isinstance(handle, PipeWriter):
            pipe = handle.pipe
            if pipe.writers == 0:
                self._wake_pipe_readers(pipe)
        elif isinstance(handle, PipeReader):
            pipe = handle.pipe
            if pipe.readers == 0:
                self._break_pipe_writers(pipe)

    # -- main loop ----------------------------------------------------------------

    def run(self) -> float:
        """Run until quiescent; returns the final virtual time."""
        while True:
            self._drain_ready()
            t = self._next_event_time()
            if t is None:
                break
            self._advance_to(t)
        return self.now

    def run_until_process_done(self, proc: Process) -> int:
        """Convenience: run until a given process exits."""
        while proc.state != DONE:
            before = (len(self._ready), self.now, self.steps)
            self._drain_ready()
            if proc.state == DONE:
                break
            t = self._next_event_time()
            if t is None:
                raise RuntimeError(
                    f"deadlock: {proc} cannot make progress "
                    f"(blocked processes: {[p for p in self.processes.values() if p.state != DONE]})"
                )
            self._advance_to(t)
        return proc.exit_status or 0

    def _drain_ready(self) -> None:
        while self._ready:
            proc, value, exc = self._ready.popleft()
            if proc.state == DONE:
                continue
            self._step(proc, value, exc)

    def _step(self, proc: Process, value=None, exc: Optional[BaseException] = None) -> None:
        if proc._splice is not None:
            # the process generator is suspended at a SpliceReq; completions
            # feed the kernel-side pump instead of the generator
            self._splice_step(proc, value, exc)
            return
        self.steps += 1
        try:
            if exc is not None:
                request = proc.gen.throw(exc)
            else:
                request = proc.gen.send(value)
        except StopIteration as stop:
            self._exit(proc, stop.value if stop.value is not None else 0)
        except BrokenPipe:
            self._exit(proc, SIGPIPE_STATUS)
        except InjectedFault as err:
            self._exit(proc, EX_IOERR, error=f"{type(err).__name__}: {err}")
        except VosError as err:
            self._exit(proc, 1, error=f"{type(err).__name__}: {err}")
        else:
            self._dispatch(proc, request)

    # -- syscall dispatch -------------------------------------------------------------

    def _dispatch(self, proc: Process, request) -> None:
        self.dispatches += 1
        tr = self.tracer
        if tr is not None and tr.syscall_events:
            tr.on_syscall(self.now, proc, request)
        mx = self.metrics
        if mx is not None:
            mx.on_dispatch(proc, request)
        if isinstance(request, CpuReq):
            self._sys_cpu(proc, request)
        elif isinstance(request, ReadReq):
            self._sys_read(proc, request)
        elif isinstance(request, WriteReq):
            self._sys_write(proc, request)
        elif isinstance(request, ReadVReq):
            self._sys_read(proc, request, vector=True)
        elif isinstance(request, WriteVReq):
            self._sys_writev(proc, request)
        elif isinstance(request, SpliceReq):
            self._sys_splice(proc, request)
        elif isinstance(request, OpenReq):
            self._sys_open(proc, request)
        elif isinstance(request, CloseReq):
            self._close_fd(proc, request.fd)
            self._ready.append((proc, None, None))
        elif isinstance(request, DupReq):
            self._sys_dup(proc, request)
        elif isinstance(request, SpawnReq):
            self._sys_spawn(proc, request)
        elif isinstance(request, WaitReq):
            self._sys_wait(proc, request)
        elif isinstance(request, KillReq):
            self._sys_kill(proc, request)
        elif isinstance(request, SleepReq):
            self._timer_seq += 1
            heapq.heappush(
                self._timers,
                (self.now + max(0.0, request.seconds), self._timer_seq, proc, None),
            )
        elif isinstance(request, NetSendReq):
            self._sys_net_send(proc, request)
        else:
            self._ready.append(
                (proc, None, VosError(f"unknown syscall {request!r}"))
            )

    # CPU ------------------------------------------------------------------------

    def _sys_cpu(self, proc: Process, request: CpuReq) -> None:
        self._charge_cpu(proc, request.seconds)

    def _charge_cpu(self, proc: Process, seconds: float) -> None:
        node = proc.node
        work = max(_EPS, seconds / node.cpu_speed)
        self._advance_cpu(node)
        node.cpu_active[proc] = work
        tr = self.tracer
        if tr is not None:
            tr.on_cpu_begin(self.now, proc, work)
        mx = self.metrics
        if mx is not None:
            mx.on_cpu(self.now, proc, work)

    def _advance_cpu(self, node: Node) -> None:
        """Account progress of active CPU bursts on `node` up to `self.now`."""
        elapsed = self.now - node.cpu_last_update
        node.cpu_last_update = self.now
        if elapsed <= 0 or not node.cpu_active:
            return
        rate = node.cpu_rate()
        node.cpu_busy_time += elapsed * min(len(node.cpu_active), node.cores)
        finished = []
        for p in node.cpu_active:
            node.cpu_active[p] -= elapsed * rate
            if node.cpu_active[p] <= _EPS:
                finished.append(p)
        tr = self.tracer
        for p in finished:
            del node.cpu_active[p]
            if tr is not None:
                tr.on_cpu_end(self.now, p)
            self._ready.append((p, None, None))

    # IO -----------------------------------------------------------------------------

    def _sys_read(self, proc: Process, request, vector: bool = False) -> None:
        try:
            handle = proc.handle(request.fd)
        except VosError as err:
            self._ready.append((proc, None, err))
            return
        self._handle_read(proc, handle, request.fd, request.nbytes, vector)

    def _handle_read(self, proc: Process, handle: Handle, fd: int,
                     nbytes: int, vector: bool,
                     via: Optional[str] = None) -> None:
        """Read from a resolved handle; with ``vector`` the completion
        value is a list of zero-copy chunks instead of one bytes object
        (same total length either way)."""
        if isinstance(handle, NullHandle):
            self._ready.append((proc, [] if vector else b"", None))
        elif isinstance(handle, StringSource):
            data = handle.read_now(nbytes)
            if vector:
                data = [data] if data else []
            self._ready.append((proc, data, None))
        elif isinstance(handle, FileHandle):
            self._file_read(proc, handle, nbytes, vector, via)
        elif isinstance(handle, PipeReader):
            self._pipe_read(proc, handle.pipe, nbytes, vector)
        else:
            self._ready.append(
                (proc, None, VosError(f"fd {fd} not readable"))
            )

    def _sys_write(self, proc: Process, request: WriteReq) -> None:
        try:
            handle = proc.handle(request.fd)
        except VosError as err:
            self._ready.append((proc, None, err))
            return
        self._handle_write(proc, handle, request.fd, request.data)

    def _handle_write(self, proc: Process, handle: Handle, fd: int, data) -> None:
        if isinstance(handle, (NullHandle,)):
            self._ready.append((proc, len(data), None))
        elif isinstance(handle, Collector):
            self._ready.append((proc, handle.write_now(data), None))
        elif isinstance(handle, FileHandle):
            self._file_write(proc, handle, data)
        elif isinstance(handle, PipeWriter):
            self._pipe_write(proc, handle.pipe, data)
        else:
            self._ready.append(
                (proc, None, VosError(f"fd {fd} not writable"))
            )

    def _sys_writev(self, proc: Process, request: WriteVReq) -> None:
        try:
            handle = proc.handle(request.fd)
        except VosError as err:
            self._ready.append((proc, None, err))
            return
        self._handle_writev(proc, handle, request.fd, request.parts,
                            via="writev")

    def _handle_writev(self, proc: Process, handle: Handle, fd: int,
                       parts: list, via: Optional[str] = None) -> None:
        """Write a chunk vector as one logical write (one fault op, one
        disk request / pipe transfer of the summed length)."""
        if isinstance(handle, (NullHandle,)):
            self._ready.append((proc, sum(len(p) for p in parts), None))
        elif isinstance(handle, Collector):
            n = 0
            for part in parts:
                n += handle.write_now(part)
            self._ready.append((proc, n, None))
        elif isinstance(handle, FileHandle):
            self._file_writev(proc, handle, parts, via)
        elif isinstance(handle, PipeWriter):
            self._pipe_writev(proc, handle.pipe, parts, via)
        else:
            self._ready.append(
                (proc, None, VosError(f"fd {fd} not writable"))
            )

    # file IO through the disk ------------------------------------------------------

    def _disk_fault(self, proc: Process, handle: FileHandle,
                    write: bool = False,
                    via: Optional[str] = None) -> tuple[bool, float, Optional[float]]:
        """Consult the fault plan before a disk operation touches state.
        Returns (aborted, slow_factor, torn_fraction): ``torn_fraction``
        is non-None only for an injected partial write — the caller must
        commit that prefix of the payload and then fail the process."""
        if self.faults is None:
            return False, 1.0, None
        action = self.faults.on_disk_io(self.now, proc, handle.path,
                                        write=write, via=via)
        if action is None:
            return False, 1.0, None
        kind, factor = action
        if kind == DISK_ERROR:
            self._ready.append(
                (proc, None, InjectedDiskError(f"{handle.path}: injected EIO"))
            )
            return True, 1.0, None
        if kind == CRASH:
            self.kill_process(proc)
            return True, 1.0, None
        if kind == DISK_SLOW:
            return False, max(1.0, factor), None
        if kind == PARTIAL_WRITE:
            return False, 1.0, max(0.0, min(1.0, factor))
        return False, 1.0, None  # pragma: no cover - defensive

    def _file_read(self, proc: Process, handle: FileHandle, nbytes: int,
                   vector: bool = False, via: Optional[str] = None) -> None:
        if handle.eof():
            self._ready.append((proc, [] if vector else b"", None))
            return
        aborted, slow, _torn = self._disk_fault(proc, handle, via=via)
        if aborted:
            return
        handle.note_io()
        data = handle.read_now(nbytes)
        result = [data] if vector else data
        disk = handle.disk
        if disk is None:
            self._ready.append((proc, result, None))
            return
        self._disk_submit(
            disk,
            _DiskRequest(len(data), disk.ops_for(len(data)), proc, result, slow=slow),
        )

    def _file_write(self, proc: Process, handle: FileHandle, data,
                    via: Optional[str] = None) -> None:
        aborted, slow, torn = self._disk_fault(proc, handle, write=True, via=via)
        if aborted:
            return
        if torn is not None:
            self._torn_file_write(proc, handle, [data], torn)
            return
        handle.note_io()
        try:
            n = handle.write_now(data, self.now)
        except VosError as err:
            self._ready.append((proc, None, err))
            return
        disk = handle.disk
        if disk is None:
            self._ready.append((proc, n, None))
            return
        self._disk_submit(disk, _DiskRequest(n, disk.ops_for(n), proc, n, slow=slow))

    def _file_writev(self, proc: Process, handle: FileHandle, parts: list,
                     via: Optional[str] = None) -> None:
        aborted, slow, torn = self._disk_fault(proc, handle, write=True, via=via)
        if aborted:
            return
        if torn is not None:
            self._torn_file_write(proc, handle, parts, torn)
            return
        handle.note_io()
        n = 0
        try:
            for part in parts:
                n += handle.write_now(part, self.now)
        except VosError as err:
            self._ready.append((proc, None, err))
            return
        disk = handle.disk
        if disk is None:
            self._ready.append((proc, n, None))
            return
        self._disk_submit(disk, _DiskRequest(n, disk.ops_for(n), proc, n, slow=slow))

    def _torn_file_write(self, proc: Process, handle: FileHandle,
                         parts: list, fraction: float) -> None:
        """Injected partial write: commit a deterministic prefix of the
        payload to the file, then fail the writer.  The torn bytes stay
        on 'disk' — recovery layers must roll them back or overwrite."""
        total = sum(len(part) for part in parts)
        keep = int(total * fraction)
        handle.note_io()
        try:
            for part in parts:
                if keep <= 0:
                    break
                view = part if isinstance(part, memoryview) else memoryview(part)
                handle.write_now(view[:keep], self.now)
                keep -= min(keep, len(part))
        except VosError:  # pragma: no cover - torn target vanished
            pass
        self._ready.append(
            (proc, None,
             InjectedPartialWrite(
                 f"{handle.path}: injected torn write "
                 f"({int(total * fraction)}/{total} bytes)"))
        )

    def _disk_submit(self, disk: Disk, request: _DiskRequest) -> None:
        request.start = self.now
        tr = self.tracer
        if tr is not None:
            tr.on_disk_submit(self.now, disk, request)
        mx = self.metrics
        if mx is not None:
            mx.on_disk_submit(self.now, disk, request)
        if disk.current is None:
            self._disk_start(disk, request)
        else:
            disk.queue.append(request)

    def _disk_start(self, disk: Disk, request: _DiskRequest) -> None:
        disk.current = request
        request.service_start = self.now
        duration = disk.service_time(request, self.now)
        disk.busy_until = self.now + duration

    def _disk_complete(self, disk: Disk) -> None:
        request = disk.current
        disk.current = None
        disk.busy_until = None
        if request is not None:
            tr = self.tracer
            if tr is not None:
                tr.on_disk_complete(self.now, disk, request)
            mx = self.metrics
            if mx is not None:
                mx.on_disk_complete(self.now, disk, request)
            self._ready.append((request.process, request.result, None))
        if disk.queue:
            self._disk_start(disk, disk.queue.pop(0))

    # pipes --------------------------------------------------------------------------------

    def _pipe_read(self, proc: Process, pipe: Pipe, nbytes: int,
                   vector: bool = False) -> None:
        tr = self.tracer
        mx = self.metrics
        if pipe.size:
            if vector:
                data = pipe.pull_chunks(nbytes)
                n = sum(len(part) for part in data)
            else:
                data = pipe.pull(nbytes)
                n = len(data)
            if tr is not None:
                tr.on_pipe_read(self.now, proc, pipe, n)
            if mx is not None:
                mx.on_pipe_read(self.now, proc, pipe, n)
            self._ready.append((proc, data, None))
            self._service_pipe_writers(pipe)
        elif pipe.writers == 0:
            self._ready.append((proc, [] if vector else b"", None))
        else:
            if tr is not None:
                tr.on_pipe_stall_begin(self.now, proc, pipe, "read")
            if mx is not None:
                mx.on_pipe_stall_begin(self.now, proc, pipe, "read")
            pipe.read_waiters.append((proc, nbytes, vector))

    def _pipe_fault(self, proc: Process, pipe: Pipe,
                    via: Optional[str] = None,
                    parts: Optional[list] = None) -> bool:
        """Consult the fault plan before a pipe write; True = aborted.
        A ``partial-write`` pushes a torn prefix of ``parts`` into the
        pipe (visible to the reader!) before failing the writer."""
        if self.faults is None:
            return False
        action = self.faults.on_pipe_write(self.now, proc, pipe, via=via)
        if action is None:
            return False
        if isinstance(action, tuple):  # (partial-write, fraction)
            _kind, fraction = action
            self._torn_pipe_write(proc, pipe, parts or [], fraction)
            return True
        if action == PIPE_BREAK:
            self._ready.append(
                (proc, None, InjectedPipeBreak(f"pipe {pipe.id}: injected break"))
            )
            return True
        if action == CRASH:
            self.kill_process(proc)
            return True
        return False

    def _torn_pipe_write(self, proc: Process, pipe: Pipe, parts: list,
                         fraction: float) -> None:
        """Push a deterministic prefix of the payload, wake readers (the
        torn bytes ARE delivered downstream), then fail the writer."""
        total = sum(len(part) for part in parts)
        keep = int(total * fraction)
        pushed = 0
        for part in parts:
            if keep <= 0:
                break
            view = part if isinstance(part, memoryview) else memoryview(part)
            pushed += pipe.push(view[:keep])
            keep -= min(keep, len(part))
        tr = self.tracer
        if tr is not None and pushed:
            tr.on_pipe_write(self.now, proc, pipe, pushed)
        mx = self.metrics
        if mx is not None and pushed:
            mx.on_pipe_write(self.now, proc, pipe, pushed)
        if pushed:
            self._wake_pipe_readers(pipe)
        self._ready.append(
            (proc, None,
             InjectedPartialWrite(
                 f"pipe {pipe.id}: injected torn write "
                 f"({pushed}/{total} bytes)"))
        )

    def _pipe_write(self, proc: Process, pipe: Pipe, data,
                    via: Optional[str] = None) -> None:
        if pipe.readers == 0:
            self._ready.append((proc, None, BrokenPipe(f"pipe {pipe.id}")))
            return
        if self._pipe_fault(proc, pipe, via, [data]):
            return
        accepted = pipe.push(data)
        tr = self.tracer
        if tr is not None:
            tr.on_pipe_write(self.now, proc, pipe, accepted)
        mx = self.metrics
        if mx is not None:
            mx.on_pipe_write(self.now, proc, pipe, accepted)
        if accepted:
            self._wake_pipe_readers(pipe)
        if accepted == len(data):
            self._ready.append((proc, accepted, None))
        else:
            if tr is not None:
                tr.on_pipe_stall_begin(self.now, proc, pipe, "write")
            if mx is not None:
                mx.on_pipe_stall_begin(self.now, proc, pipe, "write")
            view = data if isinstance(data, memoryview) else memoryview(data)
            pipe.write_waiters.append((proc, [view[accepted:]], accepted))

    def _pipe_writev(self, proc: Process, pipe: Pipe, parts: list,
                     via: Optional[str] = None) -> None:
        if pipe.readers == 0:
            self._ready.append((proc, None, BrokenPipe(f"pipe {pipe.id}")))
            return
        if self._pipe_fault(proc, pipe, via, parts):
            return
        accepted, remaining = pipe.push_vector(parts)
        tr = self.tracer
        if tr is not None:
            tr.on_pipe_write(self.now, proc, pipe, accepted)
        mx = self.metrics
        if mx is not None:
            mx.on_pipe_write(self.now, proc, pipe, accepted)
        if accepted:
            self._wake_pipe_readers(pipe)
        if not remaining:
            self._ready.append((proc, accepted, None))
        else:
            if tr is not None:
                tr.on_pipe_stall_begin(self.now, proc, pipe, "write")
            if mx is not None:
                mx.on_pipe_stall_begin(self.now, proc, pipe, "write")
            pipe.write_waiters.append((proc, remaining, accepted))

    def _wake_pipe_readers(self, pipe: Pipe) -> None:
        tr = self.tracer
        mx = self.metrics
        while pipe.read_waiters and (pipe.size or pipe.writers == 0):
            proc, nbytes, vector = pipe.read_waiters.pop(0)
            if proc.state == DONE:
                continue
            if vector:
                data = pipe.pull_chunks(nbytes)
                n = sum(len(part) for part in data)
            else:
                data = pipe.pull(nbytes)
                n = len(data)
            if tr is not None:
                tr.on_pipe_stall_end(self.now, proc, n)
                tr.on_pipe_read(self.now, proc, pipe, n)
            if mx is not None:
                mx.on_pipe_stall_end(self.now, proc)
                mx.on_pipe_read(self.now, proc, pipe, n)
            self._ready.append((proc, data, None))
        if pipe.read_waiters or not pipe.write_waiters:
            return
        self._service_pipe_writers(pipe)

    def _service_pipe_writers(self, pipe: Pipe) -> None:
        tr = self.tracer
        mx = self.metrics
        progressed = False
        while pipe.write_waiters and pipe.space() > 0:
            proc, parts, done = pipe.write_waiters.pop(0)
            if proc.state == DONE:
                continue
            accepted, remaining = pipe.push_vector(parts)
            progressed = progressed or accepted > 0
            done += accepted
            if tr is not None and accepted:
                tr.on_pipe_write(self.now, proc, pipe, accepted)
            if mx is not None and accepted:
                mx.on_pipe_write(self.now, proc, pipe, accepted)
            if not remaining:
                if tr is not None:
                    tr.on_pipe_stall_end(self.now, proc, done)
                if mx is not None:
                    mx.on_pipe_stall_end(self.now, proc)
                self._ready.append((proc, done, None))
            else:
                pipe.write_waiters.insert(0, (proc, remaining, done))
                break
        if progressed:
            self._wake_pipe_readers(pipe)

    def _break_pipe_writers(self, pipe: Pipe) -> None:
        tr = self.tracer
        mx = self.metrics
        waiters, pipe.write_waiters = pipe.write_waiters, []
        for proc, _remaining, _done in waiters:
            if proc.state != DONE:
                if tr is not None:
                    tr.on_pipe_stall_end(self.now, proc, _done, broken=True)
                if mx is not None:
                    mx.on_pipe_stall_end(self.now, proc)
                self._ready.append((proc, None, BrokenPipe(f"pipe {pipe.id}")))

    # splice fast path -----------------------------------------------------------------

    def _sys_splice(self, proc: Process, request: SpliceReq) -> None:
        """Start a kernel-side pass-through pump: repeatedly read from
        ``src_fd``, charge ``cpu_coeff * len`` seconds, and write the
        chunks to every ``dst_fd`` in order — the exact read/cpu/write
        op sequence (same tracer records, same fault-plan op counts,
        same virtual time) a ``cat``-style generator loop would issue,
        minus one generator resume + request object + data copy per op.
        """
        try:
            src = proc.handle(request.src_fd)
            dsts = [proc.handle(fd) for fd in request.dst_fds]
        except VosError as err:
            self._ready.append((proc, None, err))
            return
        proc._splice = _SpliceState(src, request.src_fd, dsts,
                                    request.dst_fds, request.cpu_coeff,
                                    request.chunk)
        tr = self.tracer
        if tr is not None:
            tr.on_splice_begin(self.now, proc, src, dsts)
        self._splice_read(proc, proc._splice)

    def _splice_read(self, proc: Process, st: "_SpliceState") -> None:
        st.phase = "read"
        self._handle_read(proc, st.src, st.src_fd, st.chunk, vector=True,
                          via="splice")

    def _splice_write(self, proc: Process, st: "_SpliceState") -> None:
        st.phase = "write"
        self._handle_writev(proc, st.dsts[st.dst_i], st.dst_fds[st.dst_i],
                            st.parts, via="splice")

    def _splice_step(self, proc: Process, value, exc) -> None:
        """Advance a pump with a completion ``value`` (or fault ``exc``,
        which unwinds into the generator exactly like a failed ReadReq /
        WriteReq would — BrokenPipe mid-splice exits with SIGPIPE)."""
        st = proc._splice
        if exc is not None:
            proc._splice = None
            tr = self.tracer
            if tr is not None:
                tr.on_splice_end(self.now, proc, st.total, st.chunks,
                                 error=type(exc).__name__)
            self._step(proc, None, exc)
            return
        if st.phase == "read":
            parts = value
            if not parts:  # EOF: resume the generator with the byte total
                total = st.total
                proc._splice = None
                tr = self.tracer
                if tr is not None:
                    tr.on_splice_end(self.now, proc, total, st.chunks)
                self._step(proc, total, None)
                return
            st.parts = parts
            nbytes = 0
            for part in parts:
                nbytes += len(part)
            st.total += nbytes
            st.chunks += 1
            mx = self.metrics
            if mx is not None:
                mx.on_splice(proc, nbytes, len(parts))
            seconds = nbytes * st.coeff
            if seconds > 0:
                st.phase = "cpu"
                self._charge_cpu(proc, seconds)
            else:
                st.dst_i = 0
                self._splice_write(proc, st)
        elif st.phase == "cpu":
            st.dst_i = 0
            self._splice_write(proc, st)
        else:  # write to dsts[dst_i] completed
            st.dst_i += 1
            if st.dst_i < len(st.dsts):
                self._splice_write(proc, st)
            else:
                self._splice_read(proc, st)

    # open/dup -------------------------------------------------------------------------------

    def open_handle(self, node: Node, path: str, mode: str, cwd: str = "/") -> Handle:
        """Create (without installing) a handle for ``path`` on ``node``.
        Raises VosError on failure.  Used by _sys_open and by the shell
        interpreter when preparing child fd tables for redirections."""
        path = normalize(path, cwd)
        if path == "/dev/null":
            return NullHandle()
        if mode == "r":
            file_node = node.fs.open_node(path)
            return FileHandle(file_node, node.disk, path, True, False)
        if mode == "w":
            file_node = node.fs.open_node(path, create=True, truncate=True,
                                          mtime=self.now)
            return FileHandle(file_node, node.disk, path, False, True)
        if mode == "a":
            file_node = node.fs.open_node(path, create=True, mtime=self.now)
            return FileHandle(file_node, node.disk, path, False, True, append=True)
        if mode == "rw":
            file_node = node.fs.open_node(path, create=True, mtime=self.now)
            return FileHandle(file_node, node.disk, path, True, True)
        raise VosError(f"bad open mode {mode!r}")

    def _sys_open(self, proc: Process, request: OpenReq) -> None:
        try:
            handle = self.open_handle(proc.node, request.path, request.mode, proc.cwd)
        except VosError as err:
            self._ready.append((proc, None, err))
            return
        fd = proc.next_fd()
        proc.fds[fd] = handle.dup()
        self._ready.append((proc, fd, None))

    def _sys_dup(self, proc: Process, request: DupReq) -> None:
        try:
            handle = proc.handle(request.src_fd)
        except VosError as err:
            self._ready.append((proc, None, err))
            return
        if request.dst_fd in proc.fds:
            self._close_fd(proc, request.dst_fd)
        proc.fds[request.dst_fd] = handle.dup()
        self._ready.append((proc, None, None))

    # spawn/wait -----------------------------------------------------------------------------

    def _sys_spawn(self, proc: Process, request: SpawnReq) -> None:
        node = self.nodes.get(request.node) if request.node else proc.node
        if node is None:
            self._ready.append((proc, None, VosError(f"no node {request.node!r}")))
            return
        child = self.create_process(
            request.target,
            name=request.name,
            node=node,
            cwd=request.cwd if request.cwd is not None else proc.cwd,
            fds=request.fds,
            parent=proc,
        )
        self._ready.append((proc, child.pid, None))

    def _sys_wait(self, proc: Process, request: WaitReq) -> None:
        child = self.processes.get(request.pid)
        if child is None:
            self._ready.append((proc, None, NoSuchProcess(str(request.pid))))
            return
        tr = self.tracer
        if tr is not None:
            tr.on_wait_edge(proc, child)
        if child.state == DONE:
            self._ready.append((proc, child.exit_status, None))
        else:
            if tr is not None:
                tr.on_wait_begin(self.now, proc, child)
            child.waiters.append(proc)

    def _sys_kill(self, proc: Process, request: KillReq) -> None:
        """Deliver a fatal signal: the victim exits with request.status
        (128+signum by convention).  status=None is the signal-0 probe.
        Resolves 0 = no such pid, 1 = delivered (victim was alive),
        2 = victim already DONE (the kernel keeps every process record,
        so the *caller* decides whether that is an unreaped zombie — a
        successful no-op on a host — or a reaped pid, which is ESRCH)."""
        victim = self.processes.get(request.pid)
        if victim is None:
            self._ready.append((proc, 0, None))
            return
        if victim.state == DONE:
            self._ready.append((proc, 2, None))
            return
        if request.status is not None:
            self.kill_process(victim, request.status)
        self._ready.append((proc, 1, None))

    # network ----------------------------------------------------------------------------------

    def _sys_net_send(self, proc: Process, request: NetSendReq) -> None:
        tr = self.tracer
        if tr is not None:
            tr.on_net(self.now, proc, request.dst_node, request.nbytes)
        mx = self.metrics
        if mx is not None:
            mx.on_net(self.now, proc, request.dst_node, request.nbytes)
        if self.faults is not None:
            kind = self.faults.on_net_send(self.now, proc, request.dst_node)
            if kind == NET_ERROR:
                self._ready.append(
                    (proc, None,
                     InjectedNetError(
                         f"net {proc.node.name}->{request.dst_node}: "
                         f"injected message loss")))
                return
            if kind == NET_PARTITION:
                self._ready.append(
                    (proc, None,
                     InjectedNetError(
                         f"net {proc.node.name}->{request.dst_node}: "
                         f"partitioned")))
                return
        if self.network is None:
            self._ready.append((proc, None, None))
            return
        self.network.submit(self, proc, request)

    # time ------------------------------------------------------------------------------------------

    def _next_event_time(self) -> Optional[float]:
        candidates: list[float] = []
        for node in self.nodes.values():
            if node.disk.busy_until is not None:
                candidates.append(node.disk.busy_until)
            if node.cpu_active:
                rate = node.cpu_rate()
                min_remaining = min(node.cpu_active.values())
                candidates.append(self.now + min_remaining / rate)
        if self._timers:
            candidates.append(self._timers[0][0])
        if self.network is not None:
            t = self.network.next_event_time()
            if t is not None:
                candidates.append(t)
        if self.faults is not None:
            t = self.faults.next_timed_crash()
            if t is not None:
                candidates.append(max(t, self.now))
        if not candidates:
            return None
        return min(candidates)

    def _advance_to(self, t: float) -> None:
        self.now = max(self.now, t)
        for node in self.nodes.values():
            self._advance_cpu(node)
            disk = node.disk
            while disk.busy_until is not None and disk.busy_until <= self.now + _EPS:
                self._disk_complete(disk)
        while self._timers and self._timers[0][0] <= self.now + _EPS:
            _t, _seq, proc, value = heapq.heappop(self._timers)
            if proc.state != DONE:
                self._ready.append((proc, value, None))
        if self.faults is not None:
            for spec in self.faults.due_timed_crashes(self.now + _EPS):
                victims = [
                    p for p in self.processes.values()
                    if p.state != DONE and self.faults.crash_matches(spec, p)
                ]
                for victim in victims:
                    self.faults.record_crash(self.now, victim.name)
                    self.kill_process(victim)
        if self.network is not None:
            self.network.advance_to(self, self.now)
        tr = self.tracer
        if tr is not None:
            tr.on_tick(self.now, len(self._ready),
                       sum(len(n.cpu_active) for n in self.nodes.values()))
        mx = self.metrics
        if mx is not None:
            mx.maybe_sample(self.now)
