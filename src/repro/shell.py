"""Top-level convenience API: run shell scripts on a virtual machine.

::

    from repro import Shell
    sh = Shell()                       # laptop profile by default
    sh.fs.write_bytes("/data/x", b"b\\na\\n")
    result = sh.run("sort /data/x")
    result.stdout                      # b'a\\nb\\n'
    result.elapsed                     # virtual seconds

One :class:`Shell` owns one kernel; consecutive ``run`` calls share the
filesystem (like an interactive session) but each gets fresh shell state
unless ``persist_state=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .parser import parse
from .semantics.interp import Interpreter
from .semantics.state import ShellState
from .vos.faults import FaultPlan
from .vos.handles import Collector, StringSource
from .vos.kernel import Kernel
from .vos.machines import MachineSpec, laptop


@dataclass
class RunResult:
    status: int
    stdout: bytes
    stderr: bytes
    elapsed: float  # virtual seconds consumed by this run

    @property
    def out(self) -> str:
        return self.stdout.decode("utf-8", "replace")

    @property
    def err(self) -> str:
        return self.stderr.decode("utf-8", "replace")

    def __repr__(self) -> str:
        return (
            f"RunResult(status={self.status}, elapsed={self.elapsed:.6f}s, "
            f"stdout={self.stdout[:60]!r}{'...' if len(self.stdout) > 60 else ''})"
        )


class Shell:
    """A virtual machine plus a shell to run scripts on it."""

    def __init__(self, machine: Optional[MachineSpec] = None,
                 kernel: Optional[Kernel] = None,
                 optimizer=None,
                 persist_state: bool = False,
                 faults: Optional[FaultPlan] = None,
                 tracer=None,
                 metrics=None,
                 jobs: Optional[int] = None):
        self.machine = machine or laptop()
        self.kernel = kernel if kernel is not None else self.machine.make_kernel()
        self.optimizer = optimizer
        self.persist_state = persist_state
        if tracer is not None:
            self.kernel.install_tracer(tracer)
        if metrics is not None:
            self.kernel.install_metrics(metrics)
        if faults is not None:
            self.kernel.faults = faults
        self._state: Optional[ShellState] = None
        # S21 host pool: --jobs N / JASH_JOBS enables the multi-core
        # execution plane; 1 (the default) keeps it entirely out of the
        # way.  The coordinator is lazy — no workers fork until a
        # certificate- and volume-gated region actually ships.
        if jobs is None:
            import os

            try:
                jobs = int(os.environ.get("JASH_JOBS", "1") or "1")
            except ValueError:
                jobs = 1
        self.jobs = max(1, jobs)
        self.host_coord = None
        if self.jobs > 1:
            from .parallel_host import HostCoordinator, PoolConfig

            self.host_coord = HostCoordinator(PoolConfig(jobs=self.jobs))

    @property
    def tracer(self):
        return self.kernel.tracer

    @property
    def metrics(self):
        return self.kernel.metrics

    @property
    def faults(self) -> Optional[FaultPlan]:
        return self.kernel.faults

    @faults.setter
    def faults(self, plan: Optional[FaultPlan]) -> None:
        self.kernel.faults = plan

    @property
    def fs(self):
        return self.kernel.main_node.fs

    @property
    def node(self):
        return self.kernel.main_node

    def run(self, script: str, args: Optional[list[str]] = None,
            stdin: bytes = b"", env: Optional[dict[str, str]] = None) -> RunResult:
        """Parse and execute ``script``; returns captured output and the
        virtual time the run consumed."""
        program = parse(script)
        if self.optimizer is not None and hasattr(self.optimizer, "compile_program"):
            # compile-once engines (PaSh AOT, Jash static analysis)
            # preprocess the script before it runs
            self.optimizer.compile_program(program, tracer=self.kernel.tracer,
                                           now=self.kernel.now,
                                           metrics=self.kernel.metrics,
                                           fs=self.fs)
        if self.persist_state and self._state is not None:
            state = self._state
            if args is not None:
                state.positionals = list(args)
        else:
            state = ShellState(args)
            if self.persist_state:
                self._state = state
        for name, value in (env or {}).items():
            state.set(name, value, export=True)
        if self.host_coord is not None:
            self.host_coord.begin_run(program, self.fs, state.cwd)
        interp = Interpreter(state, optimizer=self.optimizer,
                             host_coord=self.host_coord)
        stdout, stderr = Collector(), Collector()
        body = interp.main_body(program)
        start = self.kernel.now
        root = self.kernel.create_process(
            body,
            name="jash",
            cwd=state.cwd,
            fds={0: StringSource(stdin), 1: stdout, 2: stderr},
        )
        status = self.kernel.run_until_process_done(root)
        if self.host_coord is not None:
            self.host_coord.end_run(self.kernel)
        return RunResult(
            status=status,
            stdout=stdout.getvalue(),
            stderr=stderr.getvalue(),
            elapsed=self.kernel.now - start,
        )


def run_script(script: str, machine: Optional[MachineSpec] = None,
               files: Optional[dict[str, bytes]] = None,
               args: Optional[list[str]] = None,
               env: Optional[dict[str, str]] = None,
               optimizer=None,
               faults: Optional[FaultPlan] = None,
               tracer=None, metrics=None) -> RunResult:
    """One-shot helper: build a machine, load ``files``, run ``script``."""
    shell = Shell(machine, optimizer=optimizer, faults=faults, tracer=tracer,
                  metrics=metrics)
    for path, data in (files or {}).items():
        shell.fs.write_bytes(path, data)
    return shell.run(script, args=args, env=env)
