"""S6 — the order-aware dataflow model."""

from .from_ast import (
    Region,
    RegionStage,
    build_dfg,
    extract_region,
    literal_argv,
    make_stage,
    region_from_argvs,
    to_shell,
)
from .graph import (
    CMD,
    CONCAT_MERGE,
    EAGER,
    FILE_READ,
    INTERNAL_KINDS,
    RANGE_READ,
    RR_SPLIT,
    SORT_KWAY,
    SUM_MERGE,
    DataflowGraph,
    DFNode,
    Stream,
)

__all__ = [
    "Region", "RegionStage", "build_dfg", "extract_region", "literal_argv",
    "make_stage", "region_from_argvs", "to_shell",
    "CMD", "CONCAT_MERGE", "EAGER", "FILE_READ", "INTERNAL_KINDS",
    "RANGE_READ", "RR_SPLIT", "SORT_KWAY", "SUM_MERGE",
    "DataflowGraph", "DFNode", "Stream",
]
