"""Shell AST -> dataflow-graph region extraction.

Two consumers with different knowledge:

* the **AOT compiler** (PaSh role) sees the unexpanded AST — it can only
  extract regions whose words are fully literal.  ``cat $FILES | ...``
  is *not* extractable, which is the paper's spell-script argument.
* the **JIT** (Jash role) expands words first (soundly, via the purity
  analysis) and hands concrete argvs to :func:`build_dfg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..annotations.model import InstanceSpec, ParClass, SpecLibrary
from ..parser.ast_nodes import Command, Pipeline, Redirect, SimpleCommand
from .graph import CMD, DataflowGraph


@dataclass
class RegionStage:
    argv: list[str]
    spec: InstanceSpec
    stdin_file: Optional[str] = None   # from `< file`
    stdout_file: Optional[str] = None  # from `> file` / `>> file`
    stdout_append: bool = False


@dataclass
class Region:
    """A candidate dataflow region: a pipeline of known, pure commands."""

    stages: list[RegionStage] = field(default_factory=list)

    @property
    def parallelizable(self) -> bool:
        return any(s.spec.parallelizable for s in self.stages)


def literal_argv(node: SimpleCommand) -> Optional[list[str]]:
    """argv when every word is static (no expansions); else None."""
    argv: list[str] = []
    for word in node.words:
        if not word.is_literal():
            return None
        argv.append(word.literal_value())
    return argv if argv else None


def _literal_redirects(node: SimpleCommand) -> Optional[tuple[Optional[str], Optional[str], bool]]:
    """(stdin_file, stdout_file, append) when redirects are simple/static;
    None when the stage has redirects we cannot model."""
    stdin_file = None
    stdout_file = None
    append = False
    for redirect in node.redirects:
        if not redirect.target.is_literal():
            return None
        target = redirect.target.literal_value()
        fd = redirect.default_fd()
        if redirect.op == "<" and fd == 0:
            stdin_file = target
        elif redirect.op in (">", ">|") and fd == 1:
            stdout_file = target
            append = False
        elif redirect.op == ">>" and fd == 1:
            stdout_file = target
            append = True
        else:
            return None
    return stdin_file, stdout_file, append


def extract_region(node: Command, library: SpecLibrary) -> Optional[Region]:
    """AOT extraction: region from a literal-only pipeline/simple command."""
    if isinstance(node, SimpleCommand):
        commands = [node]
    elif isinstance(node, Pipeline) and not node.negated:
        if not all(isinstance(c, SimpleCommand) for c in node.commands):
            return None
        commands = list(node.commands)
    else:
        return None
    stages: list[RegionStage] = []
    for i, cmd in enumerate(commands):
        if cmd.assigns:
            return None
        argv = literal_argv(cmd)
        if argv is None:
            return None
        redirects = _literal_redirects(cmd)
        if redirects is None:
            return None
        stdin_file, stdout_file, append = redirects
        if stdin_file is not None and i != 0:
            return None
        if stdout_file is not None and i != len(commands) - 1:
            return None
        stage = make_stage(argv, library, stdin_file, stdout_file, append)
        if stage is None:
            return None
        stages.append(stage)
    return Region(stages)


def make_stage(argv: list[str], library: SpecLibrary,
               stdin_file: Optional[str] = None,
               stdout_file: Optional[str] = None,
               append: bool = False) -> Optional[RegionStage]:
    """Classify one expanded argv into a region stage; None when the
    command is unknown or side-effectful (B1 strikes)."""
    if not argv:
        return None
    spec = library.classify(argv[0], argv[1:])
    if spec is None:
        return None
    if spec.par_class is ParClass.SIDE_EFFECTFUL:
        return None
    return RegionStage(list(argv), spec, stdin_file, stdout_file, append)


def region_from_argvs(argvs: list[list[str]], library: SpecLibrary,
                      stdin_file: Optional[str] = None,
                      stdout_file: Optional[str] = None,
                      append: bool = False) -> Optional[Region]:
    """JIT extraction: stages from already-expanded argvs."""
    stages: list[RegionStage] = []
    for i, argv in enumerate(argvs):
        stage = make_stage(
            argv, library,
            stdin_file if i == 0 else None,
            stdout_file if i == len(argvs) - 1 else None,
            append,
        )
        if stage is None:
            return None
        stages.append(stage)
    return Region(stages)


def build_dfg(region: Region) -> DataflowGraph:
    """Lower a region to the baseline (sequential) dataflow graph."""
    dfg = DataflowGraph()
    prev_stream: Optional[int] = None
    first = region.stages[0]
    if first.stdin_file is not None:
        prev_stream = dfg.new_stream(path=first.stdin_file)
        dfg.source = prev_stream
    for i, stage in enumerate(region.stages):
        inputs: tuple[int, ...] = ()
        if stage.spec.reads_stdin or prev_stream is not None:
            if prev_stream is None:
                prev_stream = dfg.new_stream()  # empty stdin
                dfg.source = prev_stream
            inputs = (prev_stream,)
        out_stream = dfg.new_stream(
            path=stage.stdout_file if i == len(region.stages) - 1 else None
        )
        dfg.add_node(CMD, tuple(stage.argv), inputs=inputs,
                     outputs=(out_stream,), spec=stage.spec)
        prev_stream = out_stream
    dfg.sink = prev_stream
    return dfg


def to_shell(dfg: DataflowGraph) -> str:
    """Render a (possibly transformed) DFG as an illustrative shell
    command; internal nodes appear as jash runtime helpers."""
    parts = []
    for node in dfg.topological_order():
        if node.kind == CMD:
            parts.append(" ".join(node.argv))
        else:
            args = " ".join(f"{k}={v}" for k, v in sorted(node.params.items()))
            parts.append(f"jash-{node.kind.replace('_', '-')} {args}".strip())
    return " | ".join(parts)
