"""The order-aware dataflow model (Handa et al. [26]; the IR of PaSh and
POSH).

A :class:`DataflowGraph` is a DAG of nodes connected by byte streams.
Nodes are either external commands (kind ``cmd``) or internal runtime
primitives the compiler introduces (range readers, round-robin splitters,
order-preserving merges, eager buffers).  Streams are anonymous pipes
unless bound to a file path.

"PaSh and POSH identify a fragment of the shell with simpler semantics
than the complete shell, i.e., dataflow programs that take a set of
inputs and produce a set of output files."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from ..annotations.model import InstanceSpec

# node kinds
CMD = "cmd"
RANGE_READ = "range_read"    # params: path, start, end
FILE_READ = "file_read"      # params: paths (cat-like source, charged IO)
RR_SPLIT = "rr_split"        # params: block_lines; one input, k outputs
CONCAT_MERGE = "concat_merge"  # k inputs read to EOF in order
SUM_MERGE = "sum_merge"      # numeric column-wise sum of k inputs
SORT_KWAY = "sort_kway"      # params: argv of the original sort; k inputs
EAGER = "eager"              # params: mode ("disk"|"mem"), tmp_path
INTERNAL_KINDS = (RANGE_READ, FILE_READ, RR_SPLIT, CONCAT_MERGE, SUM_MERGE,
                  SORT_KWAY, EAGER)


@dataclass
class Stream:
    sid: int
    #: when set, the stream is a file on disk rather than a pipe
    path: Optional[str] = None

    @property
    def is_file(self) -> bool:
        return self.path is not None


@dataclass
class DFNode:
    nid: int
    kind: str
    argv: tuple[str, ...] = ()  # for kind == CMD: full argv incl. name
    params: dict = field(default_factory=dict)
    inputs: tuple[int, ...] = ()   # stream ids (stdin first for cmds)
    outputs: tuple[int, ...] = ()  # stream ids (stdout first)
    spec: Optional[InstanceSpec] = None

    @property
    def name(self) -> str:
        if self.kind == CMD:
            return self.argv[0] if self.argv else "?"
        return self.kind

    def describe(self) -> str:
        if self.kind == CMD:
            return " ".join(self.argv)
        if self.kind == RANGE_READ:
            return f"range_read({self.params['path']}[{self.params['start']}:{self.params['end']}])"
        if self.kind == FILE_READ:
            return f"file_read({','.join(self.params['paths'])})"
        return self.kind


class DataflowGraph:
    """A mutable DFG with stream/node id allocation."""

    def __init__(self) -> None:
        self.streams: dict[int, Stream] = {}
        self.nodes: dict[int, DFNode] = {}
        self._sid = itertools.count(1)
        self._nid = itertools.count(1)
        #: the stream whose contents are the region's stdout
        self.sink: Optional[int] = None
        #: the stream fed by the region's stdin (None when unused)
        self.source: Optional[int] = None

    # -- construction ------------------------------------------------------------

    def new_stream(self, path: Optional[str] = None) -> int:
        sid = next(self._sid)
        self.streams[sid] = Stream(sid, path)
        return sid

    def add_node(self, kind: str, argv: tuple[str, ...] = (),
                 params: Optional[dict] = None,
                 inputs: tuple[int, ...] = (),
                 outputs: tuple[int, ...] = (),
                 spec: Optional[InstanceSpec] = None) -> DFNode:
        nid = next(self._nid)
        node = DFNode(nid, kind, tuple(argv), params or {}, tuple(inputs),
                      tuple(outputs), spec)
        self.nodes[nid] = node
        return node

    def remove_node(self, nid: int) -> None:
        del self.nodes[nid]

    # -- queries -------------------------------------------------------------------

    def producer_of(self, sid: int) -> Optional[DFNode]:
        for node in self.nodes.values():
            if sid in node.outputs:
                return node
        return None

    def consumers_of(self, sid: int) -> list[DFNode]:
        return [n for n in self.nodes.values() if sid in n.inputs]

    def topological_order(self) -> list[DFNode]:
        """Nodes in dependency order (inputs' producers first)."""
        order: list[DFNode] = []
        visited: set[int] = set()

        def visit(node: DFNode) -> None:
            if node.nid in visited:
                return
            visited.add(node.nid)
            for sid in node.inputs:
                producer = self.producer_of(sid)
                if producer is not None:
                    visit(producer)
            order.append(node)

        for node in list(self.nodes.values()):
            visit(node)
        return order

    def linear_stages(self) -> Optional[list[DFNode]]:
        """If the graph is a simple chain, return its stages in order."""
        order = self.topological_order()
        for node in order:
            if len(node.outputs) > 1:
                return None
            pipe_inputs = [s for s in node.inputs if not self.streams[s].is_file]
            if len(pipe_inputs) > 1:
                return None
        return order

    def input_files(self) -> list[str]:
        out = []
        for stream in self.streams.values():
            if stream.is_file and self.producer_of(stream.sid) is None:
                out.append(stream.path)
        # plus file operands of cmd nodes
        for node in self.nodes.values():
            if node.kind == CMD and node.spec is not None:
                for idx in node.spec.input_operands:
                    args = node.argv[1:]
                    if idx < len(args) and args[idx] != "-":
                        out.append(args[idx])
            elif node.kind in (RANGE_READ,):
                out.append(node.params["path"])
            elif node.kind == FILE_READ:
                out.extend(node.params["paths"])
        seen = set()
        unique = []
        for path in out:
            if path not in seen:
                seen.add(path)
                unique.append(path)
        return unique

    def copy(self) -> "DataflowGraph":
        dup = DataflowGraph()
        dup.streams = {sid: Stream(sid, s.path) for sid, s in self.streams.items()}
        dup.nodes = {
            nid: replace(n, params=dict(n.params)) for nid, n in self.nodes.items()
        }
        dup._sid = itertools.count(max(self.streams, default=0) + 1)
        dup._nid = itertools.count(max(self.nodes, default=0) + 1)
        dup.sink = self.sink
        dup.source = self.source
        return dup

    def describe(self) -> str:
        lines = []
        for node in self.topological_order():
            ins = ",".join(self._stream_label(s) for s in node.inputs) or "-"
            outs = ",".join(self._stream_label(s) for s in node.outputs) or "-"
            lines.append(f"[{node.nid:>2}] {node.describe():<45} {ins} -> {outs}")
        return "\n".join(lines)

    def _stream_label(self, sid: int) -> str:
        stream = self.streams[sid]
        return f"s{sid}({stream.path})" if stream.is_file else f"s{sid}"

    def to_dot(self) -> str:
        """Graphviz rendering of the dataflow graph (for papers/debugging)."""
        lines = ["digraph dataflow {", "  rankdir=LR;",
                 '  node [shape=box, fontname="monospace"];']
        for node in self.nodes.values():
            shape = "box" if node.kind == CMD else "ellipse"
            label = node.describe().replace('"', r"\"")
            lines.append(f'  n{node.nid} [label="{label}", shape={shape}];')
        for sid, stream in self.streams.items():
            producer = self.producer_of(sid)
            consumers = self.consumers_of(sid)
            label = stream.path or ""
            for consumer in consumers:
                if producer is not None:
                    lines.append(
                        f'  n{producer.nid} -> n{consumer.nid} '
                        f'[label="{label}"];'
                    )
                elif stream.is_file:
                    lines.append(
                        f'  f{sid} [label="{stream.path}", shape=note];'
                    )
                    lines.append(f"  f{sid} -> n{consumer.nid};")
            if producer is not None and not consumers and stream.is_file:
                lines.append(f'  o{sid} [label="{stream.path}", shape=note];')
                lines.append(f"  n{producer.nid} -> o{sid};")
        lines.append("}")
        return "\n".join(lines)
