"""AST node definitions for the POSIX shell (the libdash-equivalent IR).

Every node is a frozen-ish dataclass.  Words are sequences of *parts*;
quoting structure is preserved so that (a) the unparser can round-trip and
(b) expansion (repro.semantics.expansion) can honour quoting rules.

The node set follows the POSIX.1-2017 Shell Command Language grammar
(XCU 2.10), the same fragment libdash parses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# ---------------------------------------------------------------------------
# Word parts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lit:
    """Unquoted literal characters (may contain glob metacharacters)."""

    text: str


@dataclass(frozen=True)
class SingleQuoted:
    """A '...' segment: fully literal, never expanded."""

    text: str


@dataclass(frozen=True)
class Escaped:
    """A backslash-escaped character outside quotes (quoted literal)."""

    char: str


@dataclass(frozen=True)
class DoubleQuoted:
    """A "..." segment: parameter/command/arith expansion but no splitting."""

    parts: tuple["WordPart", ...]


#: Parameter expansion operators (POSIX 2.6.2).
PARAM_OPS = (
    "",  # plain $x / ${x}
    "length",  # ${#x}
    "-", ":-", "=", ":=", "?", ":?", "+", ":+",  # use/assign/error/alternate
    "%", "%%", "#", "##",  # pattern removal
)


@dataclass(frozen=True)
class Param:
    """Parameter expansion ``${name<op>word}``.

    ``op`` is one of PARAM_OPS; ``word`` is the operand word (None when the
    operator takes none, e.g. plain ``$x`` or ``${#x}``).
    """

    name: str
    op: str = ""
    word: Optional["Word"] = None

    def __post_init__(self) -> None:
        if self.op not in PARAM_OPS:
            raise ValueError(f"bad parameter op {self.op!r}")


@dataclass(frozen=True)
class CmdSub:
    """Command substitution ``$(...)`` or backticks.

    ``backtick`` records concrete syntax only and does not affect equality:
    ``$(date)`` and ``\\`date\\``` denote the same substitution.
    """

    command: "Command"
    backtick: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class ArithSub:
    """Arithmetic substitution ``$((...))``.

    The body is kept as word parts: POSIX expands parameters and command
    substitutions in the expression before evaluating it.
    """

    parts: tuple["WordPart", ...]


WordPart = Union[Lit, SingleQuoted, Escaped, DoubleQuoted, Param, CmdSub, ArithSub]


@dataclass(frozen=True)
class Word:
    """A shell word: a non-empty sequence of parts (empty for null word)."""

    parts: tuple[WordPart, ...] = ()

    def is_literal(self) -> bool:
        """True when the word expands to a single known string statically."""
        return all(isinstance(p, (Lit, SingleQuoted, Escaped)) for p in self.parts) and all(
            self._dq_literal(p) for p in self.parts
        )

    @staticmethod
    def _dq_literal(part: WordPart) -> bool:
        if isinstance(part, DoubleQuoted):
            return all(isinstance(q, (Lit, Escaped)) for q in part.parts)
        return True

    def literal_value(self) -> str:
        """The static string value; only valid when :meth:`is_literal`."""
        out: list[str] = []
        for part in self.parts:
            if isinstance(part, Lit):
                out.append(part.text)
            elif isinstance(part, SingleQuoted):
                out.append(part.text)
            elif isinstance(part, Escaped):
                out.append(part.char)
            elif isinstance(part, DoubleQuoted):
                for q in part.parts:
                    if isinstance(q, Lit):
                        out.append(q.text)
                    elif isinstance(q, Escaped):
                        out.append(q.char)
                    else:  # pragma: no cover - guarded by is_literal
                        raise ValueError("word is not literal")
            else:  # pragma: no cover - guarded by is_literal
                raise ValueError("word is not literal")
        return "".join(out)


# ---------------------------------------------------------------------------
# Redirections
# ---------------------------------------------------------------------------

REDIR_OPS = ("<", ">", ">>", "<&", ">&", "<>", ">|", "<<", "<<-")


@dataclass(frozen=True)
class Redirect:
    """A redirection: ``[fd]op target``.

    For here-documents (``<<``/``<<-``) ``heredoc`` holds the body as a Word
    (a single Lit part when the delimiter was quoted, expansion parts
    otherwise) and ``target`` holds the delimiter.
    """

    op: str
    target: Word
    fd: Optional[int] = None
    heredoc: Optional[Word] = None

    def __post_init__(self) -> None:
        if self.op not in REDIR_OPS:
            raise ValueError(f"bad redirect op {self.op!r}")

    def default_fd(self) -> int:
        """The fd this redirection applies to when none was written."""
        if self.fd is not None:
            return self.fd
        return 0 if self.op in ("<", "<&", "<>", "<<", "<<-") else 1


@dataclass(frozen=True)
class Assign:
    """A variable assignment prefix ``name=word``."""

    name: str
    word: Word


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimpleCommand:
    assigns: tuple[Assign, ...] = ()
    words: tuple[Word, ...] = ()
    redirects: tuple[Redirect, ...] = ()


@dataclass(frozen=True)
class Pipeline:
    """``cmd | cmd | ...`` with optional leading ``!``."""

    commands: tuple["Command", ...]
    negated: bool = False


@dataclass(frozen=True)
class AndOr:
    """``left && right`` or ``left || right`` (left-associative chains)."""

    left: "Command"
    op: str  # "&&" or "||"
    right: "Command"

    def __post_init__(self) -> None:
        if self.op not in ("&&", "||"):
            raise ValueError(f"bad and-or op {self.op!r}")


@dataclass(frozen=True)
class ListItem:
    command: "Command"
    is_async: bool = False  # terminated by & rather than ; / newline


@dataclass(frozen=True)
class CommandList:
    """A sequence of and-or lists separated by ``;``, ``&``, or newlines."""

    items: tuple[ListItem, ...]


@dataclass(frozen=True)
class Subshell:
    body: "Command"
    redirects: tuple[Redirect, ...] = ()


@dataclass(frozen=True)
class BraceGroup:
    body: "Command"
    redirects: tuple[Redirect, ...] = ()


@dataclass(frozen=True)
class If:
    cond: "Command"
    then_body: "Command"
    elifs: tuple[tuple["Command", "Command"], ...] = ()
    else_body: Optional["Command"] = None
    redirects: tuple[Redirect, ...] = ()


@dataclass(frozen=True)
class While:
    cond: "Command"
    body: "Command"
    until: bool = False
    redirects: tuple[Redirect, ...] = ()


@dataclass(frozen=True)
class For:
    var: str
    words: Optional[tuple[Word, ...]]  # None means implicit `in "$@"`
    body: "Command"
    redirects: tuple[Redirect, ...] = ()


@dataclass(frozen=True)
class CaseItem:
    patterns: tuple[Word, ...]
    body: Optional["Command"]


@dataclass(frozen=True)
class Case:
    word: Word
    items: tuple[CaseItem, ...]
    redirects: tuple[Redirect, ...] = ()


@dataclass(frozen=True)
class FuncDef:
    name: str
    body: "Command"


Command = Union[
    SimpleCommand,
    Pipeline,
    AndOr,
    CommandList,
    Subshell,
    BraceGroup,
    If,
    While,
    For,
    Case,
    FuncDef,
]

COMPOUND_WITH_REDIRECTS = (Subshell, BraceGroup, If, While, For, Case)


def walk(node: object):
    """Yield ``node`` and every AST descendant (commands, words, parts)."""
    yield node
    if isinstance(node, Word):
        for part in node.parts:
            yield from walk(part)
    elif isinstance(node, DoubleQuoted):
        for part in node.parts:
            yield from walk(part)
    elif isinstance(node, Param):
        if node.word is not None:
            yield from walk(node.word)
    elif isinstance(node, CmdSub):
        yield from walk(node.command)
    elif isinstance(node, ArithSub):
        for part in node.parts:
            yield from walk(part)
    elif isinstance(node, Redirect):
        yield from walk(node.target)
        if node.heredoc is not None:
            yield from walk(node.heredoc)
    elif isinstance(node, Assign):
        yield from walk(node.word)
    elif isinstance(node, SimpleCommand):
        for assign in node.assigns:
            yield from walk(assign)
        for word in node.words:
            yield from walk(word)
        for redirect in node.redirects:
            yield from walk(redirect)
    elif isinstance(node, Pipeline):
        for cmd in node.commands:
            yield from walk(cmd)
    elif isinstance(node, AndOr):
        yield from walk(node.left)
        yield from walk(node.right)
    elif isinstance(node, CommandList):
        for item in node.items:
            yield from walk(item.command)
    elif isinstance(node, (Subshell, BraceGroup)):
        yield from walk(node.body)
        for redirect in node.redirects:
            yield from walk(redirect)
    elif isinstance(node, If):
        yield from walk(node.cond)
        yield from walk(node.then_body)
        for cond, body in node.elifs:
            yield from walk(cond)
            yield from walk(body)
        if node.else_body is not None:
            yield from walk(node.else_body)
        for redirect in node.redirects:
            yield from walk(redirect)
    elif isinstance(node, While):
        yield from walk(node.cond)
        yield from walk(node.body)
        for redirect in node.redirects:
            yield from walk(redirect)
    elif isinstance(node, For):
        if node.words is not None:
            for word in node.words:
                yield from walk(word)
        yield from walk(node.body)
        for redirect in node.redirects:
            yield from walk(redirect)
    elif isinstance(node, Case):
        yield from walk(node.word)
        for item in node.items:
            for pat in item.patterns:
                yield from walk(pat)
            if item.body is not None:
                yield from walk(item.body)
        for redirect in node.redirects:
            yield from walk(redirect)
    elif isinstance(node, FuncDef):
        yield from walk(node.body)
