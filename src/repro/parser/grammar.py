"""Recursive-descent parser for the POSIX Shell Command Language.

Implements the grammar of POSIX.1-2017 XCU 2.10 over the tokens produced
by :mod:`repro.parser.lexer`.  ``parse(src)`` returns a
:class:`~repro.parser.ast_nodes.CommandList`.
"""

from __future__ import annotations

from typing import Optional

from .ast_nodes import (
    AndOr,
    Assign,
    BraceGroup,
    Case,
    CaseItem,
    Command,
    CommandList,
    DoubleQuoted,
    Escaped,
    For,
    FuncDef,
    If,
    Lit,
    ListItem,
    Pipeline,
    Redirect,
    SimpleCommand,
    SingleQuoted,
    Subshell,
    While,
    Word,
)
from .lexer import Lexer, ShellSyntaxError, Token, _PendingHeredoc, is_name

RESERVED = {
    "if", "then", "else", "elif", "fi", "do", "done",
    "case", "esac", "while", "until", "for", "in", "{", "}", "!",
}

REDIR_OPERATORS = {"<", ">", ">>", "<&", ">&", "<>", ">|", "<<", "<<-"}


def word_literal(word: Word) -> Optional[str]:
    """The literal string of a fully-unquoted single-Lit word, else None.

    Reserved words are only recognized when completely unquoted (POSIX
    2.10.2 rule 1 applies to the *token*, so ``"if"`` is not a keyword).
    """
    if len(word.parts) == 1 and isinstance(word.parts[0], Lit):
        return word.parts[0].text
    return None


def split_assignment(word: Word) -> Optional[tuple[str, Word]]:
    """If ``word`` has the shape ``name=value`` (with ``name=`` unquoted),
    return ``(name, value_word)``."""
    if not word.parts or not isinstance(word.parts[0], Lit):
        return None
    first = word.parts[0].text
    eq = first.find("=")
    if eq <= 0:
        return None
    name = first[:eq]
    if not is_name(name):
        return None
    rest_text = first[eq + 1 :]
    value_parts = list(word.parts[1:])
    if rest_text:
        value_parts.insert(0, Lit(rest_text))
    return name, Word(tuple(value_parts))


class Parser:
    """One-pass recursive-descent parser; not reusable across inputs."""

    def __init__(self, src: str, offset: int = 0):
        self.src = src
        #: id(node) -> (line, col), 1-based, for statement-level nodes.
        #: A side-table: the frozen AST nodes stay position-free so value
        #: equality and unparse round-trips are unaffected.
        self.positions: dict[int, tuple[int, int]] = {}
        self.lexer = Lexer(src, parse_command=_parse_substitution)
        self.lexer.pos = 0
        if offset:
            self.lexer._advance(offset)

    def _mark(self, node: Command, tok: Token) -> Command:
        if id(node) not in self.positions:
            nl = self.src.rfind("\n", 0, tok.pos)
            self.positions[id(node)] = (tok.line, tok.pos - nl)
        return node

    # -- token helpers --------------------------------------------------------

    def _peek(self) -> Token:
        return self.lexer.peek()

    def _next(self) -> Token:
        return self.lexer.next()

    def _error(self, msg: str, tok: Optional[Token] = None) -> ShellSyntaxError:
        tok = tok or self._peek()
        return ShellSyntaxError(msg, pos=tok.pos, line=tok.line)

    def _at_op(self, *ops: str) -> bool:
        tok = self._peek()
        return tok.kind == "OP" and tok.value in ops

    def _expect_op(self, op: str) -> Token:
        tok = self._peek()
        if tok.kind != "OP" or tok.value != op:
            raise self._error(f"expected {op!r}, found {self._describe(tok)}")
        return self._next()

    def _at_keyword(self, *names: str) -> Optional[str]:
        tok = self._peek()
        if tok.kind != "WORD":
            return None
        lit = word_literal(tok.word)
        return lit if lit in names else None

    def _expect_keyword(self, name: str) -> None:
        if self._at_keyword(name) is None:
            raise self._error(f"expected {name!r}, found {self._describe(self._peek())}")
        self._next()

    @staticmethod
    def _describe(tok: Token) -> str:
        if tok.kind == "WORD":
            lit = word_literal(tok.word)
            return repr(lit) if lit is not None else "word"
        if tok.kind == "EOF":
            return "end of input"
        if tok.kind == "NEWLINE":
            return "newline"
        return repr(tok.value)

    def _skip_newlines(self) -> None:
        while self._peek().kind == "NEWLINE":
            self._next()

    def _linebreak(self) -> None:
        self._skip_newlines()

    # -- entry points ---------------------------------------------------------

    def parse_program(self) -> CommandList:
        items: list[ListItem] = []
        self._skip_newlines()
        while self._peek().kind != "EOF":
            items.extend(self._parse_list_items(until_ops=()))
            self._skip_newlines()
        return CommandList(tuple(items))

    def parse_until(self, close_op: Optional[str]) -> tuple[Command, int]:
        """Parse a command list terminated by ``close_op`` (an operator such
        as ``)``) or EOF when None; consume the terminator.  Returns the
        parsed command and the source offset just past the terminator."""
        self._skip_newlines()
        items: list[ListItem] = []
        while True:
            tok = self._peek()
            if tok.kind == "EOF":
                if close_op is not None:
                    raise self._error(f"expected {close_op!r} before end of input")
                break
            if close_op is not None and tok.kind == "OP" and tok.value == close_op:
                self._next()
                break
            items.extend(self._parse_list_items(until_ops=(close_op,) if close_op else ()))
            self._skip_newlines()
        return CommandList(tuple(items)), self.lexer.pos

    # -- lists ---------------------------------------------------------------

    #: Reserved words that terminate an enclosing body; a command can never
    #: begin with one of these, so list parsing stops there.
    STOP_KEYWORDS = ("then", "else", "elif", "fi", "do", "done", "esac", "}")

    def _parse_list_items(self, until_ops: tuple) -> list[ListItem]:
        """Parse ``and_or ((';'|'&') and_or)*`` up to a newline/terminator."""
        items: list[ListItem] = []
        while True:
            cmd = self._parse_and_or()
            is_async = False
            separated = False
            if self._at_op("&"):
                self._next()
                is_async = True
                separated = True
            elif self._at_op(";"):
                self._next()
                separated = True
            items.append(ListItem(cmd, is_async))
            tok = self._peek()
            if tok.kind in ("EOF", "NEWLINE"):
                break
            if tok.kind == "OP" and (tok.value in until_ops or tok.value in (")", ";;")):
                break
            if tok.kind == "OP" and tok.value in ("&", ";"):
                raise self._error("unexpected separator")
            if not separated:
                raise self._error(f"expected separator, found {self._describe(tok)}")
            if self._at_keyword(*self.STOP_KEYWORDS):
                break
        return items

    def _parse_and_or(self) -> Command:
        start = self._peek()
        left = self._parse_pipeline()
        while self._at_op("&&", "||"):
            op = self._next().value
            self._linebreak()
            right = self._parse_pipeline()
            left = self._mark(AndOr(left, op, right), start)
        return left

    def _parse_pipeline(self) -> Command:
        start = self._peek()
        negated = False
        if self._at_keyword("!"):
            self._next()
            negated = True
        commands = [self._parse_command()]
        while self._at_op("|"):
            self._next()
            self._linebreak()
            commands.append(self._parse_command())
        if len(commands) == 1 and not negated:
            return commands[0]
        return self._mark(Pipeline(tuple(commands), negated=negated), start)

    # -- commands --------------------------------------------------------------

    def _parse_command(self) -> Command:
        start = self._peek()
        return self._mark(self._parse_command_inner(), start)

    def _parse_command_inner(self) -> Command:
        tok = self._peek()
        if tok.kind == "OP" and tok.value == "(":
            return self._parse_subshell()
        if tok.kind == "WORD":
            kw = word_literal(tok.word)
            if kw == "{":
                return self._parse_brace_group()
            if kw == "if":
                return self._parse_if()
            if kw in ("while", "until"):
                return self._parse_while(until=(kw == "until"))
            if kw == "for":
                return self._parse_for()
            if kw == "case":
                return self._parse_case()
            if kw in RESERVED and kw not in ("!", "in"):
                raise self._error(f"unexpected reserved word {kw!r}")
        return self._parse_simple_command()

    def _parse_redirect_suffix(self) -> tuple[Redirect, ...]:
        redirects = []
        while True:
            redirect = self._try_parse_redirect()
            if redirect is None:
                return tuple(redirects)
            redirects.append(redirect)

    def _try_parse_redirect(self) -> Optional[Redirect]:
        tok = self._peek()
        fd: Optional[int] = None
        if tok.kind == "IO_NUMBER":
            fd = int(tok.value)
            self._next()
            tok = self._peek()
            if tok.kind != "OP" or tok.value not in REDIR_OPERATORS:
                raise self._error("expected redirection operator after io-number")
        if tok.kind != "OP" or tok.value not in REDIR_OPERATORS:
            return None
        op = self._next().value
        target_tok = self._peek()
        if target_tok.kind != "WORD":
            raise self._error(f"expected word after {op!r}")
        self._next()
        target = target_tok.word
        if op in ("<<", "<<-"):
            return self._make_heredoc(op, target, fd)
        return Redirect(op, target, fd)

    def _make_heredoc(self, op: str, delim_word: Word, fd: Optional[int]) -> Redirect:
        quoted = not all(isinstance(p, Lit) for p in delim_word.parts)
        delim_text_parts: list[str] = []
        for part in delim_word.parts:
            if isinstance(part, Lit):
                delim_text_parts.append(part.text)
            elif isinstance(part, SingleQuoted):
                delim_text_parts.append(part.text)
            elif isinstance(part, Escaped):
                delim_text_parts.append(part.char)
            elif isinstance(part, DoubleQuoted):
                for q in part.parts:
                    if isinstance(q, Lit):
                        delim_text_parts.append(q.text)
                    elif isinstance(q, Escaped):
                        delim_text_parts.append(q.char)
                    else:
                        raise self._error("here-doc delimiter must be static")
            else:
                raise self._error("here-doc delimiter must be static")
        delimiter = "".join(delim_text_parts)
        box: dict = {}

        def resolve(body: Word) -> None:
            box["body"] = body

        self.lexer.push_heredoc(
            _PendingHeredoc(delimiter, quoted, op == "<<-", resolve)
        )
        # The body isn't read yet; we fix it up lazily via a mutable closure
        # captured by _HeredocProxy below.
        return _HeredocRedirect(op, delim_word, fd, box)

    # -- compound commands -------------------------------------------------------

    def _parse_subshell(self) -> Command:
        self._expect_op("(")
        body, __ = self._parse_compound_body(close_op=")")
        redirects = self._parse_redirect_suffix()
        return Subshell(body, redirects)

    def _parse_compound_body(self, close_op: Optional[str] = None, close_kw: Optional[str] = None):
        """Parse a command list until an operator or keyword terminator;
        consumes the terminator."""
        self._skip_newlines()
        items: list[ListItem] = []
        while True:
            tok = self._peek()
            if close_op is not None and tok.kind == "OP" and tok.value == close_op:
                self._next()
                return CommandList(tuple(items)), None
            if close_kw is not None and self._at_keyword(close_kw):
                self._next()
                return CommandList(tuple(items)), close_kw
            if tok.kind == "EOF":
                want = close_op or close_kw
                raise self._error(f"expected {want!r} before end of input")
            items.extend(self._parse_list_items(until_ops=(close_op,) if close_op else ()))
            self._skip_newlines()

    def _parse_body_until_keywords(self, *keywords: str):
        """Parse a command list until one of several keywords; consume it and
        return (body, keyword)."""
        self._skip_newlines()
        items: list[ListItem] = []
        while True:
            for kw in keywords:
                if self._at_keyword(kw):
                    self._next()
                    return CommandList(tuple(items)), kw
            if self._peek().kind == "EOF":
                raise self._error(f"expected one of {keywords} before end of input")
            items.extend(self._parse_list_items(until_ops=()))
            self._skip_newlines()

    def _parse_brace_group(self) -> Command:
        self._expect_keyword("{")
        body, __ = self._parse_body_until_keywords("}")
        redirects = self._parse_redirect_suffix()
        return BraceGroup(body, redirects)

    def _parse_if(self) -> Command:
        self._expect_keyword("if")
        cond, __ = self._parse_body_until_keywords("then")
        then_body, kw = self._parse_body_until_keywords("elif", "else", "fi")
        elifs: list[tuple[Command, Command]] = []
        else_body: Optional[Command] = None
        while kw == "elif":
            elif_cond, __ = self._parse_body_until_keywords("then")
            elif_body, kw = self._parse_body_until_keywords("elif", "else", "fi")
            elifs.append((elif_cond, elif_body))
        if kw == "else":
            else_body, kw = self._parse_body_until_keywords("fi")
        redirects = self._parse_redirect_suffix()
        return If(cond, then_body, tuple(elifs), else_body, redirects)

    def _parse_while(self, until: bool) -> Command:
        self._next()  # while/until
        cond, __ = self._parse_body_until_keywords("do")
        body, __ = self._parse_body_until_keywords("done")
        redirects = self._parse_redirect_suffix()
        return While(cond, body, until=until, redirects=redirects)

    def _parse_for(self) -> Command:
        self._expect_keyword("for")
        name_tok = self._peek()
        if name_tok.kind != "WORD":
            raise self._error("expected name after 'for'")
        name = word_literal(name_tok.word)
        if name is None or not is_name(name):
            raise self._error("bad for-loop variable name")
        self._next()
        self._skip_newlines()
        words: Optional[tuple[Word, ...]] = None
        if self._at_keyword("in"):
            self._next()
            collected: list[Word] = []
            while self._peek().kind == "WORD":
                collected.append(self._next().word)
            words = tuple(collected)
            if self._at_op(";"):
                self._next()
            elif self._peek().kind == "NEWLINE":
                self._skip_newlines()
            else:
                raise self._error("expected ';' or newline after for-words")
        elif self._at_op(";"):
            self._next()
        self._skip_newlines()
        self._expect_keyword("do")
        body, __ = self._parse_body_until_keywords("done")
        redirects = self._parse_redirect_suffix()
        return For(name, words, body, redirects)

    def _parse_case(self) -> Command:
        self._expect_keyword("case")
        subject_tok = self._peek()
        if subject_tok.kind != "WORD":
            raise self._error("expected word after 'case'")
        self._next()
        self._skip_newlines()
        self._expect_keyword("in")
        self._skip_newlines()
        items: list[CaseItem] = []
        while not self._at_keyword("esac"):
            if self._peek().kind == "EOF":
                raise self._error("expected 'esac' before end of input")
            if self._at_op("("):
                self._next()
            patterns = [self._read_pattern_word()]
            while self._at_op("|"):
                self._next()
                patterns.append(self._read_pattern_word())
            self._expect_op(")")
            self._skip_newlines()
            body: Optional[Command] = None
            if not self._at_op(";;") and not self._at_keyword("esac"):
                body_items: list[ListItem] = []
                while True:
                    tok = self._peek()
                    if tok.kind == "OP" and tok.value == ";;":
                        break
                    if self._at_keyword("esac"):
                        break
                    if tok.kind == "EOF":
                        raise self._error("expected ';;' or 'esac'")
                    body_items.extend(self._parse_list_items(until_ops=(";;",)))
                    self._skip_newlines()
                body = CommandList(tuple(body_items))
            if self._at_op(";;"):
                self._next()
            self._skip_newlines()
            items.append(CaseItem(tuple(patterns), body))
        self._expect_keyword("esac")
        redirects = self._parse_redirect_suffix()
        return Case(subject_tok.word, tuple(items), redirects)

    def _read_pattern_word(self) -> Word:
        tok = self._peek()
        if tok.kind != "WORD":
            raise self._error("expected case pattern")
        self._next()
        return tok.word

    # -- simple commands -----------------------------------------------------------

    def _parse_simple_command(self) -> Command:
        assigns: list[Assign] = []
        words: list[Word] = []
        redirects: list[Redirect] = []
        seen_command_word = False
        while True:
            redirect = self._try_parse_redirect()
            if redirect is not None:
                redirects.append(redirect)
                continue
            tok = self._peek()
            if tok.kind != "WORD":
                break
            if not seen_command_word:
                assignment = split_assignment(tok.word)
                if assignment is not None:
                    self._next()
                    assigns.append(Assign(*assignment))
                    continue
            self._next()
            # function definition: name ( ) body
            if (
                not seen_command_word
                and not assigns
                and not redirects
                and self._at_op("(")
            ):
                name = word_literal(tok.word)
                if name is not None and is_name(name) and name not in RESERVED:
                    self._next()  # (
                    self._expect_op(")")
                    self._skip_newlines()
                    body = self._parse_command()
                    # trailing redirects attach to the function body
                    extra = self._parse_redirect_suffix()
                    if extra:
                        body = _attach_redirects(body, extra)
                    return FuncDef(name, body)
            words.append(tok.word)
            seen_command_word = True
        if not assigns and not words and not redirects:
            raise self._error(f"expected a command, found {self._describe(self._peek())}")
        return SimpleCommand(tuple(assigns), tuple(words), tuple(redirects))


class _HeredocRedirect(Redirect):
    """A Redirect whose heredoc body is filled in after the next newline.

    The lexer resolves the body into ``box['body']``; we expose it through
    the ``heredoc`` attribute.  Instances otherwise behave as (and compare
    like) plain Redirects once resolved.
    """

    def __init__(self, op: str, target: Word, fd: Optional[int], box: dict):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "fd", fd)
        object.__setattr__(self, "_box", box)

    @property
    def heredoc(self) -> Optional[Word]:  # type: ignore[override]
        return self._box.get("body")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Redirect):
            return NotImplemented
        return (
            self.op == other.op
            and self.target == other.target
            and self.fd == other.fd
            and self.heredoc == other.heredoc
        )

    def __hash__(self) -> int:
        return hash((self.op, self.target, self.fd, self.heredoc))

    def __repr__(self) -> str:
        return (
            f"Redirect(op={self.op!r}, target={self.target!r}, fd={self.fd!r}, "
            f"heredoc={self.heredoc!r})"
        )


def _attach_redirects(cmd: Command, redirects: tuple[Redirect, ...]) -> Command:
    from dataclasses import replace

    if hasattr(cmd, "redirects"):
        return replace(cmd, redirects=tuple(cmd.redirects) + redirects)
    return Subshell(cmd, redirects)


def _parse_substitution(src: str, offset: int, close_op: Optional[str]):
    """Hook installed into the lexer: parse a $(...) / `...` body."""
    parser = Parser(src, offset)
    return parser.parse_until(close_op)


def parse(src: str) -> CommandList:
    """Parse a complete shell program into a :class:`CommandList`."""
    return Parser(src).parse_program()


def parse_with_positions(src: str):
    """Parse and also return the (line, col) side-table for statement
    nodes — the anchor source for ``jash check`` diagnostics.  Nodes
    inside ``$(...)`` bodies are parsed by nested parsers and carry no
    entry; consumers fall back to the innermost recorded ancestor."""
    parser = Parser(src)
    program = parser.parse_program()
    return program, parser.positions


def parse_one(src: str) -> Command:
    """Parse a program expected to contain exactly one command."""
    program = parse(src)
    if len(program.items) != 1:
        raise ShellSyntaxError(f"expected one command, found {len(program.items)}")
    item = program.items[0]
    if item.is_async:
        return program
    return item.command
