"""POSIX shell lexer.

Produces operator / word / newline tokens on demand.  Words are lexed with
their internal structure (quoting, parameter/command/arithmetic
substitution) already resolved into :mod:`repro.parser.ast_nodes` word
parts, which is how dash (and therefore libdash) structures its reader.

Here-documents are gathered when the newline that follows their redirection
operators is consumed, per POSIX XCU 2.7.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .ast_nodes import (
    ArithSub,
    CmdSub,
    DoubleQuoted,
    Escaped,
    Lit,
    Param,
    SingleQuoted,
    Word,
    WordPart,
)


class ShellSyntaxError(SyntaxError):
    """Raised on malformed shell input."""

    def __init__(self, message: str, pos: int = -1, line: int = -1):
        super().__init__(message)
        self.pos = pos
        self.line = line


#: Multi-character operators, longest first (POSIX token recognition rule 2/3).
OPERATORS = [
    "<<-", "<<", ">>", "<&", ">&", "<>", ">|",
    "&&", "||", ";;",
    "<", ">", "|", "&", ";", "(", ")",
]

OPERATOR_START = set("<>|&;()")

#: Characters that terminate an unquoted word.
WORD_TERMINATORS = set(" \t\n") | OPERATOR_START

SPECIAL_PARAMS = set("@*#?-$!0123456789")


def is_name(s: str) -> bool:
    """POSIX *name*: [A-Za-z_][A-Za-z0-9_]*."""
    if not s:
        return False
    if not (s[0].isalpha() or s[0] == "_"):
        return False
    return all(c.isalnum() or c == "_" for c in s[1:])


@dataclass
class Token:
    kind: str  # "WORD" | "OP" | "NEWLINE" | "EOF" | "IO_NUMBER"
    value: str = ""  # operator text, or io-number digits
    word: Optional[Word] = None
    pos: int = 0
    line: int = 1


@dataclass
class _PendingHeredoc:
    """A here-doc whose body must be read at the next newline."""

    delimiter: str
    quoted: bool  # delimiter contained quoting -> body is literal
    strip_tabs: bool  # <<- operator
    resolve: Callable[[Word], None]  # callback installing the body word


class Lexer:
    """On-demand tokenizer over a shell source string."""

    def __init__(self, src: str, parse_command: Optional[Callable] = None):
        """``parse_command`` parses a command substitution body: called with
        (source, offset) and returning (Command, new_offset).  The parser
        installs it; tests may lex without substitutions resolving."""
        self.src = src
        self.pos = 0
        self.line = 1
        self._peeked: Optional[Token] = None
        self._pending_heredocs: list[_PendingHeredoc] = []
        self._parse_command = parse_command

    # -- public interface ---------------------------------------------------

    def peek(self) -> Token:
        if self._peeked is None:
            self._peeked = self._lex()
        return self._peeked

    def next(self) -> Token:
        tok = self.peek()
        self._peeked = None
        if tok.kind == "NEWLINE":
            self._gather_heredocs()
        return tok

    def push_heredoc(self, pending: "_PendingHeredoc") -> None:
        self._pending_heredocs.append(pending)

    def at_eof(self) -> bool:
        return self.peek().kind == "EOF"

    # -- core scanning ------------------------------------------------------

    def _error(self, msg: str) -> ShellSyntaxError:
        return ShellSyntaxError(msg, pos=self.pos, line=self.line)

    def _advance(self, n: int = 1) -> None:
        self.line += self.src.count("\n", self.pos, self.pos + n)
        self.pos += n

    def _skip_blanks_and_comments(self) -> None:
        src, n = self.src, len(self.src)
        while self.pos < n:
            c = src[self.pos]
            if c in " \t":
                self.pos += 1
            elif c == "\\" and self.pos + 1 < n and src[self.pos + 1] == "\n":
                self._advance(2)  # line continuation
            elif c == "#":
                while self.pos < n and src[self.pos] != "\n":
                    self.pos += 1
            else:
                return

    def _lex(self) -> Token:
        self._skip_blanks_and_comments()
        start, line = self.pos, self.line
        if self.pos >= len(self.src):
            return Token("EOF", pos=start, line=line)
        c = self.src[self.pos]
        if c == "\n":
            self._advance()
            return Token("NEWLINE", "\n", pos=start, line=line)
        if c in OPERATOR_START:
            for op in OPERATORS:
                if self.src.startswith(op, self.pos):
                    self._advance(len(op))
                    return Token("OP", op, pos=start, line=line)
            raise self._error(f"unrecognized operator at {c!r}")
        # IO_NUMBER: digits directly followed by < or >
        if c.isdigit():
            j = self.pos
            while j < len(self.src) and self.src[j].isdigit():
                j += 1
            if j < len(self.src) and self.src[j] in "<>":
                digits = self.src[self.pos : j]
                self._advance(j - self.pos)
                return Token("IO_NUMBER", digits, pos=start, line=line)
        word = self._read_word()
        return Token("WORD", word=word, pos=start, line=line)

    # -- word reading -------------------------------------------------------

    def _read_word(self) -> Word:
        parts: list[WordPart] = []
        lit: list[str] = []

        def flush() -> None:
            if lit:
                parts.append(Lit("".join(lit)))
                lit.clear()

        src, n = self.src, len(self.src)
        while self.pos < n:
            c = src[self.pos]
            if c in WORD_TERMINATORS:
                break
            if c == "'":
                flush()
                parts.append(self._read_single_quoted())
            elif c == '"':
                flush()
                parts.append(self._read_double_quoted())
            elif c == "\\":
                if self.pos + 1 >= n:
                    raise self._error("trailing backslash")
                if src[self.pos + 1] == "\n":
                    self._advance(2)  # line continuation
                    continue
                flush()
                parts.append(Escaped(src[self.pos + 1]))
                self._advance(2)
            elif c == "$":
                flush()
                parts.append(self._read_dollar(in_dquotes=False))
            elif c == "`":
                flush()
                parts.append(self._read_backtick())
            else:
                lit.append(c)
                self._advance()
        flush()
        if not parts:
            raise self._error("empty word")
        return Word(tuple(parts))

    def _read_single_quoted(self) -> SingleQuoted:
        assert self.src[self.pos] == "'"
        end = self.src.find("'", self.pos + 1)
        if end < 0:
            raise self._error("unterminated single quote")
        text = self.src[self.pos + 1 : end]
        self._advance(end + 1 - self.pos)
        return SingleQuoted(text)

    def _read_double_quoted(self) -> DoubleQuoted:
        assert self.src[self.pos] == '"'
        self._advance()
        parts: list[WordPart] = []
        lit: list[str] = []

        def flush() -> None:
            if lit:
                parts.append(Lit("".join(lit)))
                lit.clear()

        src, n = self.src, len(self.src)
        while True:
            if self.pos >= n:
                raise self._error("unterminated double quote")
            c = src[self.pos]
            if c == '"':
                self._advance()
                break
            if c == "\\":
                if self.pos + 1 >= n:
                    raise self._error("unterminated double quote")
                nxt = src[self.pos + 1]
                if nxt == "\n":
                    self._advance(2)
                elif nxt in '$`"\\':
                    flush()
                    parts.append(Escaped(nxt))
                    self._advance(2)
                else:  # backslash stays literal inside dquotes
                    lit.append("\\")
                    self._advance()
            elif c == "$":
                flush()
                parts.append(self._read_dollar(in_dquotes=True))
            elif c == "`":
                flush()
                parts.append(self._read_backtick())
            else:
                lit.append(c)
                self._advance()
        flush()
        return DoubleQuoted(tuple(parts))

    # -- $ expansions ---------------------------------------------------------

    def _read_dollar(self, in_dquotes: bool) -> WordPart:
        assert self.src[self.pos] == "$"
        src, n = self.src, len(self.src)
        if self.pos + 1 >= n:
            self._advance()
            return Lit("$")
        nxt = src[self.pos + 1]
        if nxt == "(":
            if src.startswith("$((", self.pos):
                arith = self._try_read_arith()
                if arith is not None:
                    return arith
            return self._read_cmdsub_paren()
        if nxt == "{":
            return self._read_braced_param()
        if nxt in SPECIAL_PARAMS and not nxt.isdigit():
            self._advance(2)
            return Param(nxt)
        if nxt.isdigit():
            self._advance(2)
            return Param(nxt)
        if nxt.isalpha() or nxt == "_":
            j = self.pos + 1
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            name = src[self.pos + 1 : j]
            self._advance(j - self.pos)
            return Param(name)
        # lone $ is literal
        self._advance()
        return Lit("$")

    def _try_read_arith(self) -> Optional[ArithSub]:
        """Read ``$((expr))``.  Returns None when it is really ``$( (...)``
        (a command substitution containing a subshell): we detect that by
        scanning for the matching ``))`` with paren balancing; if the
        balance closes as a single ``)`` first, it was a cmdsub."""
        save_pos, save_line = self.pos, self.line
        self._advance(3)  # "$(("
        parts: list[WordPart] = []
        lit: list[str] = []

        def flush() -> None:
            if lit:
                parts.append(Lit("".join(lit)))
                lit.clear()

        depth = 0
        src, n = self.src, len(self.src)
        while self.pos < n:
            c = src[self.pos]
            if c == "(":
                depth += 1
                lit.append(c)
                self._advance()
            elif c == ")":
                if depth == 0:
                    if self.pos + 1 < n and src[self.pos + 1] == ")":
                        self._advance(2)
                        flush()
                        return ArithSub(tuple(parts))
                    # single close paren: it was $( (...) ...) -- back off
                    self.pos, self.line = save_pos, save_line
                    return None
                depth -= 1
                lit.append(c)
                self._advance()
            elif c == "$":
                flush()
                parts.append(self._read_dollar(in_dquotes=False))
            elif c == "`":
                flush()
                parts.append(self._read_backtick())
            elif c == "'":
                flush()
                parts.append(self._read_single_quoted())
            elif c == '"':
                flush()
                parts.append(self._read_double_quoted())
            elif c == "\\" and self.pos + 1 < n and src[self.pos + 1] == "\n":
                self._advance(2)
            else:
                lit.append(c)
                self._advance()
        raise self._error("unterminated arithmetic expansion")

    def _read_cmdsub_paren(self) -> CmdSub:
        if self._parse_command is None:
            raise self._error("command substitution requires a parser")
        self._advance(2)  # "$("
        command, new_pos = self._parse_command(self.src, self.pos, ")")
        self.line += self.src.count("\n", self.pos, new_pos)
        self.pos = new_pos
        return CmdSub(command)

    def _read_backtick(self) -> CmdSub:
        assert self.src[self.pos] == "`"
        self._advance()
        raw: list[str] = []
        src, n = self.src, len(self.src)
        while True:
            if self.pos >= n:
                raise self._error("unterminated backquote")
            c = src[self.pos]
            if c == "`":
                self._advance()
                break
            if c == "\\" and self.pos + 1 < n and src[self.pos + 1] in "$`\\":
                raw.append(src[self.pos + 1])
                self._advance(2)
            else:
                raw.append(c)
                self._advance()
        if self._parse_command is None:
            raise self._error("command substitution requires a parser")
        body = "".join(raw)
        command, end = self._parse_command(body, 0, None)
        if end < len(body):
            raise self._error("trailing characters in backquote substitution")
        return CmdSub(command, backtick=True)

    def _read_braced_param(self) -> Param:
        assert self.src.startswith("${", self.pos)
        self._advance(2)
        src, n = self.src, len(self.src)
        if self.pos < n and src[self.pos] == "#":
            # ${#x} length -- but ${#} is $# and ${#-} etc. are ops on '#'
            j = self.pos + 1
            if j < n and (src[j].isalnum() or src[j] == "_" or src[j] in "@*"):
                name = self._read_param_name(j)
                if self.pos < n and src[self.pos] == "}":
                    self._advance()
                    return Param(name, "length")
                raise self._error("bad ${#name} expansion")
        name_start = self.pos
        if self.pos < n and (src[self.pos] in SPECIAL_PARAMS and not src[self.pos].isalnum()):
            name = src[self.pos]
            self._advance()
        elif self.pos < n and src[self.pos].isdigit():
            j = self.pos
            while j < n and src[j].isdigit():
                j += 1
            name = src[self.pos : j]
            self._advance(j - self.pos)
        else:
            name = self._read_param_name(self.pos)
        if name_start == self.pos and not name:
            raise self._error("bad parameter expansion")
        if self.pos >= n:
            raise self._error("unterminated ${")
        c = src[self.pos]
        if c == "}":
            self._advance()
            return Param(name)
        # operator
        op = ""
        if c == ":":
            if self.pos + 1 >= n or src[self.pos + 1] not in "-=?+":
                raise self._error("bad ':' in parameter expansion")
            op = ":" + src[self.pos + 1]
            self._advance(2)
        elif c in "-=?+":
            op = c
            self._advance()
        elif c in "%#":
            if self.pos + 1 < n and src[self.pos + 1] == c:
                op = c * 2
                self._advance(2)
            else:
                op = c
                self._advance()
        else:
            raise self._error(f"bad parameter operator {c!r}")
        operand = self._read_param_operand()
        return Param(name, op, operand)

    def _read_param_name(self, start: int) -> str:
        src, n = self.src, len(self.src)
        j = start
        while j < n and (src[j].isalnum() or src[j] == "_"):
            j += 1
        name = src[start:j]
        if not is_name(name):
            raise self._error(f"bad parameter name {name!r}")
        self.line += src.count("\n", self.pos, j)
        self.pos = j
        return name

    def _read_param_operand(self) -> Word:
        """Read the word operand of ``${name<op>word}`` up to the matching
        unquoted ``}``."""
        parts: list[WordPart] = []
        lit: list[str] = []

        def flush() -> None:
            if lit:
                parts.append(Lit("".join(lit)))
                lit.clear()

        src, n = self.src, len(self.src)
        depth = 0
        while True:
            if self.pos >= n:
                raise self._error("unterminated ${...}")
            c = src[self.pos]
            if c == "}" and depth == 0:
                self._advance()
                break
            if c == "{":
                depth += 1
                lit.append(c)
                self._advance()
            elif c == "}":
                depth -= 1
                lit.append(c)
                self._advance()
            elif c == "'":
                flush()
                parts.append(self._read_single_quoted())
            elif c == '"':
                flush()
                parts.append(self._read_double_quoted())
            elif c == "\\":
                if self.pos + 1 >= n:
                    raise self._error("unterminated ${...}")
                if src[self.pos + 1] == "\n":
                    self._advance(2)
                    continue
                flush()
                parts.append(Escaped(src[self.pos + 1]))
                self._advance(2)
            elif c == "$":
                flush()
                parts.append(self._read_dollar(in_dquotes=False))
            elif c == "`":
                flush()
                parts.append(self._read_backtick())
            else:
                lit.append(c)
                self._advance()
        flush()
        return Word(tuple(parts))

    # -- here-documents -------------------------------------------------------

    def _gather_heredocs(self) -> None:
        while self._pending_heredocs:
            pending = self._pending_heredocs.pop(0)
            body = self._read_heredoc_body(pending)
            pending.resolve(body)

    def _read_heredoc_body(self, pending: _PendingHeredoc) -> Word:
        src, n = self.src, len(self.src)
        lines: list[str] = []
        while True:
            if self.pos >= n:
                raise self._error(f"here-document delimited by EOF (wanted {pending.delimiter!r})")
            eol = src.find("\n", self.pos)
            if eol < 0:
                eol = n
            line = src[self.pos : eol]
            self._advance(min(eol + 1, n) - self.pos)
            check = line.lstrip("\t") if pending.strip_tabs else line
            if check == pending.delimiter:
                break
            lines.append(line.lstrip("\t") if pending.strip_tabs else line)
        text = "".join(line + "\n" for line in lines)
        if pending.quoted:
            return Word((SingleQuoted(text),)) if text else Word((SingleQuoted(""),))
        return self._parse_heredoc_expansions(text)

    def _parse_heredoc_expansions(self, text: str) -> Word:
        """Here-doc bodies expand $, backticks, and backslash before
        ``$ \\` \\\\`` and newline -- like double quotes without the quotes."""
        sub = Lexer(text, parse_command=self._parse_command)
        parts: list[WordPart] = []
        lit: list[str] = []

        def flush() -> None:
            if lit:
                parts.append(Lit("".join(lit)))
                lit.clear()

        n = len(text)
        while sub.pos < n:
            c = text[sub.pos]
            if c == "\\":
                if sub.pos + 1 >= n:
                    lit.append("\\")
                    sub.pos += 1
                    continue
                nxt = text[sub.pos + 1]
                if nxt == "\n":
                    sub._advance(2)
                elif nxt in "$`\\":
                    flush()
                    parts.append(Escaped(nxt))
                    sub._advance(2)
                else:
                    lit.append("\\")
                    sub._advance()
            elif c == "$":
                flush()
                parts.append(sub._read_dollar(in_dquotes=True))
            elif c == "`":
                flush()
                parts.append(sub._read_backtick())
            else:
                lit.append(c)
                sub._advance()
        flush()
        if not parts:
            parts.append(Lit(""))
        return Word((DoubleQuoted(tuple(parts)),))
