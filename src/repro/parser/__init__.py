"""S1 — the libdash equivalent: POSIX shell parser and unparser.

Public API::

    from repro.parser import parse, parse_one, unparse
    ast = parse("cat f | sort | head -n1")
    src = unparse(ast)          # round-trips: parse(src) == ast
"""

from .ast_nodes import (
    AndOr,
    ArithSub,
    Assign,
    BraceGroup,
    Case,
    CaseItem,
    CmdSub,
    Command,
    CommandList,
    DoubleQuoted,
    Escaped,
    For,
    FuncDef,
    If,
    Lit,
    ListItem,
    Param,
    Pipeline,
    Redirect,
    SimpleCommand,
    SingleQuoted,
    Subshell,
    While,
    Word,
    walk,
)
from .grammar import (Parser, parse, parse_one, parse_with_positions,
                      split_assignment, word_literal)
from .lexer import Lexer, ShellSyntaxError, is_name
from .unparse import unparse, unparse_word

__all__ = [
    "AndOr", "ArithSub", "Assign", "BraceGroup", "Case", "CaseItem",
    "CmdSub", "Command", "CommandList", "DoubleQuoted", "Escaped", "For",
    "FuncDef", "If", "Lit", "ListItem", "Param", "Pipeline", "Redirect",
    "SimpleCommand", "SingleQuoted", "Subshell", "While", "Word", "walk",
    "Parser", "parse", "parse_one", "parse_with_positions",
    "split_assignment", "word_literal",
    "Lexer", "ShellSyntaxError", "is_name", "unparse", "unparse_word",
]
