"""Unparser: AST -> shell source that re-parses to an equal AST.

This is the other half of the libdash interface: PaSh-style tools parse a
script, rewrite the AST, and unparse the optimized program back to shell.
The invariant tested by the property suite is ``parse(unparse(t)) == t``.
"""

from __future__ import annotations

from .ast_nodes import (
    AndOr,
    ArithSub,
    Assign,
    BraceGroup,
    Case,
    CmdSub,
    Command,
    CommandList,
    DoubleQuoted,
    Escaped,
    For,
    FuncDef,
    If,
    Lit,
    Param,
    Pipeline,
    Redirect,
    SimpleCommand,
    SingleQuoted,
    Subshell,
    While,
    Word,
)

_DQ_ESCAPES = set('$`"\\')
#: Characters that must be escaped when emitted as an unquoted literal.
_UNQUOTED_SPECIALS = set(" \t\n|&;<>()$`\\\"'*?[]#~={}")


def unparse_word(word: Word) -> str:
    out: list[str] = []
    for part in word.parts:
        out.append(_unparse_part(part, in_dquotes=False))
    return "".join(out)


def _unparse_part(part, in_dquotes: bool) -> str:
    if isinstance(part, Lit):
        return part.text
    if isinstance(part, SingleQuoted):
        if "'" not in part.text:
            return "'" + part.text + "'"
        # a single quote cannot appear inside '...'; use the '\'' idiom
        # (re-parses as multiple parts with the same expansion)
        return "'" + part.text.replace("'", "'\\''") + "'"
    if isinstance(part, Escaped):
        if in_dquotes and part.char not in _DQ_ESCAPES:
            # inside dquotes only $ ` " \ may carry a backslash; re-quote
            return "\\" + part.char if part.char in _DQ_ESCAPES else part.char
        return "\\" + part.char
    if isinstance(part, DoubleQuoted):
        inner = "".join(_unparse_part(p, in_dquotes=True) for p in part.parts)
        return '"' + inner + '"'
    if isinstance(part, Param):
        return _unparse_param(part)
    if isinstance(part, CmdSub):
        inner = unparse(part.command)
        # a here-doc body inside the substitution must be terminated by a
        # newline before the closing paren
        close = "\n)" if "\n" in inner else ")"
        return "$(" + inner + close
    if isinstance(part, ArithSub):
        inner = "".join(_unparse_part(p, in_dquotes=False) for p in part.parts)
        return "$((" + inner + "))"
    raise TypeError(f"unknown word part {part!r}")


def _unparse_param(param: Param) -> str:
    if param.op == "length":
        return "${#" + param.name + "}"
    if param.op == "":
        # brace the common case defensively: $x followed by a letter would
        # change meaning, so always emit ${x} for named parameters.
        if len(param.name) == 1 and not (param.name.isalnum() or param.name == "_"):
            return "$" + param.name
        return "${" + param.name + "}"
    operand = unparse_word(param.word) if param.word is not None else ""
    return "${" + param.name + param.op + operand + "}"


def _unparse_redirect(redirect: Redirect) -> str:
    fd = "" if redirect.fd is None else str(redirect.fd)
    if redirect.op in ("<<", "<<-"):
        # Re-emit here-docs as quoted single-word redirections via printf is
        # invasive; instead emit the heredoc again with a fresh delimiter.
        return _unparse_heredoc(redirect, fd)
    return f"{fd}{redirect.op}{unparse_word(redirect.target)}"


def _unparse_heredoc(redirect: Redirect, fd: str) -> str:
    # Heredocs need their body placed after the next newline; the statement
    # unparser handles that via _HeredocCollector.  This function only emits
    # the operator part.
    return f"{fd}{redirect.op}{unparse_word(redirect.target)}"


class _Emitter:
    """Accumulates source text, deferring heredoc bodies to line ends."""

    def __init__(self) -> None:
        self.chunks: list[str] = []
        self.pending_heredocs: list[Redirect] = []

    def emit(self, text: str) -> None:
        self.chunks.append(text)

    def emit_redirect(self, redirect: Redirect) -> None:
        self.emit(" " + _unparse_redirect(redirect))
        if redirect.op in ("<<", "<<-"):
            self.pending_heredocs.append(redirect)

    def end_statement(self) -> None:
        """Flush pending here-document bodies (called before a newline)."""
        if not self.pending_heredocs:
            return
        pending, self.pending_heredocs = self.pending_heredocs, []
        for redirect in pending:
            delim = _heredoc_delimiter_text(redirect)
            body = _heredoc_body_text(redirect)
            self.emit("\n" + body + delim)
        # caller emits the newline separator itself

    def newline(self) -> None:
        self.end_statement()
        self.emit("\n")

    def result(self) -> str:
        self.end_statement()
        return "".join(self.chunks)


def _heredoc_delimiter_text(redirect: Redirect) -> str:
    word = redirect.target
    out = []
    for part in word.parts:
        if isinstance(part, Lit):
            out.append(part.text)
        elif isinstance(part, SingleQuoted):
            out.append(part.text)
        elif isinstance(part, Escaped):
            out.append(part.char)
        elif isinstance(part, DoubleQuoted):
            for q in part.parts:
                if isinstance(q, Lit):
                    out.append(q.text)
                elif isinstance(q, Escaped):
                    out.append(q.char)
    return "".join(out)


def _heredoc_body_text(redirect: Redirect) -> str:
    body = redirect.heredoc
    if body is None:
        return ""
    if len(body.parts) == 1 and isinstance(body.parts[0], SingleQuoted):
        return body.parts[0].text
    out: list[str] = []
    parts = body.parts
    if len(parts) == 1 and isinstance(parts[0], DoubleQuoted):
        parts = parts[0].parts
    for part in parts:
        if isinstance(part, Lit):
            out.append(part.text)
        elif isinstance(part, Escaped):
            out.append("\\" + part.char)
        else:
            out.append(_unparse_part(part, in_dquotes=True))
    return "".join(out)


def _unparse_into(cmd: Command, em: _Emitter) -> None:
    if isinstance(cmd, SimpleCommand):
        first = True
        for assign in cmd.assigns:
            em.emit(("" if first else " ") + assign.name + "=" + unparse_word(assign.word))
            first = False
        for word in cmd.words:
            em.emit(("" if first else " ") + unparse_word(word))
            first = False
        for redirect in cmd.redirects:
            if first:
                em.emit(_unparse_redirect(redirect).lstrip())
                if redirect.op in ("<<", "<<-"):
                    em.pending_heredocs.append(redirect)
                first = False
            else:
                em.emit_redirect(redirect)
        if first:
            em.emit(":")  # empty command cannot be expressed; use no-op
    elif isinstance(cmd, Pipeline):
        if cmd.negated:
            em.emit("! ")
        for i, sub in enumerate(cmd.commands):
            if i:
                em.emit(" | ")
            _unparse_into(sub, em)
    elif isinstance(cmd, AndOr):
        _unparse_into(cmd.left, em)
        em.emit(f" {cmd.op} ")
        _unparse_into(cmd.right, em)
    elif isinstance(cmd, CommandList):
        if not cmd.items:
            em.emit(":")
            return
        for i, item in enumerate(cmd.items):
            if i:
                em.emit(" ")
            _unparse_into(item.command, em)
            if item.is_async:
                em.emit(" &")
            elif i + 1 < len(cmd.items):
                em.emit(";")
        # trailing ';' omitted
    elif isinstance(cmd, Subshell):
        em.emit("(")
        _unparse_into(cmd.body, em)
        em.emit(")")
        for redirect in cmd.redirects:
            em.emit_redirect(redirect)
    elif isinstance(cmd, BraceGroup):
        em.emit("{ ")
        _unparse_into(cmd.body, em)
        em.emit("; }")
        for redirect in cmd.redirects:
            em.emit_redirect(redirect)
    elif isinstance(cmd, If):
        em.emit("if ")
        _unparse_into(cmd.cond, em)
        em.emit("; then ")
        _unparse_into(cmd.then_body, em)
        for econd, ebody in cmd.elifs:
            em.emit("; elif ")
            _unparse_into(econd, em)
            em.emit("; then ")
            _unparse_into(ebody, em)
        if cmd.else_body is not None:
            em.emit("; else ")
            _unparse_into(cmd.else_body, em)
        em.emit("; fi")
        for redirect in cmd.redirects:
            em.emit_redirect(redirect)
    elif isinstance(cmd, While):
        em.emit("until " if cmd.until else "while ")
        _unparse_into(cmd.cond, em)
        em.emit("; do ")
        _unparse_into(cmd.body, em)
        em.emit("; done")
        for redirect in cmd.redirects:
            em.emit_redirect(redirect)
    elif isinstance(cmd, For):
        em.emit(f"for {cmd.var}")
        if cmd.words is not None:
            em.emit(" in")
            for word in cmd.words:
                em.emit(" " + unparse_word(word))
        em.emit("; do ")
        _unparse_into(cmd.body, em)
        em.emit("; done")
        for redirect in cmd.redirects:
            em.emit_redirect(redirect)
    elif isinstance(cmd, Case):
        em.emit("case " + unparse_word(cmd.word) + " in ")
        for item in cmd.items:
            em.emit("(" + " | ".join(unparse_word(p) for p in item.patterns) + ") ")
            if item.body is not None:
                _unparse_into(item.body, em)
            em.emit(";; ")
        em.emit("esac")
        for redirect in cmd.redirects:
            em.emit_redirect(redirect)
    elif isinstance(cmd, FuncDef):
        em.emit(cmd.name + "() ")
        body = cmd.body
        if isinstance(body, (SimpleCommand, Pipeline, AndOr, CommandList)):
            em.emit("{ ")
            _unparse_into(body, em)
            em.emit("; }")
        else:
            _unparse_into(body, em)
    else:
        raise TypeError(f"unknown command node {cmd!r}")


def unparse(cmd: Command) -> str:
    """Render a command AST back to POSIX shell source."""
    em = _Emitter()
    if isinstance(cmd, CommandList):
        for i, item in enumerate(cmd.items):
            if i:
                em.newline()
            _unparse_into(item.command, em)
            if item.is_async:
                em.emit(" &")
        if not cmd.items:
            em.emit(":")
    else:
        _unparse_into(cmd, em)
    return em.result()
