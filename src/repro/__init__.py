"""repro — a reproduction of "Unix Shell Programming: The Next 50 Years"
(HotOS '21): the Jash JIT-optimizing shell stack.

The package builds, from scratch, every system the paper describes or
depends on:

====================  =====================================================
repro.parser          S1  libdash-equivalent POSIX parser/unparser
repro.semantics       S2  executable POSIX semantics + purity analysis
repro.vos             S3  virtual OS: discrete-event kernel, disks, pipes
repro.commands        S4  streaming coreutils with cost accounting
repro.annotations     S5  PaSh/POSH command specs + black-box inference
repro.dfg             S6  order-aware dataflow graphs
repro.compiler        S7/8/10  parallelizing rewrites, cost model, optimizer
repro.jit             S9  Jash: the JIT engine (the paper's proposal)
repro.incremental     S11 incremental re-execution framework
repro.distributed     S12 distributed fault-tolerant shell + POSH placement
repro.lint            S13 static checks, misuse guard, explain
repro.bench           S14 benchmark harness
repro.obs             S15 tracing, resource accounting, critical path
repro.supervise       S18 crash-consistent supervision: durable journal,
                          checkpointed restart, streaming ingestion
====================  =====================================================

Quickstart::

    from repro import Shell, JashOptimizer
    sh = Shell(optimizer=JashOptimizer())
    sh.fs.write_bytes("/in.txt", b"b\\na\\n")
    print(sh.run("sort /in.txt").out)
"""

from .compiler import PashConfig, PashOptimizer
from .distributed.retry import RetryPolicy
from .incremental import IncrementalOptimizer
from .jit import JashConfig, JashOptimizer
from .jit.composite import CompositeOptimizer
from .obs import Tracer
from .shell import RunResult, Shell, run_script
from .supervise import (
    CrashPoint,
    SimulatedCrash,
    SuperviseConfig,
    Supervisor,
    SyntheticSource,
)
from .vos.faults import FaultPlan, FaultSpec
from .vos.machines import (
    MachineSpec,
    PROFILES,
    aws_c5_2xlarge_gp2,
    aws_c5_2xlarge_gp3,
    laptop,
    profile,
    raspberry_pi,
    supercomputer_node,
)

__version__ = "0.1.0"

__all__ = [
    "PashConfig", "PashOptimizer", "IncrementalOptimizer", "JashConfig",
    "JashOptimizer", "CompositeOptimizer", "RunResult", "Shell",
    "run_script", "MachineSpec", "PROFILES", "aws_c5_2xlarge_gp2",
    "aws_c5_2xlarge_gp3", "laptop", "profile", "raspberry_pi",
    "supercomputer_node", "FaultPlan", "FaultSpec", "RetryPolicy",
    "Tracer", "CrashPoint", "SimulatedCrash", "SuperviseConfig",
    "Supervisor", "SyntheticSource", "__version__",
]
