"""The shipped specification library for the coreutils in repro.commands.

These are the hand-written annotations the paper describes ("written once
for each command ... similarly to manpages").  The inference engine
(:mod:`repro.annotations.inference`) can re-derive the parallelizability
classes by black-box testing.
"""

from __future__ import annotations

from typing import Optional

from .model import (
    AggKind,
    Aggregator,
    CommandSpec,
    InstanceSpec,
    ParClass,
    SpecLibrary,
)


def _flags_of(argv: list[str]) -> set[str]:
    """Single-letter flags present (clustered or not), stopping at '--'."""
    flags: set[str] = set()
    for arg in argv:
        if arg == "--":
            break
        if arg.startswith("-") and arg != "-" and len(arg) > 1 and not arg[1].isdigit():
            flags.update(arg[1:])
    return flags


def _operands_of(argv: list[str], value_flags: str = "") -> list[int]:
    """Indices of non-flag operands (skipping detached flag values)."""
    out: list[int] = []
    skip_next = False
    for i, arg in enumerate(argv):
        if skip_next:
            skip_next = False
            continue
        if arg == "--":
            out.extend(range(i + 1, len(argv)))
            break
        if arg.startswith("-") and arg != "-" and len(arg) > 1:
            body = arg[1:]
            if body and body[-1] in value_flags and len(body) == 1:
                skip_next = True
            continue
        out.append(i)
    return out


def build_default_library(strict_tr_squeeze: bool = False) -> SpecLibrary:
    """The shipped spec library.

    ``strict_tr_squeeze`` controls a known annotation subtlety that our
    own inference engine (T-infer) discovered: ``tr -s`` carries squeeze
    state across chunk boundaries, so chunk-local application can emit a
    spurious empty token when a chunk's first byte is in the squeezed
    set.  PaSh annotates tr as stateless anyway (the artifact requires
    lines beginning with separator-class bytes, which natural text lacks);
    the default follows PaSh.  With ``strict_tr_squeeze=True`` squeezing
    invocations are classified PARALLELIZABLE_PURE with a rerun
    aggregator — sound for runs that end at the tr, at the cost of not
    fusing the downstream sort into the parallel run.
    """
    lib = SpecLibrary()

    # -- cat: stateless, inputs are its operands -----------------------------
    def cat_rule(argv):
        ops = tuple(_operands_of(argv))
        return InstanceSpec(
            "cat", ParClass.STATELESS, Aggregator.concat(),
            input_operands=ops, reads_stdin=not ops, selectivity=1.0,
        )

    lib.register(CommandSpec("cat", [cat_rule]))

    # -- tr: stateless pure filter on stdin ----------------------------------
    def tr_rule(argv):
        operands = [argv[i] for i in _operands_of(argv)]
        # tr receives the two characters backslash-n and interprets the
        # escape itself, so check both spellings
        tokenizing = bool(operands) and ("\n" in operands[-1]
                                         or "\\n" in operands[-1])
        if strict_tr_squeeze and "s" in _flags_of(argv):
            return InstanceSpec(
                "tr", ParClass.PARALLELIZABLE_PURE,
                Aggregator(AggKind.RERUN, tuple(["tr"] + list(argv))),
                input_operands=(), selectivity=1.0, tokenizing=tokenizing,
            )
        return InstanceSpec(
            "tr", ParClass.STATELESS, Aggregator.concat(),
            input_operands=(), selectivity=1.0, tokenizing=tokenizing,
        )

    lib.register(CommandSpec("tr", [tr_rule]))

    # -- grep -------------------------------------------------------------------
    def grep_rule(argv):
        flags = _flags_of(argv)
        ops = _operands_of(argv, value_flags="em")
        # first operand is the pattern unless -e was used
        file_ops = tuple(ops[1:]) if "e" not in flags and ops else tuple(ops)
        if "m" in flags or "q" in flags or "l" in flags:
            return InstanceSpec("grep", ParClass.NON_PARALLELIZABLE,
                                input_operands=file_ops,
                                reads_stdin=not file_ops)
        if "c" in flags:
            return InstanceSpec(
                "grep", ParClass.PARALLELIZABLE_PURE,
                Aggregator(AggKind.SUM),
                input_operands=file_ops, reads_stdin=not file_ops,
                selectivity=0.001, blocking=True,
            )
        if "n" in flags:
            # line numbers depend on absolute position: offsets would be
            # needed to merge, so refuse
            return InstanceSpec("grep", ParClass.NON_PARALLELIZABLE,
                                input_operands=file_ops,
                                reads_stdin=not file_ops)
        return InstanceSpec(
            "grep", ParClass.STATELESS, Aggregator.concat(),
            input_operands=file_ops, reads_stdin=not file_ops,
            selectivity=0.5,
        )

    lib.register(CommandSpec("grep", [grep_rule]))

    # -- cut: stateless --------------------------------------------------------
    def cut_rule(argv):
        ops = tuple(_operands_of(argv, value_flags="cfd"))
        return InstanceSpec(
            "cut", ParClass.STATELESS, Aggregator.concat(),
            input_operands=ops, reads_stdin=not ops, selectivity=0.3,
            shrinks_lines=True,
        )

    lib.register(CommandSpec("cut", [cut_rule]))

    # -- sed: stateless for the supported script subset unless it quits ------
    def sed_rule(argv):
        flags = _flags_of(argv)
        ops = _operands_of(argv, value_flags="e")
        script = None
        for arg in argv:
            if arg.startswith("-"):
                continue
            script = arg
            break
        file_ops: tuple[int, ...] = tuple(ops[1:]) if script is not None and ops else ()
        if script is None or "q" in script.split(";"):
            return InstanceSpec("sed", ParClass.NON_PARALLELIZABLE,
                                input_operands=file_ops,
                                reads_stdin=not file_ops)
        return InstanceSpec(
            "sed", ParClass.STATELESS, Aggregator.concat(),
            input_operands=file_ops, reads_stdin=not file_ops,
        )

    lib.register(CommandSpec("sed", [sed_rule]))

    # -- sort: parallelizable-pure with sort -m aggregation ------------------
    def sort_rule(argv):
        flags = _flags_of(argv)
        if "m" in flags or "c" in flags or "o" in flags:
            # merge/check modes and -o output files: keep simple, refuse
            return InstanceSpec("sort", ParClass.NON_PARALLELIZABLE,
                                input_operands=tuple(_operands_of(argv, "kto")),
                                blocking=True)
        merge_flags = [f"-{c}" for c in "rnu" if c in flags]
        passthrough = []
        i = 0
        while i < len(argv):
            if argv[i] in ("-k", "-t"):
                passthrough.extend(argv[i : i + 2])
                i += 2
            else:
                i += 1
        ops = tuple(_operands_of(argv, value_flags="kto"))
        return InstanceSpec(
            "sort", ParClass.PARALLELIZABLE_PURE,
            Aggregator(AggKind.SORT_MERGE,
                       tuple(["sort", "-m"] + merge_flags + passthrough)),
            input_operands=ops, reads_stdin=not ops, blocking=True,
        )

    lib.register(CommandSpec("sort", [sort_rule]))

    # -- uniq --------------------------------------------------------------------
    def uniq_rule(argv):
        flags = _flags_of(argv)
        ops = tuple(_operands_of(argv))
        if flags & set("cdu"):
            # counting / filtering needs cross-chunk state at boundaries
            return InstanceSpec("uniq", ParClass.NON_PARALLELIZABLE,
                                input_operands=ops, reads_stdin=not ops)
        return InstanceSpec(
            "uniq", ParClass.PARALLELIZABLE_PURE,
            Aggregator(AggKind.RERUN, ("uniq",)),
            input_operands=ops, reads_stdin=not ops, selectivity=0.8,
        )

    lib.register(CommandSpec("uniq", [uniq_rule]))

    # -- wc ---------------------------------------------------------------------------
    def wc_rule(argv):
        ops = tuple(_operands_of(argv))
        if ops:
            # per-file labelled output: merging labels is not concat
            return InstanceSpec("wc", ParClass.NON_PARALLELIZABLE,
                                input_operands=ops, reads_stdin=False,
                                blocking=True, selectivity=0.0001)
        return InstanceSpec(
            "wc", ParClass.PARALLELIZABLE_PURE, Aggregator(AggKind.SUM),
            selectivity=0.0001, blocking=True,
        )

    lib.register(CommandSpec("wc", [wc_rule]))

    # -- order-dependent / prefix commands: never parallelizable -------------------
    for name, blocking in (("head", False), ("tail", True), ("tac", True),
                           ("nl", False), ("paste", False), ("shuf", True)):
        def make_rule(name=name, blocking=blocking):
            def rule(argv):
                ops = tuple(_operands_of(argv, value_flags="ncd"))
                return InstanceSpec(name, ParClass.NON_PARALLELIZABLE,
                                    input_operands=ops, reads_stdin=not ops,
                                    blocking=blocking,
                                    selectivity=0.01 if name in ("head", "tail") else 1.0)
            return rule
        lib.register(CommandSpec(name, [make_rule()]))

    # -- rev: stateless -------------------------------------------------------------
    def rev_rule(argv):
        ops = tuple(_operands_of(argv))
        return InstanceSpec("rev", ParClass.STATELESS, Aggregator.concat(),
                            input_operands=ops, reads_stdin=not ops)

    lib.register(CommandSpec("rev", [rev_rule]))

    # -- two-input set/relational commands -------------------------------------------
    def comm_rule(argv):
        ops = tuple(_operands_of(argv))
        return InstanceSpec("comm", ParClass.NON_PARALLELIZABLE,
                            input_operands=ops, reads_stdin=False)

    lib.register(CommandSpec("comm", [comm_rule]))

    def join_rule(argv):
        ops = tuple(_operands_of(argv, value_flags="t12"))
        return InstanceSpec("join", ParClass.NON_PARALLELIZABLE,
                            input_operands=ops, reads_stdin=False)

    lib.register(CommandSpec("join", [join_rule]))

    # -- awk: stateless iff the program is a pure per-record map -------------------
    def awk_rule(argv):
        from ..commands.awk_lite import program_is_stateless

        program = None
        i = 0
        while i < len(argv):
            arg = argv[i]
            if arg in ("-F", "-v"):
                i += 2
                continue
            if arg.startswith("-F") and len(arg) > 2:
                i += 1
                continue
            program = arg
            break
        operand_indices = tuple(
            j for j in _operands_of(argv, value_flags="Fv")
            if argv[j] != program
        )
        if program is not None and program_is_stateless(program):
            return InstanceSpec(
                "awk", ParClass.STATELESS, Aggregator.concat(),
                input_operands=operand_indices,
                reads_stdin=not operand_indices,
            )
        return InstanceSpec("awk", ParClass.NON_PARALLELIZABLE,
                            input_operands=operand_indices,
                            reads_stdin=not operand_indices)

    lib.register(CommandSpec("awk", [awk_rule]))

    # -- sources -----------------------------------------------------------------------
    def seq_rule(argv):
        return InstanceSpec("seq", ParClass.NON_PARALLELIZABLE,
                            reads_stdin=False)

    lib.register(CommandSpec("seq", [seq_rule]))

    def echo_rule(argv):
        return InstanceSpec("echo", ParClass.NON_PARALLELIZABLE,
                            reads_stdin=False, selectivity=0.0)

    lib.register(CommandSpec("echo", [echo_rule]))

    # -- side-effectful commands: excluded from dataflow ---------------------------------
    def tee_rule(argv):
        files = tuple(argv[i] for i in _operands_of(argv))
        return InstanceSpec("tee", ParClass.SIDE_EFFECTFUL,
                            output_files=files, pure=False)

    lib.register(CommandSpec("tee", [tee_rule]))

    for name in ("rm", "mv", "cp", "mkdir", "touch", "split", "xargs"):
        def make_se_rule(name=name):
            def rule(argv):
                return InstanceSpec(name, ParClass.SIDE_EFFECTFUL, pure=False)
            return rule
        lib.register(CommandSpec(name, [make_se_rule()]))

    return lib


#: the default library instance shared across the system
DEFAULT_LIBRARY = build_default_library()
