"""Black-box specification inference (§4 'Heuristic support').

"Formal methods techniques such as fuzz testing ... could (i) test that
a command conforms to its specification or even (ii) learn important
aspects of a command's specification by inspecting its behavior."

The inference engine runs a command on random inputs, re-runs it on
line-aligned chunks of the same input, and checks which aggregation of
the chunk outputs reproduces the whole-input output:

* ordered concatenation        -> STATELESS
* a known aggregator (sort -m, sum, rerun) -> PARALLELIZABLE_PURE
* none                          -> NON_PARALLELIZABLE
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..commands.base import lookup
from ..vos.handles import Collector, StringSource
from ..vos.kernel import Kernel, Node
from ..vos.devices import DiskSpec
from .model import AggKind, Aggregator, InstanceSpec, ParClass

_WORDS = (
    "alpha beta gamma delta epsilon zeta eta theta IOTA Kappa lambda mu "
    "nu xi omicron pi rho sigma tau upsilon phi chi psi omega 0 1 42 999 "
    "3.14 -7 foo bar baz qux"
).split()


def _fast_kernel() -> Kernel:
    """A kernel with effectively free IO: inference cares about outputs,
    not timing."""
    disk = DiskSpec(name="ram", throughput_bps=1e12, base_iops=1e9,
                    burst_iops=1e9)
    return Kernel(Node("infer", cores=8, cpu_speed=1e6, disk_spec=disk))


def run_filter(argv: list[str], stdin: bytes,
               files: Optional[dict[str, bytes]] = None) -> tuple[int, bytes]:
    """Run one registered command as a stdin->stdout filter on a private
    throwaway machine; returns (status, stdout)."""
    fn = lookup(argv[0])
    if fn is None:
        raise KeyError(f"unknown command {argv[0]!r}")
    kernel = _fast_kernel()
    for path, data in (files or {}).items():
        kernel.main_node.fs.write_bytes(path, data)
    out = Collector()
    err = Collector()

    def body(proc):
        status = yield from fn(proc, list(argv[1:]))
        return status if status is not None else 0

    proc = kernel.create_process(
        body, name=argv[0],
        fds={0: StringSource(stdin), 1: out, 2: err},
    )
    status = kernel.run_until_process_done(proc)
    return status, out.getvalue()


def random_input(rng: random.Random, lines: int = 60) -> bytes:
    """Adversarial random text: includes runs of duplicate lines (so
    boundary-sensitive commands like uniq are caught at chunk seams) and
    numeric-looking lines (so -n orderings are exercised)."""
    rows: list[str] = []
    while len(rows) < lines:
        n = rng.randint(1, 6)
        row = " ".join(rng.choice(_WORDS) for _ in range(n))
        rows.append(row)
        # duplicate runs: the classic chunk-boundary hazard
        while rng.random() < 0.35 and len(rows) < lines:
            rows.append(row)
    return ("\n".join(rows) + "\n").encode()


def split_lines(data: bytes, k: int) -> list[bytes]:
    lines = data.splitlines(keepends=True)
    chunk = max(1, len(lines) // k)
    out = []
    for i in range(0, len(lines), chunk):
        out.append(b"".join(lines[i : i + chunk]))
    return out[:k - 1] + [b"".join(out[k - 1 :])] if len(out) > k else out


@dataclass
class InferenceResult:
    name: str
    argv: list[str]
    par_class: ParClass
    aggregator: Optional[Aggregator] = None
    trials: int = 0
    evidence: list[str] = field(default_factory=list)

    def agrees_with(self, spec: InstanceSpec) -> bool:
        """Inference result consistent with a hand-written spec?  An
        inferred STATELESS for a spec'd PARALLELIZABLE_PURE counts as a
        disagreement; NON_PARALLELIZABLE inferred for a parallelizable
        spec is the dangerous direction."""
        return self.par_class is spec.par_class


#: candidate aggregators tried, most-specific first
def _candidate_aggregators(argv: list[str]) -> list[Aggregator]:
    name = argv[0]
    merge_flags = [a for a in argv[1:] if a.startswith("-")
                   and set(a[1:]) <= set("rnu")]
    candidates = [
        Aggregator(AggKind.SORT_MERGE, tuple(["sort", "-m"] + merge_flags)),
        Aggregator(AggKind.SUM),
        Aggregator(AggKind.RERUN, (name, *argv[1:])),
    ]
    return candidates


def _apply_aggregator(agg: Aggregator, chunk_outputs: list[bytes]) -> Optional[bytes]:
    if agg.kind is AggKind.CONCAT:
        return b"".join(chunk_outputs)
    if agg.kind is AggKind.SORT_MERGE:
        files = {f"/part{i}": data for i, data in enumerate(chunk_outputs)}
        status, out = run_filter(list(agg.argv) + sorted(files), b"", files)
        return out if status == 0 else None
    if agg.kind is AggKind.SUM:
        totals: list[int] = []
        for data in chunk_outputs:
            for line in data.splitlines():
                for i, fieldv in enumerate(line.split()):
                    try:
                        value = int(fieldv)
                    except ValueError:
                        return None
                    while len(totals) <= i:
                        totals.append(0)
                    totals[i] += value
        return (" ".join(str(t) for t in totals) + "\n").encode()
    if agg.kind is AggKind.RERUN:
        status, out = run_filter(list(agg.argv), b"".join(chunk_outputs))
        return out if status == 0 else None
    return None


def _outputs_equal(kind: AggKind, merged: bytes, whole: bytes) -> bool:
    if kind is AggKind.SUM:
        # whitespace-insensitive numeric comparison
        return merged.split() == whole.split()
    return merged == whole


def infer(argv: list[str], trials: int = 4, chunks: int = 3,
          seed: int = 1234) -> InferenceResult:
    """Infer the parallelizability class of a stdin->stdout invocation."""
    rng = random.Random(seed)
    name = argv[0]
    result = InferenceResult(name, list(argv), ParClass.STATELESS)
    stateless_ok = True
    agg_ok: dict[int, bool] = {}
    candidates = _candidate_aggregators(argv)
    for trial in range(trials):
        data = random_input(rng, lines=40 + 20 * trial)
        status, whole = run_filter(argv, data)
        if status not in (0, 1):
            result.par_class = ParClass.NON_PARALLELIZABLE
            result.evidence.append(f"trial {trial}: status {status}")
            result.trials = trial + 1
            return result
        chunk_outputs = []
        for chunk in split_lines(data, chunks):
            _st, out = run_filter(argv, chunk)
            chunk_outputs.append(out)
        if stateless_ok and b"".join(chunk_outputs) != whole:
            stateless_ok = False
            result.evidence.append(f"trial {trial}: concat mismatch")
        for i, agg in enumerate(candidates):
            if agg_ok.get(i, True):
                merged = _apply_aggregator(agg, chunk_outputs)
                ok = merged is not None and _outputs_equal(agg.kind, merged, whole)
                agg_ok[i] = agg_ok.get(i, True) and ok
    result.trials = trials
    if stateless_ok:
        result.par_class = ParClass.STATELESS
        result.aggregator = Aggregator.concat()
        result.evidence.append("concat reproduced whole-input output")
        return result
    for i, agg in enumerate(candidates):
        if agg_ok.get(i):
            result.par_class = ParClass.PARALLELIZABLE_PURE
            result.aggregator = agg
            result.evidence.append(f"aggregator {agg.kind.value} works")
            return result
    result.par_class = ParClass.NON_PARALLELIZABLE
    result.evidence.append("no candidate aggregator reproduced the output")
    return result


def validate_spec(argv: list[str], spec: InstanceSpec, trials: int = 4,
                  seed: int = 99) -> tuple[bool, str]:
    """Test that a command conforms to its hand-written specification
    (direction (i) of §4 Heuristic support): the spec's class must be
    *reproduced* by black-box testing."""
    inferred = infer(argv, trials=trials, seed=seed)
    if inferred.par_class is spec.par_class:
        return True, "inferred class matches spec"
    # a spec may be deliberately conservative: claiming less parallelism
    # than the command has is sound, the reverse is not
    order = {
        ParClass.STATELESS: 2,
        ParClass.PARALLELIZABLE_PURE: 1,
        ParClass.NON_PARALLELIZABLE: 0,
        ParClass.SIDE_EFFECTFUL: 0,
    }
    if order[spec.par_class] <= order[inferred.par_class]:
        return True, (f"spec is conservative: spec={spec.par_class.value}, "
                      f"inferred={inferred.par_class.value}")
    return False, (f"UNSOUND spec: claims {spec.par_class.value} but "
                   f"inference found {inferred.par_class.value}: "
                   f"{'; '.join(inferred.evidence)}")
