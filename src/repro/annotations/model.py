"""The command annotation model (E2: PaSh & POSH).

"PaSh and POSH both proposed annotation languages as a high-level
specification interface for dealing with the challenges of unknown
command behavior (B1). Specifications are written once for each command
... They can be aggregated in specification libraries which can be shared
between users."

A :class:`CommandSpec` classifies every *invocation* (name + argv) of a
command, because flags change behaviour: ``grep -c`` aggregates with SUM
where plain ``grep`` is stateless; ``head`` is never parallelizable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional


class ParClass(enum.Enum):
    """Parallelizability classes (the PaSh taxonomy)."""

    STATELESS = "stateless"
    """Line-independent pure function of each input line: any split of the
    input, processed independently, concatenated in order, is equivalent."""

    PARALLELIZABLE_PURE = "parallelizable_pure"
    """Pure, but requires a specific aggregator to merge partial outputs
    (e.g. sort -> sort -m, wc -l -> sum)."""

    NON_PARALLELIZABLE = "non_parallelizable"
    """Must see its entire input in order (head, tac, stateful sed)."""

    SIDE_EFFECTFUL = "side_effectful"
    """Writes state outside its declared outputs (rm, mv, tee to files);
    excluded from dataflow regions entirely."""


class AggKind(enum.Enum):
    CONCAT = "concat"          # ordered concatenation of partial outputs
    SORT_MERGE = "sort_merge"  # sort -m with the original sort's flags
    SUM = "sum"                # numeric columns added (wc, grep -c)
    RERUN = "rerun"            # re-apply the command to the concatenation
    CUSTOM = "custom"          # named custom merge function


@dataclass(frozen=True)
class Aggregator:
    kind: AggKind
    argv: tuple[str, ...] = ()  # e.g. ("sort", "-m", "-rn") or ("uniq",)

    @staticmethod
    def concat() -> "Aggregator":
        return Aggregator(AggKind.CONCAT)


@dataclass(frozen=True)
class InstanceSpec:
    """The specification of one concrete invocation."""

    name: str
    par_class: ParClass
    aggregator: Optional[Aggregator] = None
    #: operand indices (into argv-after-name) that are input files
    input_operands: tuple[int, ...] = ()
    reads_stdin: bool = True
    writes_stdout: bool = True
    #: output files (e.g. sort -o FILE, tee FILE)
    output_files: tuple[str, ...] = ()
    #: pure = touches only declared inputs/outputs (POSH offloading and
    #: the incremental engine require this)
    pure: bool = True
    #: rough output-size/input-size ratio for the cost model
    selectivity: float = 1.0
    #: does the command consume its whole input before emitting output?
    #: (sort does; grep doesn't) — drives pipeline-overlap cost modelling
    blocking: bool = False
    #: does the command re-tokenize its input into one token per line
    #: (tr ... '\n')?  Downstream stages then see token-sized lines, which
    #: matters for n·log n cost estimation.
    tokenizing: bool = False
    #: does selectivity shrink *line length* rather than line count
    #: (cut selects columns: every line survives, shorter)?  Drives the
    #: cost model's per-line accounting downstream.
    shrinks_lines: bool = False

    @property
    def parallelizable(self) -> bool:
        return self.par_class in (ParClass.STATELESS, ParClass.PARALLELIZABLE_PURE)


ClassifyFn = Callable[[list[str]], Optional[InstanceSpec]]


@dataclass
class CommandSpec:
    """A command's full annotation: classify(argv) -> InstanceSpec.

    ``rules`` are tried in order; the first one returning an InstanceSpec
    wins.  A final default rule should always match.
    """

    name: str
    rules: list[ClassifyFn] = field(default_factory=list)

    def classify(self, argv: list[str]) -> Optional[InstanceSpec]:
        for rule in self.rules:
            spec = rule(list(argv))
            if spec is not None:
                return spec
        return None


class SpecLibrary:
    """A shareable library of command specifications."""

    def __init__(self) -> None:
        self._specs: dict[str, CommandSpec] = {}

    def register(self, spec: CommandSpec) -> None:
        self._specs[spec.name] = spec

    def get(self, name: str) -> Optional[CommandSpec]:
        return self._specs.get(name)

    def classify(self, name: str, argv: list[str]) -> Optional[InstanceSpec]:
        """Spec for an invocation; None when the command is unknown —
        unknown commands make a region non-transformable (B1)."""
        spec = self._specs.get(name)
        if spec is None:
            return None
        return spec.classify(argv)

    def known_commands(self) -> list[str]:
        return sorted(self._specs)

    def pure_read_only_commands(self) -> frozenset[str]:
        """Commands that never write anything (usable in pure command
        substitutions, see repro.semantics.purity)."""
        out = set()
        for name, spec in self._specs.items():
            probe = spec.classify([])
            if probe is not None and probe.pure and not probe.output_files:
                out.add(name)
        return frozenset(out)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)
