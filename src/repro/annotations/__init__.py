"""S5 — the PaSh/POSH-style command specification framework."""

from .library import DEFAULT_LIBRARY, build_default_library
from .model import (
    AggKind,
    Aggregator,
    CommandSpec,
    InstanceSpec,
    ParClass,
    SpecLibrary,
)

__all__ = [
    "DEFAULT_LIBRARY", "build_default_library", "AggKind", "Aggregator",
    "CommandSpec", "InstanceSpec", "ParClass", "SpecLibrary",
]
