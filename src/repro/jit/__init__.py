"""S9/E3 — Jash: JIT-triggered, resource-aware shell optimization."""

from .engine import JashConfig, JashOptimizer, JitEvent
from .runtime_info import measure_input, probe_machine, region_input_files

__all__ = ["JashConfig", "JashOptimizer", "JitEvent",
           "measure_input", "probe_machine", "region_input_files"]
