"""Shared JIT front-end: candidate detection, purity checking, and sound
early expansion of pipeline nodes into dataflow regions.

Used by the Jash optimizer (S9) and the incremental engine (S11), both
of which are interpreter hooks that must first answer: *is this node a
dataflow region, and may I expand its words early?*
"""

from __future__ import annotations

from typing import Optional

# the candidate-shape and purity checks live in repro.analysis so the
# static analyzer and the JIT pre-screen can never diverge; re-exported
# here for the engine and the incremental hook
from ..analysis.candidates import pipeline_stages, purity_reason  # noqa: F401
from ..annotations.model import SpecLibrary
from ..dfg.from_ast import Region, region_from_argvs
from ..parser.ast_nodes import SimpleCommand
from ..semantics.expansion import expand_word_single, expand_words


def expand_region(interp, proc, stages: list[SimpleCommand],
                  library: SpecLibrary):
    """Early-expand a (purity-checked) pipeline into a Region.  This is a
    generator (command substitution would need the kernel — but purity
    checking has already excluded those)."""
    argvs: list[list[str]] = []
    stdin_file: Optional[str] = None
    stdout_file: Optional[str] = None
    for i, stage in enumerate(stages):
        argv = yield from expand_words(interp, proc, stage.words)
        if not argv:
            return None
        argvs.append(argv)
        for redirect in stage.redirects:
            target = yield from expand_word_single(interp, proc,
                                                   redirect.target)
            fd = redirect.default_fd()
            if redirect.op == "<" and fd == 0 and i == 0:
                stdin_file = target
            elif redirect.op in (">", ">|") and fd == 1 and i == len(stages) - 1:
                stdout_file = target
            else:
                return None
    return region_from_argvs(argvs, library, stdin_file, stdout_file)
