"""Shared JIT front-end: candidate detection, purity checking, and sound
early expansion of pipeline nodes into dataflow regions.

Used by the Jash optimizer (S9) and the incremental engine (S11), both
of which are interpreter hooks that must first answer: *is this node a
dataflow region, and may I expand its words early?*
"""

from __future__ import annotations

from typing import Optional

from ..annotations.model import SpecLibrary
from ..dfg.from_ast import Region, region_from_argvs
from ..parser.ast_nodes import Command, Pipeline, SimpleCommand
from ..semantics.expansion import expand_word_single, expand_words
from ..semantics.purity import check_word, check_words


def pipeline_stages(node: Command) -> Optional[list[SimpleCommand]]:
    """The simple-command stages of a flat pipeline; None when the node
    has shapes the dataflow fragment does not cover."""
    if isinstance(node, SimpleCommand):
        stages = [node]
    elif isinstance(node, Pipeline) and not node.negated:
        if not all(isinstance(c, SimpleCommand) for c in node.commands):
            return None
        stages = list(node.commands)
    else:
        return None
    for stage in stages:
        if stage.assigns:
            return None
        for redirect in stage.redirects:
            if redirect.op in ("<<", "<<-", "<&", ">&"):
                return None
    return stages


def purity_reason(stages: list[SimpleCommand], allow_pure_cmdsub: bool = False,
                  pure_commands: frozenset = frozenset()) -> Optional[str]:
    """Why early expansion would be unsound, or None when it is safe."""
    for stage in stages:
        report = check_words(stage.words, allow_pure_cmdsub, pure_commands)
        if not report.pure:
            return "; ".join(report.reasons)
        for redirect in stage.redirects:
            report = check_word(redirect.target, allow_pure_cmdsub,
                                pure_commands)
            if not report.pure:
                return "; ".join(report.reasons)
    return None


def expand_region(interp, proc, stages: list[SimpleCommand],
                  library: SpecLibrary):
    """Early-expand a (purity-checked) pipeline into a Region.  This is a
    generator (command substitution would need the kernel — but purity
    checking has already excluded those)."""
    argvs: list[list[str]] = []
    stdin_file: Optional[str] = None
    stdout_file: Optional[str] = None
    for i, stage in enumerate(stages):
        argv = yield from expand_words(interp, proc, stage.words)
        if not argv:
            return None
        argvs.append(argv)
        for redirect in stage.redirects:
            target = yield from expand_word_single(interp, proc,
                                                   redirect.target)
            fd = redirect.default_fd()
            if redirect.op == "<" and fd == 0 and i == 0:
                stdin_file = target
            elif redirect.op in (">", ">|") and fd == 1 and i == len(stages) - 1:
                stdout_file = target
            else:
                return None
    return region_from_argvs(argvs, library, stdin_file, stdout_file)
