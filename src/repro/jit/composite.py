"""Compose interpreter optimizer hooks: first hook that produces a plan
wins (e.g. incremental cache first, then Jash parallelization)."""

from __future__ import annotations


class CompositeOptimizer:
    def __init__(self, *hooks):
        self.hooks = [h for h in hooks if h is not None]

    def compile_program(self, program, tracer=None, now: float = 0.0,
                        metrics=None, fs=None, cwd: str = "/") -> None:
        """Forward the compile-once pass to hooks that preprocess."""
        for hook in self.hooks:
            if hasattr(hook, "compile_program"):
                hook.compile_program(program, tracer=tracer, now=now,
                                     metrics=metrics, fs=fs, cwd=cwd)

    def try_execute(self, interp, proc, node):
        for hook in self.hooks:
            result = yield from hook.try_execute(interp, proc, node)
            if result is not None:
                return result
        return None
