"""Runtime probing for the JIT (E3).

"By running just-in-time, the optimization subsystem has access to
crucial information regarding performance optimizations, e.g., file
sizes, mappings from filesystems to physical media, and system load."

All probes are stat-like metadata reads: they cost no simulated time,
exactly as a real stat/sysfs read is negligible next to the pipelines
being optimized.
"""

from __future__ import annotations

from typing import Optional

from ..compiler.cost import DiskProbe, Probe
from ..dfg.from_ast import Region
from ..vos.fs import normalize
from ..vos.process import Process

DEFAULT_AVG_LINE = 30.0
_SAMPLE_BYTES = 64 * 1024


def probe_machine(proc: Process, input_bytes: int,
                  avg_line_bytes: float = DEFAULT_AVG_LINE,
                  avg_token_bytes: float = 8.0,
                  observed=None) -> Probe:
    """``observed`` is a repro.obs.metrics.ObservedCosts built from the
    kernel's metrics registry — measured per-command CPU coefficients
    and dispatch rates the cost model prefers over its static table.
    None (the default, and always when ``profile_feedback`` is off)
    keeps the estimates bit-identical to the static model."""
    node = proc.node
    kernel = proc.kernel
    disk = node.disk
    disk._refill(kernel.now)
    runnable = sum(len(n.cpu_active) for n in kernel.nodes.values())
    return Probe(
        observed=observed,
        cores=node.cores,
        cpu_speed=node.cpu_speed,
        disk=DiskProbe(
            throughput_bps=disk.spec.throughput_bps,
            base_iops=disk.spec.base_iops,
            burst_iops=disk.spec.burst_iops,
            credits=disk.credits,
            request_bytes=disk.spec.request_bytes,
            min_request_bytes=disk.spec.min_request_bytes,
        ),
        input_bytes=input_bytes,
        avg_line_bytes=avg_line_bytes,
        avg_token_bytes=avg_token_bytes,
        runnable_load=max(0, runnable - 1),
    )


def region_input_files(region: Region, fs, cwd: str) -> Optional[list[str]]:
    """The region's input files, when its input is file-backed: the first
    stage's ``< file`` redirect or its file operands."""
    first = region.stages[0]
    paths: list[str] = []
    if first.stdin_file is not None:
        paths.append(first.stdin_file)
    elif first.spec.input_operands:
        args = first.argv[1:]
        for idx in first.spec.input_operands:
            if idx >= len(args) or args[idx] == "-":
                return None
            paths.append(args[idx])
    else:
        return None
    resolved = [normalize(p, cwd) for p in paths]
    if not all(fs.is_file(p) for p in resolved):
        return None
    return resolved


def measure_input(fs, paths: list[str]) -> tuple[int, float, float]:
    """(total bytes, avg line length, avg token length) sampled from the
    heads of the input files."""
    import re

    total = 0
    sample = b""
    for path in paths:
        total += fs.size(path)
        if len(sample) < _SAMPLE_BYTES:
            sample += fs.read_bytes(path)[: _SAMPLE_BYTES - len(sample)]
    if sample:
        lines = sample.count(b"\n")
        avg_line = len(sample) / max(1, lines)
        tokens = len(re.findall(rb"[A-Za-z0-9]+", sample))
        avg_token = len(sample) / max(1, tokens)
    else:
        avg_line = DEFAULT_AVG_LINE
        avg_token = 8.0
    return total, avg_line, avg_token
