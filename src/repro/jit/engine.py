"""Jash — 'Just a shell' (S9/E3): the paper's proposal.

"Jash inspects each shell command as it comes in to identify candidates
for rewriting. Since Jash works dynamically, it can take into account
current system conditions to decide whether to even try to apply
optimizations."

The engine is an interpreter hook (see
:meth:`repro.semantics.interp.Interpreter.exec`): for each pipeline or
simple command it

1. checks that expanding the words is **side-effect free** (the purity
   analysis over the Smoosh-style semantics — soundness);
2. expands words early with full runtime state (B2 made tractable);
3. classifies the stages against the annotation library (E2) into a
   dataflow region;
4. probes the machine (file sizes, disk burst credits, load);
5. asks the resource-aware optimizer for a plan, with a no-regression
   objective; and
6. either executes the transformed dataflow graph or *returns to the
   interpreter* ("switching back and forth between interpretation and
   optimization").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..annotations.library import DEFAULT_LIBRARY
from ..annotations.model import SpecLibrary
from ..compiler.driver import execute_plan, fs_file_sizes
from ..compiler.optimizer import Decision, OptimizerConfig, ResourceAwareOptimizer
from ..compiler.parallel import parallelize
from ..compiler.transactional import (
    DEFAULT_REGION_POLICY,
    RecoveryReport,
    execute_plan_transactional,
)
from ..distributed.retry import RetryPolicy
from ..parser.ast_nodes import Command
from ..parser.unparse import unparse
from .runtime_info import measure_input, probe_machine, region_input_files


@dataclass
class JitEvent:
    node_text: str
    decision: str  # "optimized" | "degraded" | "interpreted"
    reason: str
    plan_description: str = ""
    estimate_s: float = 0.0
    baseline_s: float = 0.0
    compile_overhead_s: float = 0.0
    #: fault-suspected attempts rolled back while executing this node
    fault_failures: int = 0
    #: the degradation trail under faults, e.g. "8 -> 4 -> interpreter"
    degraded: str = ""


@dataclass
class JashConfig:
    library: SpecLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    #: CPU seconds for the cheap pre-screen (purity walk + expansion +
    #: stat): charged on every candidate node
    probe_cost_s: float = 2e-5
    #: reduced pre-screen cost when a static SafetyCertificate already
    #: answered the purity question at compile time (expansion + stat
    #: remain; the walk is gone) — the compile-once dividend
    cert_probe_cost_s: float = 4e-6
    #: run the whole-script static analyzer (repro.analysis, S16) in
    #: ``compile_program`` and consult its certificates before the
    #: runtime purity walk; ``False`` restores pure-JIT behaviour
    #: (the ablation the analysis benchmark measures)
    static_analysis: bool = True
    #: CPU seconds for a full compilation (region lowering + cost-model
    #: search): charged only once the pre-screen says it may pay off —
    #: "Jash can determine in the moment whether it is even worth trying
    #: to optimize on small inputs" (§3.2)
    compile_cost_s: float = 0.0008
    #: trust read-only command substitutions during purity analysis
    allow_pure_cmdsub: bool = False
    #: execute plans transactionally (staged output, rollback + retry on
    #: injected faults, width degradation).  A no-op unless a FaultPlan
    #: is installed on the kernel.
    transactional: bool = True
    #: per-width retry policy for transactional execution
    retry: RetryPolicy = DEFAULT_REGION_POLICY
    #: feed measured per-command costs from the kernel's metrics
    #: registry (repro.obs.metrics) into the cost model in place of the
    #: static estimates.  Off by default; with the flag off — or on but
    #: with no registry installed — every decision is bit-identical to
    #: the estimate-only engine (test-enforced).
    profile_feedback: bool = False
    #: run the S20 abstract interpreter (repro.analysis.absint) inside
    #: ``compile_program``: dead regions get no certificate (they never
    #: run; a wrong fact just means a cert miss and the identical
    #: runtime decision) and loops/regions gain CostCertificates.
    #: Decisions are bit-identical on or off when no dead code exists
    #: (test-enforced, the same discipline as ``static_analysis``).
    value_flow: bool = True
    #: consult static CostCertificate volume bounds (the analyzer must
    #: have seen the filesystem) as the cost model's input-size fallback
    #: when a region's input is not file-backed.  Off by default: any
    #: flag that can change a decision ships dark, like
    #: ``profile_feedback``.
    static_cost_hints: bool = False


class JashOptimizer:
    """The JIT engine installed as the interpreter's optimizer hook."""

    def __init__(self, config: Optional[JashConfig] = None):
        self.config = config or JashConfig()
        self.optimizer = ResourceAwareOptimizer(self.config.optimizer)
        self.events: list[JitEvent] = []
        self._pure_commands = self.config.library.pure_read_only_commands()
        #: static analysis state (repro.analysis): certificates keyed by
        #: AST node identity, filled by :meth:`compile_program`
        self._analysis = None
        self._certs: dict[int, object] = {}
        #: S20 facts from compile_program: provably-dead node ids and
        #: quantitative CostCertificates, keyed like the safety certs
        self._dead: set[int] = set()
        self._cost_certs: dict[int, object] = {}
        self._programs: list = []  # keep analyzed ASTs alive (id-keyed certs)
        self.cert_hits = 0
        self.cert_misses = 0

    # -- the compile-once pass ------------------------------------------------

    def compile_program(self, program: Command, tracer=None, now: float = 0.0,
                        metrics=None, fs=None, cwd: str = "/"):
        """Run the S16 whole-script analyzer and cache its certificates.

        Called by :class:`repro.shell.Shell` before execution (the same
        hook the AOT compiler uses).  With ``static_analysis=False``
        this is a no-op and the engine behaves exactly as the pure JIT.
        ``metrics``/``fs`` are optional: a metrics registry receives the
        ``analysis.absint.*`` counters, and a filesystem snapshot
        grounds the S20 volume domain.
        """
        if not self.config.static_analysis:
            return
        from ..analysis import analyze_program

        result = analyze_program(
            program, self.config.library,
            allow_pure_cmdsub=self.config.allow_pure_cmdsub,
            pure_commands=self._pure_commands,
            value_flow=self.config.value_flow, fs=fs, cwd=cwd)
        self._analysis = result
        self._certs.update(result.certificates)
        if result.absint is not None:
            self._dead |= result.absint.dead
            self._cost_certs.update(result.absint.cost_certificates)
        self._programs.append(program)
        if tracer is not None:
            tracer.instant("analysis", "analysis.run", now,
                           **result.stats())
            if result.absint is not None:
                tracer.span("analysis", "analysis.absint", now, now,
                            **result.absint.stats())
        if metrics is not None and result.absint is not None:
            stats = result.absint.stats()
            metrics.counter("analysis.absint.nodes").inc(
                stats["absint_nodes"])
            metrics.counter("analysis.absint.widenings").inc(
                stats["absint_widenings"])
            metrics.counter("analysis.absint.dead_branches").inc(
                stats["dead_branches"])
            metrics.counter("analysis.absint.certs").inc(
                stats["cost_certs"])

    # -- the hook -------------------------------------------------------------

    def try_execute(self, interp, proc, node: Command):
        from .frontend import expand_region, pipeline_stages, purity_reason

        kernel = proc.kernel
        tracer = getattr(kernel, "tracer", None)
        metrics = getattr(kernel, "metrics", None)
        text = unparse(node)
        stages_ast = pipeline_stages(node)
        if stages_ast is None:
            self._skip(text, "not a flat pipeline of simple commands",
                       tracer=tracer, proc=proc)
            return None
            yield  # pragma: no cover - generator shape

        # 1. soundness: early expansion must be side-effect free.  The
        # static certificate answers this without a runtime walk; only a
        # miss (a node the compile-once pass never saw, e.g. parsed at
        # run time by trap/eval) falls back to the purity analysis.
        probe_cost = self.config.probe_cost_s
        cert = self._certs.get(id(node))
        if cert is not None:
            self.cert_hits += 1
            if metrics is not None:
                metrics.counter("jit.cert_hits").inc()
            if tracer is not None:
                tracer.instant("jit", "jit.cert_hit", kernel.now, proc,
                               command=text, verdict=cert.verdict)
            if not cert.safe:
                self._skip(text, f"unsafe early expansion: {cert.reason} "
                                 f"[static certificate {cert.digest}]",
                           tracer=tracer, proc=proc)
                return None
            probe_cost = self.config.cert_probe_cost_s
        else:
            if self._analysis is not None:
                self.cert_misses += 1
                if metrics is not None:
                    metrics.counter("jit.cert_misses").inc()
                if tracer is not None:
                    tracer.instant("jit", "jit.cert_miss", kernel.now, proc,
                                   command=text)
            impure_reason = purity_reason(stages_ast,
                                          self.config.allow_pure_cmdsub,
                                          self._pure_commands)
            if impure_reason is not None:
                self._skip(text, f"unsafe early expansion: {impure_reason}",
                           tracer=tracer, proc=proc)
                return None

        # S20 static volume hint: when the abstract interpreter bounded
        # this region's input volume below the optimization threshold,
        # the dynamic probe can only confirm what is already known —
        # skip before paying for expansion.  Gated behind
        # static_cost_hints because the bound comes from the
        # compile-time filesystem snapshot and can go stale.
        if self.config.static_cost_hints:
            ccert = self._cost_certs.get(id(node))
            if (ccert is not None and ccert.verify()
                    and ccert.bytes_hi is not None
                    and ccert.bytes_hi < self.config.optimizer.min_input_bytes):
                self._skip(text,
                           f"static volume bound {ccert.bytes_hi}B below "
                           f"optimization threshold "
                           f"[cost certificate {ccert.digest}]",
                           tracer=tracer, proc=proc)
                return None

        compile_start = kernel.now
        # charge the cheap pre-screen (expansion + stat; the purity walk
        # only when no certificate covered it)
        yield from proc.cpu(probe_cost)

        # 2. early expansion with full runtime information
        region = yield from expand_region(interp, proc, stages_ast,
                                          self.config.library)
        if region is None:
            self._skip(text, "stages not classifiable as a dataflow region",
                       tracer=tracer, proc=proc)
            return None
        if not region.parallelizable:
            self._skip(text, "no parallelizable stage",
                       tracer=tracer, proc=proc)
            return None

        # 3./4. probe the system
        input_files = region_input_files(region, proc.fs, interp.state.cwd)
        if input_files is None:
            self._skip(text, "input is not file-backed (size unknown)",
                       tracer=tracer, proc=proc)
            return None
        input_bytes, avg_line, avg_token = measure_input(proc.fs, input_files)
        if input_bytes < self.config.optimizer.min_input_bytes:
            self._skip(text, "input below optimization threshold",
                       tracer=tracer, proc=proc)
            return None
        observed = None
        if self.config.profile_feedback:
            from ..obs.metrics import ObservedCosts

            observed = ObservedCosts.from_registry(
                getattr(kernel, "metrics", None))
        probe = probe_machine(proc, input_bytes, avg_line, avg_token,
                              observed=observed)
        # the pre-screen passed: pay for a full compilation
        yield from proc.cpu(self.config.compile_cost_s)

        # 5. cost-based decision, no-regression objective
        file_sizes = fs_file_sizes(proc.fs, interp.state.cwd)
        decision: Decision = self.optimizer.choose(region, probe, file_sizes)
        if metrics is not None:
            metrics.counter("jit.compiles").inc()
            metrics.counter(
                "jit.decisions",
                decision="optimized" if decision.transformed
                else "declined").inc()
        if tracer is not None:
            extra = {"feedback": True} if observed is not None else {}
            tracer.span("jit", "jit.compile", compile_start, kernel.now, proc,
                        command=text, transformed=decision.transformed,
                        width=decision.plan.width if decision.transformed else 1,
                        input_bytes=input_bytes, reason=decision.reason,
                        estimate_s=round(decision.estimate.seconds, 6),
                        baseline_s=round(decision.baseline.seconds, 6),
                        **extra)
        if not decision.transformed:
            self._skip(text, decision.reason,
                       baseline=decision.baseline.seconds,
                       tracer=tracer, proc=proc)
            return None

        # 6. execute the dataflow plan
        exec_start = kernel.now
        snapshot = tracer.region_begin() if tracer is not None else None
        if not self.config.transactional:
            status = yield from execute_plan(decision.plan, proc,
                                             cwd=interp.state.cwd)
            if tracer is not None:
                tracer.region_end(
                    "jit", "jit.region", exec_start, kernel.now, snapshot,
                    proc, command=text, decision="optimized",
                    width=decision.plan.width, mode=decision.plan.mode,
                    status=status)
            self.events.append(JitEvent(
                text, "optimized", decision.reason,
                decision.plan.description,
                estimate_s=decision.estimate.seconds,
                baseline_s=decision.baseline.seconds,
                compile_overhead_s=self.config.compile_cost_s,
            ))
            return status

        # transactional execution with graceful degradation: retry the
        # plan under the retry policy; if it keeps faulting, rebuild at
        # half the width; at width < 2, return to interpretation (sound:
        # the purity gate admitted the region, and every failed attempt
        # was rolled back)
        report = RecoveryReport()
        plan = decision.plan
        width = plan.width
        widths_tried = [width]
        while True:
            rung = RecoveryReport()
            status = yield from execute_plan_transactional(
                plan, proc, cwd=interp.state.cwd,
                policy=self.config.retry, report=rung)
            report.merge(rung)
            if not rung.gave_up:
                break
            if metrics is not None:
                metrics.counter("jit.degrade_steps").inc()
            next_plan = None
            next_width = width // 2
            while next_width >= 2 and next_plan is None:
                next_plan = parallelize(region, next_width, plan.mode,
                                        file_sizes=file_sizes,
                                        eager=plan.eager)
                if next_plan is None:
                    next_width //= 2
            if next_plan is None:
                trail = " -> ".join(str(w) for w in widths_tried)
                if tracer is not None:
                    tracer.instant("jit", "jit.degrade", kernel.now, proc,
                                   command=text, from_width=width,
                                   to="interpreter",
                                   fault_failures=report.fault_failures)
                    tracer.region_end(
                        "jit", "jit.region", exec_start, kernel.now, snapshot,
                        proc, command=text, decision="interpreted",
                        width=decision.plan.width,
                        fault_failures=report.fault_failures,
                        degraded=f"{trail} -> interpreter")
                self.events.append(JitEvent(
                    text, "interpreted",
                    f"degraded to interpreter after {report.fault_failures} "
                    f"fault-suspected attempts",
                    baseline_s=decision.baseline.seconds,
                    fault_failures=report.fault_failures,
                    degraded=f"{trail} -> interpreter",
                ))
                return None
            if tracer is not None:
                tracer.instant("jit", "jit.degrade", kernel.now, proc,
                               command=text, from_width=width,
                               to=next_width,
                               fault_failures=rung.fault_failures)
            plan = next_plan
            width = next_width
            widths_tried.append(width)

        degraded = (" -> ".join(str(w) for w in widths_tried)
                    if len(widths_tried) > 1 else "")
        if tracer is not None:
            tracer.region_end(
                "jit", "jit.region", exec_start, kernel.now, snapshot,
                proc, command=text,
                decision="degraded" if report.fault_failures else "optimized",
                width=plan.width, mode=plan.mode, status=status,
                fault_failures=report.fault_failures, degraded=degraded)
        self.events.append(JitEvent(
            text,
            "degraded" if report.fault_failures else "optimized",
            decision.reason,
            plan.description,
            estimate_s=decision.estimate.seconds,
            baseline_s=decision.baseline.seconds,
            compile_overhead_s=self.config.compile_cost_s,
            fault_failures=report.fault_failures,
            degraded=degraded,
        ))
        return status

    # -- helpers ------------------------------------------------------------------

    def _skip(self, text: str, reason: str, baseline: float = 0.0,
              tracer=None, proc=None) -> None:
        self.events.append(JitEvent(text, "interpreted", reason,
                                    baseline_s=baseline))
        if proc is not None:
            metrics = getattr(proc.kernel, "metrics", None)
            if metrics is not None:
                metrics.counter("jit.decisions", decision="interpreted").inc()
        if tracer is not None and proc is not None:
            tracer.instant("jit", "jit.skip", proc.kernel.now, proc,
                           command=text, reason=reason)

    # -- reporting --------------------------------------------------------------------

    @property
    def optimized_count(self) -> int:
        return sum(1 for e in self.events
                   if e.decision in ("optimized", "degraded"))

    @property
    def cert_hit_rate(self) -> float:
        """Fraction of candidate lookups answered by a static
        certificate (0.0 when the analyzer never ran)."""
        total = self.cert_hits + self.cert_misses
        return self.cert_hits / total if total else 0.0

    @property
    def degraded_count(self) -> int:
        return sum(1 for e in self.events if e.decision == "degraded"
                   or (e.decision == "interpreted" and e.degraded))

    def report(self) -> str:
        lines = []
        if self._analysis is not None:
            lines.append(
                f"[static analysis] {self.cert_hits} certificate hits, "
                f"{self.cert_misses} misses "
                f"(hit rate {self.cert_hit_rate:.0%})")
        for event in self.events:
            lines.append(f"[{event.decision:>11}] {event.node_text}")
            lines.append(f"              {event.reason}")
            if event.plan_description:
                lines.append(f"              plan: {event.plan_description}")
            if event.degraded:
                lines.append(f"              degraded: {event.degraded} "
                             f"({event.fault_failures} faulted attempts)")
        return "\n".join(lines)
