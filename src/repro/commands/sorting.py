"""Ordering commands: sort, uniq, comm, join, shuf, seq.

``sort`` is the paper's flagship expensive stage (Figure 1 sorts the
words of a 3 GB file) and carries an n·log n comparison cost on top of
per-byte handling.  ``sort -m`` (merge of pre-sorted inputs) is the
aggregator the parallelizing compiler uses.
"""

from __future__ import annotations

import math
import random
import re
from itertools import groupby

from ..vos.process import CHUNK, Process
from .base import (
    LineStream,
    OutBuf,
    SORT_CMP_COST,
    UsageError,
    command,
    cpu_coeff,
    open_input,
    parse_flags,
    write_err,
)


def _numeric_key(body: bytes) -> float:
    """POSIX sort -n: leading numeric value, 0 when none."""
    text = body.lstrip()
    i = 0
    if i < len(text) and text[i : i + 1] in (b"-", b"+"):
        i += 1
    j = i
    while j < len(text) and (text[j : j + 1].isdigit() or text[j : j + 1] == b"."):
        j += 1
    try:
        return float(text[:j] or b"0")
    except ValueError:
        return 0.0


_KEY_SPEC = re.compile(r"^(\d+)(?:,(\d+))?$")


def parse_key_spec(raw: str) -> tuple[int, int | None]:
    """Parse a -k KEYDEF.  Only the ``N[,M]`` form is supported; char
    offsets (``N.C``) and per-key modifier letters (``-k2n``) raise a
    loud UsageError instead of silently misbehaving."""
    m = _KEY_SPEC.match(str(raw))
    if m is None:
        raise UsageError(
            f"unsupported key spec -k {raw!r} (only -k N[,M] is supported)")
    start = int(m.group(1))
    end = int(m.group(2)) if m.group(2) else None
    if start < 1 or (end is not None and end < start):
        raise UsageError(f"invalid key spec -k {raw!r}")
    return start, end


def _ws_field_starts(body: bytes) -> list[int]:
    """Byte offsets where each whitespace-delimited field starts.  GNU
    semantics: a field *includes* its leading blanks, so field k+1 starts
    right where field k's non-blank run ends."""
    starts = [0]
    i, n = 0, len(body)
    while True:
        while i < n and body[i : i + 1] in (b" ", b"\t"):
            i += 1
        while i < n and body[i : i + 1] not in (b" ", b"\t"):
            i += 1
        if i >= n:
            break
        starts.append(i)
    return starts


def _key_slice(body: bytes, start_field: int, end_field: int | None,
               delim: bytes | None) -> bytes:
    """The portion of ``body`` a -k N[,M] key compares: from the start of
    field N to the end of field M (end of line when M is omitted)."""
    if delim:
        fields = body.split(delim)
        if start_field - 1 >= len(fields):
            return b""
        return delim.join(fields[start_field - 1 : end_field])
    starts = _ws_field_starts(body)
    if start_field - 1 >= len(starts):
        return b""
    lo = starts[start_field - 1]
    hi = starts[end_field] if (end_field is not None
                               and end_field < len(starts)) else len(body)
    return body[lo:hi]


def make_sort_key(numeric: bool, key_field: int | None, delim: bytes | None,
                  fold: bool = False, key_end: int | None = None):
    """Primary comparison key: field restriction (-k/-t), then -n numeric
    value or -f case folding.  No last-resort tie-break — combine with
    :func:`make_cmp_key` for full GNU ordering."""

    def key(line: bytes):
        body = line.rstrip(b"\n")
        if key_field is not None:
            body = _key_slice(body, key_field, key_end, delim)
        if numeric:
            return _numeric_key(body)
        if fold:
            return body.upper()
        return body

    return key


def make_cmp_key(primary):
    """Full ordering key: the primary key plus GNU sort's last-resort
    comparison on the entire line (applied unless -u is given)."""

    def key(line: bytes):
        return (primary(line), line.rstrip(b"\n"))

    return key


@command("sort")
def sort_cmd(proc: Process, argv: list[str]):
    """sort [-rnumf] [-u] [-k N[,M]] [-t DELIM] [-o FILE] [-c] [FILE...]

    GNU/POSIX semantics: -k N keys on the text from the start of field N
    (including its leading blanks) to the end of the line, -k N,M stops
    at the end of field M; -f folds case; ties fall back to a whole-line
    bytewise comparison unless -u is given (with -u the sort is stable
    and keeps the first input line of each equal-key group).  Unsupported
    key specs (char offsets, per-key modifiers) exit 2 loudly.
    """
    try:
        opts, operands = parse_flags(argv, "rnumcf", with_value="kto")
        key_field, key_end = (parse_key_spec(opts["k"]) if "k" in opts
                              else (None, None))
    except UsageError as err:
        yield from write_err(proc, f"sort: {err}")
        return 2
    reverse = bool(opts.get("r"))
    numeric = bool(opts.get("n"))
    fold = bool(opts.get("f"))
    unique = bool(opts.get("u"))
    merge_mode = bool(opts.get("m"))
    check_mode = bool(opts.get("c"))
    delim = opts["t"].encode()[:1] if "t" in opts else None
    primary = make_sort_key(numeric, key_field, delim, fold, key_end)
    # -u disables the last-resort comparison (GNU): stable on primary only
    order_key = primary if unique else make_cmp_key(primary)
    coeff = cpu_coeff("sort")
    files = operands or ["-"]

    if check_mode:
        fd, needs_close = yield from open_input(proc, files[0])
        stream = LineStream(proc, fd)
        prev = None
        while True:
            line = yield from stream.next_line()
            if line is None:
                break
            yield from proc.cpu(len(line) * coeff)
            k = order_key(line)
            if prev is not None:
                in_order = k >= prev if not reverse else k <= prev
                if not in_order:
                    yield from write_err(proc, "sort: disorder")
                    return 1
            prev = k
        if needs_close:
            yield from proc.close(fd)
        return 0

    if merge_mode:
        return (yield from _sort_merge(proc, files, order_key, reverse,
                                       unique, coeff, eq_key=primary))

    if not numeric and not fold and key_field is None:
        # plain bytewise ordering: C-sort newline-free bodies directly
        return (yield from _sort_plain(proc, files, reverse, unique,
                                       coeff, opts))

    lines: list[bytes] = []
    total_bytes = 0
    for path in files:
        fd, needs_close = yield from open_input(proc, path)
        stream = LineStream(proc, fd)
        while True:
            batch = yield from stream.next_batch()
            if batch is None:
                break
            if not batch:
                continue
            nbytes = sum(len(l) for l in batch)
            total_bytes += nbytes
            yield from proc.cpu(nbytes * coeff)
            lines.extend(batch)
        if needs_close:
            yield from proc.close(fd)
    # normalize missing trailing newline so ordering is on bodies
    lines = [l if l.endswith(b"\n") else l + b"\n" for l in lines]
    n = len(lines)
    if n > 1:
        yield from proc.cpu(n * math.log2(n) * SORT_CMP_COST)
    lines.sort(key=order_key, reverse=reverse)
    if unique:
        deduped: list[bytes] = []
        prev_key = object()
        for line in lines:
            k = primary(line)
            if k != prev_key:
                deduped.append(line)
                prev_key = k
        lines = deduped
    out_fd = 1
    close_out = False
    if "o" in opts:
        out_fd = yield from proc.open(opts["o"], "w")
        close_out = True
    out = OutBuf(proc, out_fd)
    yield from out.put_lines(lines)
    yield from out.flush()
    if close_out:
        yield from proc.close(out_fd)
    return 0


def _sort_plain(proc: Process, files: list[str], reverse: bool,
                unique: bool, coeff: float, opts: dict):
    """Whole-buffer fast path for sorts whose order is plain bytewise
    comparison of line bodies (no -n/-f/-k): read chunks, charge CPU at
    exactly the LineStream batch granularity (bytes up to the last
    newline of each read; the unterminated tail is charged at EOF), then
    sort newline-free bodies with the C sort and emit one joined write —
    the same virtual-op sequence, orders of magnitude less Python work.
    """
    # S21: a host-pool oracle may hold this sort's precomputed output;
    # raw chunks are still retained so a validation mismatch at any
    # point falls back to sorting in-process at zero extra cost
    oracle = getattr(proc, "host_oracle", None)
    if oracle is not None and getattr(oracle, "kind", "") != "sort":
        oracle = None
    chunks: list[bytes] = []
    for path in files:
        fd, needs_close = yield from open_input(proc, path)
        tail_len = 0
        while True:
            data = yield from proc.read(fd, CHUNK)
            if not data:
                if tail_len:
                    yield from proc.cpu(tail_len * coeff)
                    chunks.append(b"\n")  # normalize missing final newline
                break
            chunks.append(data)
            if oracle is not None:
                oracle.feed(data)
            nl = data.rfind(b"\n")
            if nl < 0:
                tail_len += len(data)
            else:
                yield from proc.cpu((tail_len + nl + 1) * coeff)
                tail_len = len(data) - nl - 1
        if needs_close:
            yield from proc.close(fd)
    precomputed = oracle.finish() if oracle is not None else None
    if precomputed is not None:
        stream, n = precomputed
        if n > 1:
            yield from proc.cpu(n * math.log2(n) * SORT_CMP_COST)
        out_fd = 1
        close_out = False
        if "o" in opts:
            out_fd = yield from proc.open(opts["o"], "w")
            close_out = True
        if stream:
            yield from proc.write(out_fd, stream)
        if close_out:
            yield from proc.close(out_fd)
        return 0
    blob = b"".join(chunks)
    bodies = blob.split(b"\n")
    if bodies and bodies[-1] == b"":
        bodies.pop()  # trailing newline, not an empty final line
    n = len(bodies)
    if n > 1:
        yield from proc.cpu(n * math.log2(n) * SORT_CMP_COST)
    bodies.sort(reverse=reverse)
    if unique:
        bodies = list(dict.fromkeys(bodies))
    out_fd = 1
    close_out = False
    if "o" in opts:
        out_fd = yield from proc.open(opts["o"], "w")
        close_out = True
    if bodies:
        yield from proc.write(out_fd, b"\n".join(bodies) + b"\n")
    if close_out:
        yield from proc.close(out_fd)
    return 0


def _sort_merge(proc: Process, files: list[str], key, reverse: bool,
                unique: bool, coeff: float, eq_key=None):
    """k-way streaming merge of pre-sorted input files (sort -m)."""
    in_fds = []
    closers = []
    for path in files:
        fd, needs_close = yield from open_input(proc, path)
        in_fds.append(fd)
        if needs_close:
            closers.append(fd)
    status = yield from kway_merge(proc, in_fds, key, reverse, unique, coeff,
                                   eq_key=eq_key)
    for fd in closers:
        yield from proc.close(fd)
    return status


def kway_merge(proc: Process, in_fds: list[int], key, reverse: bool,
               unique: bool, coeff: float, eq_key=None):
    """Streaming heap-based k-way merge of pre-sorted inputs on open fds.
    Shared by ``sort -m`` and the parallel compiler's merge node.  Each
    emitted line costs one heap sift: log2(k) comparisons.  ``eq_key``
    (default: ``key``) is the equality key -u dedups on, which may be
    coarser than the ordering key."""
    import heapq

    streams = [LineStream(proc, fd) for fd in in_fds]
    heap: list = []

    class _Rev:
        """Inverts comparison for reverse merges."""

        __slots__ = ("k",)

        def __init__(self, k):
            self.k = k

        def __lt__(self, other):
            return other.k < self.k

        def __eq__(self, other):
            return self.k == other.k

    def wrap(k):
        return _Rev(k) if reverse else k

    if eq_key is None:
        eq_key = key
    for i, stream in enumerate(streams):
        line = yield from stream.next_line()
        if line is not None:
            heapq.heappush(heap, (wrap(key(line)), i, line))
    out = OutBuf(proc, 1)
    cmp_cost = SORT_CMP_COST * math.log2(max(2, len(streams)))
    prev_key = object()
    pending_cpu = 0.0
    while heap:
        wrapped, i, line = heapq.heappop(heap)
        pending_cpu += len(line) * coeff + cmp_cost
        if pending_cpu > 1e-4:
            yield from proc.cpu(pending_cpu)
            pending_cpu = 0.0
        k = eq_key(line) if unique else None
        if not (unique and k == prev_key):
            yield from out.put(line if line.endswith(b"\n") else line + b"\n")
        prev_key = k
        nxt = yield from streams[i].next_line()
        if nxt is not None:
            heapq.heappush(heap, (wrap(key(nxt)), i, nxt))
    if pending_cpu:
        yield from proc.cpu(pending_cpu)
    yield from out.flush()
    return 0


@command("uniq")
def uniq(proc: Process, argv: list[str]):
    try:
        opts, operands = parse_flags(argv, "cdu")
    except UsageError as err:
        yield from write_err(proc, f"uniq: {err}")
        return 2
    count = bool(opts.get("c"))
    dup_only = bool(opts.get("d"))
    uniq_only = bool(opts.get("u"))
    coeff = cpu_coeff("uniq")
    path = operands[0] if operands else "-"
    fd, needs_close = yield from open_input(proc, path)
    if not count and not dup_only and not uniq_only:
        status = yield from _uniq_plain(proc, fd, coeff)
    else:
        status = yield from _uniq_lines(proc, fd, count, dup_only, uniq_only, coeff)
    if needs_close:
        yield from proc.close(fd)
    return status


def _uniq_lines(proc: Process, fd: int, count: bool, dup_only: bool, uniq_only: bool, coeff: float):
    """Line-at-a-time uniq; handles the -c/-d/-u variants."""
    stream = LineStream(proc, fd)
    out = OutBuf(proc, 1)
    prev: bytes | None = None
    repeat = 0

    def emit(line: bytes, n: int):
        if dup_only and n < 2:
            return
        if uniq_only and n > 1:
            return
        if count:
            yield from out.put(f"{n:7d} ".encode() + line)
        else:
            yield from out.put(line)

    while True:
        batch = yield from stream.next_batch()
        if batch is None:
            break
        if not batch:
            continue
        yield from proc.cpu(sum(len(l) for l in batch) * coeff)
        for line in batch:
            body = line.rstrip(b"\n") + b"\n"
            if prev is not None and body == prev:
                repeat += 1
            else:
                if prev is not None:
                    yield from emit(prev, repeat)
                prev = body
                repeat = 1
    if prev is not None:
        yield from emit(prev, repeat)
    yield from out.flush()
    return 0


def _uniq_plain(proc: Process, fd: int, coeff: float):
    """Flagless uniq over raw chunks: groupby collapses runs in C instead
    of a Python compare per line.  Virtual cost is preserved exactly — the
    reads are the same CHUNK reads LineStream would issue, the CPU charge
    per read is the same complete-lines byte count (zero for a chunk with
    no newline, the bare tail at EOF), and a group's first line is emitted
    via the same ``out.put`` the moment the group ends."""
    # S21: a host-pool oracle may hold the sorted stream's run table;
    # each complete-lines blob is validated byte-for-byte and its
    # groupby keys come from the table instead of a split + groupby
    oracle = getattr(proc, "host_oracle", None)
    if oracle is not None and getattr(oracle, "kind", "") != "uniq":
        oracle = None
    out = OutBuf(proc, 1)
    carry: bytes | None = None  # body of the still-open trailing group
    tail = b""
    done = False
    while not done:
        data = yield from proc.read(fd, CHUNK)
        if not data:
            if not tail:
                break
            blob, tail, done = tail, b"", True
            yield from proc.cpu(len(blob) * coeff)
            bodies = [blob]
        else:
            buf = tail + data if tail else data
            nl = buf.rfind(b"\n")
            if nl < 0:
                tail = buf
                continue
            blob, tail = buf[: nl + 1], buf[nl + 1 :]
            yield from proc.cpu(len(blob) * coeff)
            bodies = None
        keys = oracle.feed_blob(blob) if oracle is not None and not done \
            else None
        if keys is None:
            if bodies is None:
                bodies = blob.split(b"\n")
                bodies.pop()  # trailing b"" after the final newline
            keys = [k for k, _ in groupby(bodies)]
        if carry is not None and (not keys or keys[0] != carry):
            keys.insert(0, carry)
        for body in keys[:-1]:
            yield from out.put(body + b"\n")
        carry = keys[-1]
    if oracle is not None:
        oracle.finish()
    if carry is not None:
        yield from out.put(carry + b"\n")
    yield from out.flush()
    return 0


@command("comm")
def comm(proc: Process, argv: list[str]):
    """comm [-123] file1 file2 — three-column set comparison of sorted
    inputs; the spell pipeline's last stage is ``comm -13 dict -``."""
    suppress = set()
    operands: list[str] = []
    for arg in argv:
        if arg.startswith("-") and arg != "-" and all(c in "123" for c in arg[1:]):
            suppress |= set(arg[1:])
        else:
            operands.append(arg)
    if len(operands) != 2:
        yield from write_err(proc, "comm: need exactly two files")
        return 2
    coeff = cpu_coeff("comm")
    fd1, close1 = yield from open_input(proc, operands[0])
    fd2, close2 = yield from open_input(proc, operands[1])
    s1, s2 = LineStream(proc, fd1), LineStream(proc, fd2)
    out = OutBuf(proc, 1)
    l1 = yield from s1.next_line()
    l2 = yield from s2.next_line()
    indent2 = b"" if "1" in suppress else b"\t"
    indent3 = indent2 + (b"" if "2" in suppress else b"\t")

    def body(line: bytes) -> bytes:
        return line.rstrip(b"\n")

    while l1 is not None or l2 is not None:
        if l1 is not None:
            yield from proc.cpu(len(l1) * coeff * 0.5)
        if l2 is not None:
            yield from proc.cpu(len(l2) * coeff * 0.5)
        if l2 is None or (l1 is not None and body(l1) < body(l2)):
            if "1" not in suppress:
                yield from out.put(body(l1) + b"\n")
            l1 = yield from s1.next_line()
        elif l1 is None or body(l2) < body(l1):
            if "2" not in suppress:
                yield from out.put(indent2 + body(l2) + b"\n")
            l2 = yield from s2.next_line()
        else:
            if "3" not in suppress:
                yield from out.put(indent3 + body(l1) + b"\n")
            l1 = yield from s1.next_line()
            l2 = yield from s2.next_line()
    yield from out.flush()
    if close1:
        yield from proc.close(fd1)
    if close2:
        yield from proc.close(fd2)
    return 0


@command("join")
def join_cmd(proc: Process, argv: list[str]):
    """join [-t DELIM] [-1 F] [-2 F] file1 file2 (sorted on join fields)."""
    try:
        opts, operands = parse_flags(argv, "", with_value="t12")
    except UsageError as err:
        yield from write_err(proc, f"join: {err}")
        return 2
    if len(operands) != 2:
        yield from write_err(proc, "join: need exactly two files")
        return 2
    delim = opts["t"].encode()[:1] if "t" in opts else None
    f1 = int(opts.get("1", "1"))
    f2 = int(opts.get("2", "1"))
    coeff = cpu_coeff("join")

    def fields_of(line: bytes) -> list[bytes]:
        body = line.rstrip(b"\n")
        return body.split(delim) if delim else body.split()

    def key_of(fields: list[bytes], idx: int) -> bytes:
        return fields[idx - 1] if idx - 1 < len(fields) else b""

    fd1, close1 = yield from open_input(proc, operands[0])
    fd2, close2 = yield from open_input(proc, operands[1])
    s1, s2 = LineStream(proc, fd1), LineStream(proc, fd2)
    out = OutBuf(proc, 1)
    sep = delim if delim else b" "
    l1 = yield from s1.next_line()
    l2 = yield from s2.next_line()
    while l1 is not None and l2 is not None:
        yield from proc.cpu((len(l1) + len(l2)) * coeff * 0.5)
        fld1, fld2 = fields_of(l1), fields_of(l2)
        k1, k2 = key_of(fld1, f1), key_of(fld2, f2)
        if k1 < k2:
            l1 = yield from s1.next_line()
        elif k2 < k1:
            l2 = yield from s2.next_line()
        else:
            # gather the run of equal keys in file2 for cross product
            run: list[list[bytes]] = []
            while l2 is not None and key_of(fields_of(l2), f2) == k1:
                run.append(fields_of(l2))
                l2 = yield from s2.next_line()
            while l1 is not None and key_of(fields_of(l1), f1) == k1:
                fld1 = fields_of(l1)
                rest1 = [f for i, f in enumerate(fld1) if i != f1 - 1]
                for fld in run:
                    rest2 = [f for i, f in enumerate(fld) if i != f2 - 1]
                    yield from out.put(sep.join([k1] + rest1 + rest2) + b"\n")
                l1 = yield from s1.next_line()
    yield from out.flush()
    if close1:
        yield from proc.close(fd1)
    if close2:
        yield from proc.close(fd2)
    return 0


@command("shuf")
def shuf(proc: Process, argv: list[str]):
    """shuf [--seed N] [FILE] — seeded for reproducibility."""
    seed = 42
    operands: list[str] = []
    i = 0
    while i < len(argv):
        if argv[i] == "--seed":
            seed = int(argv[i + 1])
            i += 2
        else:
            operands.append(argv[i])
            i += 1
    path = operands[0] if operands else "-"
    fd, needs_close = yield from open_input(proc, path)
    data = yield from proc.read_all(fd)
    yield from proc.cpu(len(data) * cpu_coeff("shuf"))
    lines = data.splitlines(keepends=True)
    if lines and not lines[-1].endswith(b"\n"):
        lines[-1] += b"\n"
    random.Random(seed).shuffle(lines)
    yield from proc.write(1, b"".join(lines))
    if needs_close:
        yield from proc.close(fd)
    return 0


@command("seq")
def seq(proc: Process, argv: list[str]):
    try:
        if len(argv) == 1:
            start, step, end = 1, 1, int(argv[0])
        elif len(argv) == 2:
            start, step, end = int(argv[0]), 1, int(argv[1])
        elif len(argv) == 3:
            start, step, end = int(argv[0]), int(argv[1]), int(argv[2])
        else:
            raise ValueError("wrong number of operands")
    except ValueError as err:
        yield from write_err(proc, f"seq: {err}")
        return 2
    out = OutBuf(proc, 1)
    coeff = cpu_coeff("seq")
    value = start
    while (step > 0 and value <= end) or (step < 0 and value >= end):
        line = str(value).encode() + b"\n"
        yield from proc.cpu(len(line) * coeff)
        yield from out.put(line)
        value += step
    yield from out.flush()
    return 0
