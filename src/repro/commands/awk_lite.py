"""awk — a substantial subset of POSIX awk.

Supported:

* program structure: ``pattern { action }`` items; BEGIN / END /
  ``/regex/`` / expression patterns; pattern-only items (print $0);
  action-only items (match every record)
* statements: ``print``, ``printf``, expression statements (assignments,
  ``++``/``--``, ``+=`` family), ``if (...) ... [else ...]``,
  ``while (...)``, ``for (k in arr)``, ``next``, ``{}`` blocks
* expressions: numbers, string literals, fields ``$0..$n`` (computed
  ``$e`` too), variables, associative arrays ``a[expr]``, arithmetic,
  string concatenation (juxtaposition), comparisons, ``~``/``!~`` regex
  match, ``&&``/``||``/``!``, ternary ``?:``, parentheses
* built-ins: NR, NF, FS, OFS, ORS, FILENAME; functions length, substr,
  index, toupper, tolower, int, split, sprintf
* options: ``-F sep``, ``-v name=value``

The numeric/string coercion rules follow POSIX awk: numeric strings
compare numerically, uninitialized values are "" / 0.
"""

from __future__ import annotations

import re
from typing import Optional

from ..vos.process import Process
from .base import LineStream, OutBuf, UsageError, command, cpu_coeff, open_input, write_err

# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>[ \t]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<number>\d+(\.\d+)?([eE][-+]?\d+)?)
  | (?P<string>"(\\.|[^"\\])*")
  | (?P<regex_placeholder>\x00)                   # never matches input
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>\+\+|--|\+=|-=|\*=|/=|%=|==|!=|<=|>=|&&|\|\||!~|[-+*/%<>=!~?:;{}()\[\],$])
""", re.VERBOSE)

KEYWORDS = {"BEGIN", "END", "print", "printf", "if", "else", "while",
            "for", "in", "next"}


class AwkSyntaxError(UsageError):
    pass


def tokenize(src: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(src):
        # regex literal: a '/' in operand position
        if src[pos] == "/" and _regex_position(tokens):
            end = pos + 1
            while end < len(src):
                if src[end] == "\\":
                    end += 2
                    continue
                if src[end] == "/":
                    break
                end += 1
            if end >= len(src):
                raise AwkSyntaxError("unterminated /regex/")
            tokens.append(("regex", src[pos + 1 : end]))
            pos = end + 1
            continue
        m = _TOKEN_RE.match(src, pos)
        if m is None:
            raise AwkSyntaxError(f"bad awk token at {src[pos:pos+10]!r}")
        kind = m.lastgroup
        text = m.group()
        pos = m.end()
        if kind in ("ws", "comment"):
            continue
        if kind == "newline":
            tokens.append(("op", ";"))
        elif kind == "number":
            tokens.append(("number", text))
        elif kind == "string":
            tokens.append(("string", _unescape(text[1:-1])))
        elif kind == "name":
            tokens.append(("keyword" if text in KEYWORDS else "name", text))
        else:
            tokens.append(("op", text))
    return tokens


def _regex_position(tokens: list) -> bool:
    """Is a '/' here a regex literal (operand position) or division?"""
    if not tokens:
        return True
    kind, text = tokens[-1]
    if kind in ("number", "string", "regex", "name"):
        return False
    if kind == "op" and text in (")", "]", "++", "--", "$"):
        return False
    return True


def _unescape(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        c = text[i]
        if c == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            out.append({"n": "\n", "t": "\t", "\\": "\\", '"': '"',
                        "r": "\r", "/": "/"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# AST + parser
# ---------------------------------------------------------------------------


class Node:
    __slots__ = ("kind", "a", "b", "c")

    def __init__(self, kind, a=None, b=None, c=None):
        self.kind = kind
        self.a = a
        self.b = b
        self.c = c

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.kind}, {self.a!r}, {self.b!r}, {self.c!r})"


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else (None, None)

    def take(self):
        token = self.peek()
        self.pos += 1
        return token

    def accept(self, kind, text=None) -> bool:
        k, t = self.peek()
        if k == kind and (text is None or t == text):
            self.pos += 1
            return True
        return False

    def expect(self, kind, text=None):
        k, t = self.peek()
        if k != kind or (text is not None and t != text):
            raise AwkSyntaxError(f"expected {text or kind}, found {t!r}")
        return self.take()

    def skip_seps(self):
        while self.accept("op", ";"):
            pass

    # -- program -------------------------------------------------------------

    def parse_program(self):
        items = []
        self.skip_seps()
        while self.peek()[0] is not None:
            items.append(self.parse_item())
            self.skip_seps()
        return items

    def parse_item(self):
        kind, text = self.peek()
        pattern = None
        if kind == "keyword" and text in ("BEGIN", "END"):
            self.take()
            pattern = Node(text)
        elif not (kind == "op" and text == "{"):
            pattern = Node("expr_pattern", self.parse_expr())
        action = None
        if self.peek() == ("op", "{"):
            action = self.parse_block()
        if action is None:
            action = Node("block", [Node("print", [])])
        return (pattern, action)

    # -- statements --------------------------------------------------------------

    def parse_block(self):
        self.expect("op", "{")
        stmts = []
        self.skip_seps()
        while self.peek() != ("op", "}"):
            if self.peek()[0] is None:
                raise AwkSyntaxError("unterminated { block }")
            stmts.append(self.parse_statement())
            self.skip_seps()
        self.expect("op", "}")
        return Node("block", stmts)

    def parse_statement(self):
        kind, text = self.peek()
        if kind == "op" and text == "{":
            return self.parse_block()
        if kind == "keyword":
            if text == "print":
                self.take()
                args = []
                if self.peek()[1] not in (";", "}", None):
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                return Node("print", args)
            if text == "printf":
                self.take()
                args = [self.parse_expr()]
                while self.accept("op", ","):
                    args.append(self.parse_expr())
                return Node("printf", args)
            if text == "next":
                self.take()
                return Node("next")
            if text == "if":
                self.take()
                self.expect("op", "(")
                cond = self.parse_expr()
                self.expect("op", ")")
                self.skip_seps()
                then = self.parse_statement()
                other = None
                save = self.pos
                self.skip_seps()
                if self.accept("keyword", "else"):
                    self.skip_seps()
                    other = self.parse_statement()
                else:
                    self.pos = save
                return Node("if", cond, then, other)
            if text == "while":
                self.take()
                self.expect("op", "(")
                cond = self.parse_expr()
                self.expect("op", ")")
                self.skip_seps()
                return Node("while", cond, self.parse_statement())
            if text == "for":
                self.take()
                self.expect("op", "(")
                name = self.expect("name")[1]
                self.expect("keyword", "in")
                arr = self.expect("name")[1]
                self.expect("op", ")")
                self.skip_seps()
                return Node("forin", name, arr, self.parse_statement())
        return Node("exprstmt", self.parse_expr())

    # -- expressions (precedence climbing) ----------------------------------------

    def parse_expr(self):
        return self.parse_ternary()

    def parse_ternary(self):
        cond = self.parse_or()
        if self.accept("op", "?"):
            then = self.parse_ternary()
            self.expect("op", ":")
            other = self.parse_ternary()
            return Node("ternary", cond, then, other)
        return cond

    def parse_or(self):
        node = self.parse_and()
        while self.accept("op", "||"):
            node = Node("or", node, self.parse_and())
        return node

    def parse_and(self):
        node = self.parse_match()
        while self.accept("op", "&&"):
            node = Node("and", node, self.parse_match())
        return node

    def parse_match(self):
        node = self.parse_compare()
        while True:
            if self.accept("op", "~"):
                node = Node("match", node, self.parse_compare())
            elif self.accept("op", "!~"):
                node = Node("nomatch", node, self.parse_compare())
            else:
                return node

    def parse_compare(self):
        node = self.parse_concat()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.accept("op", op):
                return Node("cmp", op, node, self.parse_concat())
        return node

    _CONCAT_STOP = {";", "}", ")", "]", ",", "?", ":", "==", "!=", "<=",
                    ">=", "<", ">", "&&", "||", "~", "!~", "=", "+=", "-=",
                    "*=", "/=", "%=", "{"}

    def parse_concat(self):
        node = self.parse_additive()
        while True:
            kind, text = self.peek()
            if kind is None or (kind == "op" and text in self._CONCAT_STOP):
                return node
            if kind == "keyword" and text != "in":
                return node
            if kind == "keyword" and text == "in":
                return node
            node = Node("concat", node, self.parse_additive())

    def parse_additive(self):
        node = self.parse_term()
        while True:
            if self.accept("op", "+"):
                node = Node("arith", "+", node, self.parse_term())
            elif self.accept("op", "-"):
                node = Node("arith", "-", node, self.parse_term())
            else:
                return node

    def parse_term(self):
        node = self.parse_unary()
        while True:
            if self.accept("op", "*"):
                node = Node("arith", "*", node, self.parse_unary())
            elif self.accept("op", "/"):
                node = Node("arith", "/", node, self.parse_unary())
            elif self.accept("op", "%"):
                node = Node("arith", "%", node, self.parse_unary())
            else:
                return node

    def parse_unary(self):
        if self.accept("op", "-"):
            return Node("neg", self.parse_unary())
        if self.accept("op", "+"):
            return self.parse_unary()
        if self.accept("op", "!"):
            return Node("not", self.parse_unary())
        if self.accept("op", "++"):
            target = self.parse_postfix()
            return Node("preincr", target, 1)
        if self.accept("op", "--"):
            target = self.parse_postfix()
            return Node("preincr", target, -1)
        return self.parse_assignment_or_postfix()

    def parse_assignment_or_postfix(self):
        node = self.parse_postfix()
        for op in ("=", "+=", "-=", "*=", "/=", "%="):
            if self.accept("op", op):
                if node.kind not in ("var", "field", "index"):
                    raise AwkSyntaxError(f"cannot assign to {node.kind}")
                return Node("assign", op, node, self.parse_expr())
        return node

    def parse_postfix(self):
        node = self.parse_primary()
        while True:
            if self.accept("op", "++"):
                node = Node("postincr", node, 1)
            elif self.accept("op", "--"):
                node = Node("postincr", node, -1)
            else:
                return node

    FUNCTIONS = {"length", "substr", "index", "toupper", "tolower", "int",
                 "split", "sprintf", "sub", "gsub", "match"}

    def parse_primary(self):
        kind, text = self.peek()
        if kind == "number":
            self.take()
            return Node("num", float(text))
        if kind == "string":
            self.take()
            return Node("str", text)
        if kind == "regex":
            self.take()
            return Node("regex", text)
        if kind == "op" and text == "(":
            self.take()
            node = self.parse_expr()
            self.expect("op", ")")
            return node
        if kind == "op" and text == "$":
            self.take()
            return Node("field", self.parse_primary())
        if kind == "name":
            self.take()
            if text in self.FUNCTIONS and self.peek() == ("op", "("):
                self.take()
                args = []
                if self.peek() != ("op", ")"):
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                self.expect("op", ")")
                return Node("call", text, args)
            if self.peek() == ("op", "["):
                self.take()
                subscript = self.parse_expr()
                while self.accept("op", ","):
                    rhs = self.parse_expr()
                    subscript = Node("concat",
                                     Node("concat", subscript,
                                          Node("str", "\x1c")), rhs)
                self.expect("op", "]")
                return Node("index", text, subscript)
            return Node("var", text)
        raise AwkSyntaxError(f"unexpected awk token {text!r}")


def parse_awk(src: str):
    return _Parser(tokenize(src)).parse_program()


# ---------------------------------------------------------------------------
# evaluator
# ---------------------------------------------------------------------------


class _Next(Exception):
    pass


class AwkRuntime:
    def __init__(self, fs: str = " ", assigns: Optional[dict] = None):
        self.vars: dict[str, object] = {"FS": fs, "OFS": " ", "ORS": "\n",
                                        "NR": 0.0, "NF": 0.0, "FILENAME": ""}
        self.vars.update(assigns or {})
        self.arrays: dict[str, dict] = {}
        self.fields: list[str] = [""]
        self.out: list[bytes] = []

    # -- records -------------------------------------------------------------

    def set_record(self, line: str) -> None:
        self.vars["NR"] = float(self.vars.get("NR", 0)) + 1
        self._split_record(line)

    def _split_record(self, line: str) -> None:
        fs = to_str(self.vars.get("FS", " "))
        if fs == " ":
            parts = line.split()
        elif len(fs) == 1:
            parts = line.split(fs)
        else:
            parts = re.split(fs, line)
        self.fields = [line] + parts
        self.vars["NF"] = float(len(parts))

    def get_field(self, n: int) -> str:
        if 0 <= n < len(self.fields):
            return self.fields[n]
        return ""

    def set_field(self, n: int, value: str) -> None:
        while len(self.fields) <= n:
            self.fields.append("")
        self.fields[n] = value
        if n > 0:
            nf = max(int(self.vars["NF"]), n)
            self.vars["NF"] = float(nf)
            ofs = to_str(self.vars["OFS"])
            self.fields[0] = ofs.join(self.fields[1 : nf + 1])
        else:
            self._split_record(value)

    # -- statements -----------------------------------------------------------

    def exec_block(self, block: Node) -> None:
        for stmt in block.a:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: Node) -> None:
        kind = stmt.kind
        if kind == "block":
            self.exec_block(stmt)
        elif kind == "print":
            if stmt.a:
                ofs = to_str(self.vars["OFS"])
                text = ofs.join(to_str(self.eval(e)) for e in stmt.a)
            else:
                text = self.get_field(0)
            self.out.append((text + to_str(self.vars["ORS"])).encode())
        elif kind == "printf":
            values = [self.eval(e) for e in stmt.a]
            self.out.append(_sprintf(values).encode())
        elif kind == "exprstmt":
            self.eval(stmt.a)
        elif kind == "if":
            if truthy(self.eval(stmt.a)):
                self.exec_stmt(stmt.b)
            elif stmt.c is not None:
                self.exec_stmt(stmt.c)
        elif kind == "while":
            guard = 0
            while truthy(self.eval(stmt.a)):
                self.exec_stmt(stmt.b)
                guard += 1
                if guard > 10_000_000:  # runaway protection
                    raise UsageError("awk: while loop exceeded limit")
        elif kind == "forin":
            for key in list(self.arrays.get(stmt.b, {})):
                self.vars[stmt.a] = key
                self.exec_stmt(stmt.c)
        elif kind == "next":
            raise _Next()
        else:
            raise UsageError(f"awk: cannot execute {kind}")

    # -- expressions --------------------------------------------------------------

    def eval(self, node: Node):
        kind = node.kind
        if kind == "num":
            return node.a
        if kind == "str":
            return node.a
        if kind == "regex":
            # a bare /re/ means $0 ~ /re/
            return 1.0 if re.search(node.a, self.get_field(0)) else 0.0
        if kind == "var":
            return self.vars.get(node.a, "")
        if kind == "field":
            return self.get_field(int(to_num(self.eval(node.a))))
        if kind == "index":
            arr = self.arrays.setdefault(node.a, {})
            return arr.get(to_str(self.eval(node.b)), "")
        if kind == "assign":
            return self._assign(node)
        if kind in ("preincr", "postincr"):
            old = to_num(self._read_lvalue(node.a))
            new = old + node.b
            self._write_lvalue(node.a, new)
            return new if kind == "preincr" else old
        if kind == "neg":
            return -to_num(self.eval(node.a))
        if kind == "not":
            return 0.0 if truthy(self.eval(node.a)) else 1.0
        if kind == "arith":
            left = to_num(self.eval(node.b))
            right = to_num(self.eval(node.c))
            return _arith(node.a, left, right)
        if kind == "concat":
            return to_str(self.eval(node.a)) + to_str(self.eval(node.b))
        if kind == "cmp":
            return 1.0 if _compare(node.a, self.eval(node.b),
                                   self.eval(node.c)) else 0.0
        if kind == "match":
            return 1.0 if re.search(_regex_of(node.b, self),
                                    to_str(self.eval(node.a))) else 0.0
        if kind == "nomatch":
            return 0.0 if re.search(_regex_of(node.b, self),
                                    to_str(self.eval(node.a))) else 1.0
        if kind == "and":
            return 1.0 if (truthy(self.eval(node.a))
                           and truthy(self.eval(node.b))) else 0.0
        if kind == "or":
            return 1.0 if (truthy(self.eval(node.a))
                           or truthy(self.eval(node.b))) else 0.0
        if kind == "ternary":
            return (self.eval(node.b) if truthy(self.eval(node.a))
                    else self.eval(node.c))
        if kind == "call":
            if node.a in ("sub", "gsub"):
                return self._sub_call(node)
            return self._call(node.a, [self.eval(arg) for arg in node.b],
                              node.b)
        raise UsageError(f"awk: cannot evaluate {kind}")

    def _sub_call(self, node: Node):
        """sub(re, repl [, target]) / gsub: in-place substitution on the
        target lvalue (default $0); returns the substitution count."""
        args = node.b
        if len(args) < 2:
            raise UsageError(f"awk: {node.a} needs 2 or 3 arguments")
        pattern = (args[0].a if args[0].kind == "regex"
                   else to_str(self.eval(args[0])))
        repl = to_str(self.eval(args[1])).replace("\\&", "\x01")
        repl = repl.replace("&", "\\g<0>").replace("\x01", "&")
        target = args[2] if len(args) > 2 else Node("field", Node("num", 0.0))
        current = to_str(self._read_lvalue(target))
        count = 0 if node.a == "gsub" else 1
        new, n = re.subn(pattern, repl, current, count=count)
        if n:
            self._write_lvalue(target, new)
        return float(n)

    def _assign(self, node: Node):
        op, target = node.a, node.b
        value = self.eval(node.c)
        if op != "=":
            current = to_num(self._read_lvalue(target))
            value = _arith(op[0], current, to_num(value))
        self._write_lvalue(target, value)
        return value

    def _read_lvalue(self, target: Node):
        if target.kind == "var":
            return self.vars.get(target.a, "")
        if target.kind == "field":
            return self.get_field(int(to_num(self.eval(target.a))))
        if target.kind == "index":
            return self.arrays.setdefault(target.a, {}).get(
                to_str(self.eval(target.b)), "")
        raise UsageError("awk: bad lvalue")

    def _write_lvalue(self, target: Node, value) -> None:
        if target.kind == "var":
            self.vars[target.a] = value
        elif target.kind == "field":
            self.set_field(int(to_num(self.eval(target.a))), to_str(value))
        elif target.kind == "index":
            self.arrays.setdefault(target.a, {})[
                to_str(self.eval(target.b))] = value
        else:
            raise UsageError("awk: bad lvalue")

    def _call(self, name: str, args: list, raw_args):
        if name == "length":
            if not args:
                return float(len(self.get_field(0)))
            if raw_args and raw_args[0].kind == "var" and raw_args[0].a in self.arrays:
                return float(len(self.arrays[raw_args[0].a]))
            return float(len(to_str(args[0])))
        if name == "substr":
            text = to_str(args[0])
            start = max(1, int(to_num(args[1])))
            if len(args) > 2:
                return text[start - 1 : start - 1 + int(to_num(args[2]))]
            return text[start - 1 :]
        if name == "index":
            return float(to_str(args[0]).find(to_str(args[1])) + 1)
        if name == "toupper":
            return to_str(args[0]).upper()
        if name == "tolower":
            return to_str(args[0]).lower()
        if name == "int":
            return float(int(to_num(args[0])))
        if name == "split":
            text = to_str(args[0])
            if raw_args[1].kind != "var":
                raise UsageError("awk: split needs an array name")
            sep = to_str(args[2]) if len(args) > 2 else to_str(self.vars["FS"])
            parts = text.split() if sep == " " else text.split(sep)
            self.arrays[raw_args[1].a] = {
                str(i + 1): part for i, part in enumerate(parts)
            }
            return float(len(parts))
        if name == "sprintf":
            return _sprintf(args)
        if name == "match":
            m = re.search(to_str(args[1]) if raw_args[1].kind != "regex"
                          else raw_args[1].a, to_str(args[0]))
            self.vars["RSTART"] = float(m.start() + 1) if m else 0.0
            self.vars["RLENGTH"] = float(m.end() - m.start()) if m else -1.0
            return self.vars["RSTART"]
        raise UsageError(f"awk: unknown function {name}")


def _regex_of(node: Node, runtime: AwkRuntime) -> str:
    if node.kind == "regex":
        return node.a
    return to_str(runtime.eval(node))


def to_num(value) -> float:
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        m = re.match(r"\s*[-+]?(\d+\.?\d*([eE][-+]?\d+)?|\.\d+)", value)
        return float(m.group()) if m else 0.0
    return 0.0


_NUMERIC_RE = re.compile(r"^\s*[-+]?(\d+\.?\d*([eE][-+]?\d+)?|\.\d+)\s*$")


def to_str(value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e16:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


def truthy(value) -> bool:
    if isinstance(value, float):
        return value != 0.0
    return value != ""


def _compare(op: str, left, right) -> bool:
    # numeric comparison when both are numbers or numeric strings
    both_numeric = (
        (isinstance(left, float) or _NUMERIC_RE.match(left or ""))
        and (isinstance(right, float) or _NUMERIC_RE.match(right or ""))
    )
    if both_numeric:
        a, b = to_num(left), to_num(right)
    else:
        a, b = to_str(left), to_str(right)
    return {
        "==": a == b, "!=": a != b, "<": a < b,
        "<=": a <= b, ">": a > b, ">=": a >= b,
    }[op]


def _arith(op: str, a: float, b: float) -> float:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise UsageError("awk: division by zero")
        return a / b
    if op == "%":
        if b == 0:
            raise UsageError("awk: division by zero")
        return float(int(a) % int(b)) if a >= 0 else -float(int(-a) % int(b))
    raise UsageError(f"awk: bad operator {op}")


def _sprintf(values: list) -> str:
    fmt = to_str(values[0])
    args = values[1:]
    out: list[str] = []
    i = 0
    ai = 0
    while i < len(fmt):
        c = fmt[i]
        if c == "%" and i + 1 < len(fmt):
            m = re.match(r"%[-+ 0#]*\d*(\.\d+)?[diouxXeEfgGcs%]", fmt[i:])
            if m:
                spec = m.group()
                i += len(spec)
                if spec == "%%":
                    out.append("%")
                    continue
                arg = args[ai] if ai < len(args) else ""
                ai += 1
                conv = spec[-1]
                if conv in "diouxX":
                    out.append(spec[:-1].replace("i", "d") % int(to_num(arg))
                               if conv == "i" else spec % int(to_num(arg)))
                elif conv in "eEfgG":
                    out.append(spec % to_num(arg))
                elif conv == "c":
                    text = to_str(arg)
                    out.append(text[:1] if text else "")
                else:
                    out.append(spec % to_str(arg))
                continue
        out.append(c)
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# program analysis (for the annotation library)
# ---------------------------------------------------------------------------


def _walk_nodes(node):
    if isinstance(node, Node):
        yield node
        for child in (node.a, node.b, node.c):
            yield from _walk_nodes(child)
    elif isinstance(node, list):
        for item in node:
            yield from _walk_nodes(item)
    elif isinstance(node, tuple):
        for item in node:
            yield from _walk_nodes(item)


def program_is_stateless(src: str) -> bool:
    """True when the awk program is a pure per-record map: no BEGIN/END,
    no NR, no variable/array state carried across records."""
    try:
        items = parse_awk(src)
    except UsageError:
        return False
    per_record_ok = True
    for pattern, action in items:
        if pattern is not None and pattern.kind in ("BEGIN", "END"):
            return False
        for node in _walk_nodes((pattern, action)):
            if not isinstance(node, Node):
                continue
            if node.kind == "var" and node.a == "NR":
                return False
            if node.kind in ("assign", "preincr", "postincr"):
                target = node.b if node.kind == "assign" else node.a
                if target.kind in ("var", "index") and (
                    target.kind == "index"
                    or target.a not in ("OFS", "ORS", "FS")
                ):
                    return False  # cross-record state
            if node.kind == "forin":
                return False
            if node.kind == "call":
                if node.a == "split":
                    return False  # writes an array (cross-record state)
                if node.a in ("sub", "gsub") and len(node.b) > 2 \
                        and node.b[2].kind != "field":
                    return False  # substitutes into a variable
                if node.a == "match":
                    return False  # sets RSTART/RLENGTH
    return per_record_ok


# ---------------------------------------------------------------------------
# the command
# ---------------------------------------------------------------------------


@command("awk")
def awk(proc: Process, argv: list[str]):
    fs = " "
    assigns: dict[str, object] = {}
    operands: list[str] = []
    program_text: Optional[str] = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "-F":
            i += 1
            if i >= len(argv):
                yield from write_err(proc, "awk: -F requires an argument")
                return 2
            fs = argv[i]
        elif arg.startswith("-F") and len(arg) > 2:
            fs = arg[2:]
        elif arg == "-v":
            i += 1
            if i >= len(argv) or "=" not in argv[i]:
                yield from write_err(proc, "awk: -v requires name=value")
                return 2
            name, __, value = argv[i].partition("=")
            assigns[name] = value
        elif program_text is None:
            program_text = arg
        else:
            operands.append(arg)
        i += 1
    if program_text is None:
        yield from write_err(proc, "awk: missing program")
        return 2
    if fs == "\\t":
        fs = "\t"
    try:
        items = parse_awk(program_text)
    except UsageError as err:
        yield from write_err(proc, f"awk: {err}")
        return 2

    runtime = AwkRuntime(fs, assigns)
    coeff = cpu_coeff("default") * 6  # awk interprets: slower per byte
    out = OutBuf(proc, 1)

    def flush_runtime():
        if runtime.out:
            data = b"".join(runtime.out)
            runtime.out.clear()
            yield from out.put(data)

    # BEGIN
    try:
        for pattern, action in items:
            if pattern is not None and pattern.kind == "BEGIN":
                runtime.exec_block(action)
        yield from flush_runtime()

        main_items = [(p, a) for p, a in items
                      if p is None or p.kind not in ("BEGIN", "END")]
        has_main_or_end = bool(main_items) or any(
            p is not None and p.kind == "END" for p, __ in items
        )
        if has_main_or_end:
            for path in operands or ["-"]:
                fd, needs_close = yield from open_input(proc, path)
                runtime.vars["FILENAME"] = path if path != "-" else ""
                stream = LineStream(proc, fd)
                while True:
                    line = yield from stream.next_line()
                    if line is None:
                        break
                    yield from proc.cpu(len(line) * coeff)
                    runtime.set_record(line.decode("utf-8", "replace")
                                       .rstrip("\n"))
                    try:
                        for pattern, action in main_items:
                            matched = (
                                pattern is None
                                or truthy(runtime.eval(pattern.a))
                            )
                            if matched:
                                runtime.exec_block(action)
                    except _Next:
                        pass
                    yield from flush_runtime()
                if needs_close:
                    yield from proc.close(fd)

        for pattern, action in items:
            if pattern is not None and pattern.kind == "END":
                runtime.exec_block(action)
        yield from flush_runtime()
    except UsageError as err:
        yield from out.flush()
        yield from write_err(proc, f"awk: {err}")
        return 2
    yield from out.flush()
    return 0
