"""xargs — the higher-order primitive G2 calls out.

Reads whitespace-separated items from stdin and spawns the utility with
batches of them as extra arguments.  ``-n N`` bounds batch size; ``-P K``
runs up to K batches concurrently (the "restricted parallelism
orchestration tools" of U2 are xargs -P / GNU parallel style).
"""

from __future__ import annotations

from ..vos.process import Process
from .base import UsageError, command, cpu_coeff, lookup, parse_flags, write_err


@command("xargs")
def xargs(proc: Process, argv: list[str]):
    # option parsing must stop at the utility name: everything after it
    # belongs to the utility (xargs -n 1 grep -c pat)
    opts: dict = {}
    i = 0
    try:
        while i < len(argv):
            arg = argv[i]
            if arg == "--":
                i += 1
                break
            if arg in ("-n", "-P"):
                if i + 1 >= len(argv):
                    raise UsageError(f"option {arg} requires an argument")
                opts[arg[1]] = argv[i + 1]
                i += 2
            elif arg.startswith("-n") and len(arg) > 2:
                opts["n"] = arg[2:]
                i += 1
            elif arg.startswith("-P") and len(arg) > 2:
                opts["P"] = arg[2:]
                i += 1
            elif arg == "-t":
                opts["t"] = True
                i += 1
            elif arg.startswith("-") and arg != "-":
                raise UsageError(f"unknown option {arg}")
            else:
                break
        batch_size = int(opts["n"]) if "n" in opts else 0
        parallel = max(1, int(opts.get("P", "1")))
    except (UsageError, ValueError) as err:
        yield from write_err(proc, f"xargs: {err}")
        return 2
    operands = argv[i:]
    utility = operands[0] if operands else "echo"
    base_args = operands[1:]

    data = yield from proc.read_all(0)
    yield from proc.cpu(len(data) * cpu_coeff("xargs"))
    items = data.split()
    if not items and utility == "echo":
        yield from proc.write(1, b"\n")
        return 0

    fn = lookup(utility)
    if fn is None:
        yield from write_err(proc, f"xargs: {utility}: command not found")
        return 127

    batches: list[list[str]] = []
    if batch_size <= 0:
        batches.append([item.decode("utf-8", "replace") for item in items])
    else:
        for i in range(0, len(items), batch_size):
            batches.append(
                [item.decode("utf-8", "replace") for item in items[i : i + batch_size]]
            )

    status = 0
    fds = {key: handle for key, handle in proc.fds.items() if key in (1, 2)}
    pending: list[int] = []
    for batch in batches:
        args = base_args + batch

        def body(child, fn=fn, args=args):
            result = yield from fn(child, args)
            return result

        pid = yield from proc.spawn(body, name=utility, fds=fds)
        pending.append(pid)
        if len(pending) >= parallel:
            st = yield from proc.wait(pending.pop(0))
            status = max(status, 0 if st == 0 else 123)
    for pid in pending:
        st = yield from proc.wait(pid)
        status = max(status, 0 if st == 0 else 123)
    return status
