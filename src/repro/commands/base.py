"""Command infrastructure: registry, streaming helpers, CPU cost table.

A command is a generator function ``run(proc, argv) -> int`` executed as a
vOS process body.  Commands stream: they read chunks, charge CPU work
proportional to bytes/lines handled (coefficients below), and write
incrementally, so pipeline stages overlap and backpressure applies — the
properties the paper's G2 ("stream processing") celebrates.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional

from ..vos.process import CHUNK, Process

# ---------------------------------------------------------------------------
# CPU cost coefficients (reference-CPU seconds)
# ---------------------------------------------------------------------------

#: seconds of CPU per byte processed, per command family.  Derived from
#: rough GNU coreutils throughputs on one core: cat moves ~1 GB/s, tr ~150
#: MB/s, grep ~250 MB/s, sort ~30 MB/s (comparison dominated).
CPU_PER_BYTE = {
    "cat": 1.0e-9,
    "tee": 1.2e-9,
    "tr": 6.5e-9,
    "grep": 4.0e-9,
    "cut": 5.0e-9,
    "wc": 2.5e-9,
    "head": 0.8e-9,
    "tail": 0.8e-9,
    "uniq": 3.0e-9,
    "comm": 3.5e-9,
    "sed": 7.0e-9,
    "sort": 9.0e-9,  # plus per-comparison cost below
    "join": 4.0e-9,
    "paste": 2.0e-9,
    "rev": 3.0e-9,
    "shuf": 4.0e-9,
    "seq": 1.5e-9,
    "split": 1.2e-9,
    "xargs": 2.0e-9,
    "default": 2.0e-9,
}

#: extra cost per line-comparison for sorting (n log n term).
SORT_CMP_COST = 120e-9

#: fixed process start-up cost (fork+exec analogue).
PROC_STARTUP = 0.002


def cpu_coeff(name: str) -> float:
    return CPU_PER_BYTE.get(name, CPU_PER_BYTE["default"])


# ---------------------------------------------------------------------------
# Splice fast-path toggle
# ---------------------------------------------------------------------------

#: Pure pass-through stages (cat, tee) issue a single SpliceReq and let
#: the kernel pump bytes src->dst, replaying the exact read/cpu/write
#: virtual-op sequence of the Python loop in one dispatch (DESIGN.md
#: §11).  Results are bit-identical either way; the toggle exists so
#: tests and `jash run --no-splice` can prove it.
_SPLICE_ENABLED = not os.environ.get("JASH_NO_SPLICE")


def splice_enabled() -> bool:
    return _SPLICE_ENABLED


def set_splice_enabled(enabled: bool) -> None:
    global _SPLICE_ENABLED
    _SPLICE_ENABLED = bool(enabled)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

CommandFn = Callable  # (proc, argv) -> generator returning int

REGISTRY: dict[str, CommandFn] = {}


def command(name: str):
    """Decorator registering a command implementation under ``name``."""

    def wrap(fn: CommandFn) -> CommandFn:
        REGISTRY[name] = fn
        fn.command_name = name
        return fn

    return wrap


def lookup(name: str) -> Optional[CommandFn]:
    return REGISTRY.get(name)


# ---------------------------------------------------------------------------
# Streaming helpers (sub-generators used with `yield from`)
# ---------------------------------------------------------------------------


class LineStream:
    """Incremental line reader over an fd.

    ``line = yield from stream.next_line()`` returns one line (with its
    newline, except possibly the last) or None at EOF.
    """

    def __init__(self, proc: Process, fd: int, chunk: int = CHUNK):
        self.proc = proc
        self.fd = fd
        self.chunk = chunk
        self._buf = bytearray()
        self._eof = False
        self._lines: list[bytes] = []  # parsed, pending delivery

    def next_line(self):
        while not self._lines:
            if self._eof:
                return None
            data = yield from self.proc.read(self.fd, self.chunk)
            if not data:
                self._eof = True
                if self._buf:
                    self._lines.append(bytes(self._buf))
                    self._buf.clear()
                break
            self._buf.extend(data)
            if b"\n" in data:
                *complete, rest = self._buf.split(b"\n")
                self._lines.extend(line + b"\n" for line in complete)
                self._buf = bytearray(rest)
        if self._lines:
            return self._lines.pop(0)
        return None

    def next_batch(self):
        """Return all currently-buffered complete lines plus at least one
        read's worth; None at EOF.  Cheaper than line-at-a-time."""
        if not self._lines and not self._eof:
            data = yield from self.proc.read(self.fd, self.chunk)
            if not data:
                self._eof = True
                if self._buf:
                    self._lines.append(bytes(self._buf))
                    self._buf.clear()
            else:
                self._buf.extend(data)
                if b"\n" in self._buf:
                    *complete, rest = self._buf.split(b"\n")
                    self._lines.extend(line + b"\n" for line in complete)
                    self._buf = bytearray(rest)
        if self._lines:
            batch, self._lines = self._lines, []
            return batch
        if self._eof:
            return None
        return []


class OutBuf:
    """Buffered writer: accumulates bytes, flushes in CHUNK units."""

    def __init__(self, proc: Process, fd: int, threshold: int = CHUNK):
        self.proc = proc
        self.fd = fd
        self.threshold = threshold
        self._chunks: list[bytes] = []
        self._size = 0

    def put(self, data: bytes):
        if not data:
            return
        self._chunks.append(data)
        self._size += len(data)
        if self._size >= self.threshold:
            yield from self.flush()

    def put_lines(self, lines: Iterable[bytes]):
        for line in lines:
            self._chunks.append(line)
            self._size += len(line)
        if self._size >= self.threshold:
            yield from self.flush()

    def flush(self):
        if self._chunks:
            chunks = self._chunks
            self._chunks = []
            self._size = 0
            # vectored write: same logical write (one dispatch, one disk
            # request / pipe transfer) without joining the chunks first
            yield from self.proc.writev(self.fd, chunks)


def write_err(proc: Process, message: str):
    """Write an error line to stderr (fd 2), tolerating a missing fd."""
    if 2 in proc.fds:
        yield from proc.write(2, message.encode() + b"\n")


def open_input(proc: Process, path: str):
    """Open an input operand, honouring the '-' (stdin) convention.
    Returns (fd, needs_close)."""
    if path == "-":
        return 0, False
    fd = yield from proc.open(path, "r")
    return fd, True


class UsageError(Exception):
    """Bad command-line arguments; commands exit 2."""


def parse_flags(argv: list[str], flags: str, with_value: str = "") -> tuple[dict, list[str]]:
    """Minimal POSIX-style option parser.

    ``flags`` are boolean single-letter options; ``with_value`` options
    take an argument (attached or following).  Returns (options, operands).
    Combined clusters (``-rn``) and ``--`` are supported, as are the
    historical ``-NUM`` forms when 'NUM' is in with_value as '#'.
    """
    opts: dict = {}
    operands: list[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--":
            operands.extend(argv[i + 1 :])
            break
        if arg.startswith("-") and arg != "-" and len(arg) > 1:
            if "#" in with_value and arg[1:].isdigit():
                opts["#"] = arg[1:]
                i += 1
                continue
            j = 1
            while j < len(arg):
                ch = arg[j]
                if ch in flags:
                    opts[ch] = True
                    j += 1
                elif ch in with_value:
                    value = arg[j + 1 :]
                    if not value:
                        i += 1
                        if i >= len(argv):
                            raise UsageError(f"option -{ch} requires an argument")
                        value = argv[i]
                    opts[ch] = value
                    break
                else:
                    raise UsageError(f"unknown option -{ch}")
            i += 1
        else:
            operands.append(arg)
            i += 1
    return opts, operands
